"""Workflow-session generation for sequence-model evaluation.

DeepLog [7] (and the LSTM/CNN detectors of the related work) operate on
*sessions* — ordered message sequences produced by a workflow, like an
HDFS block lifecycle or, on a test-bed, a batch job's lifecycle.  This
module generates such sessions:

- **normal sessions** follow the job lifecycle grammar
  (submit → prolog → launch → N×(compute-step | barrier) →
  checkpoint → epilog → complete), with slot-level variation,
- **anomalous sessions** deviate structurally: an injected hardware/
  memory/thermal error mid-run, a crash (missing epilog/complete), or
  a shuffled step order.

Ground truth is structural, so sequence detectors (which model order)
can be compared fairly against point detectors (which cannot).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.core.taxonomy import Category
from repro.datagen.templates import MessageTemplate, fill_slots, templates_for
from repro.core.message import Severity

__all__ = ["SessionKind", "LabeledSession", "SessionGenerator"]

_T = MessageTemplate
_S = Severity

# The job-lifecycle grammar: each stage is a small template pool.
_STAGES: dict[str, tuple[MessageTemplate, ...]] = {
    "submit": (
        _T(Category.UNIMPORTANT, "slurmctld", _S.INFO,
           "_submit: Allocate JobId={job} NodeCnt={nodecount} user {user}"),
    ),
    "prolog": (
        _T(Category.UNIMPORTANT, "slurmd", _S.INFO,
           "_prolog: running prolog for job {job} on cn{devnum}"),
    ),
    "launch": (
        _T(Category.UNIMPORTANT, "slurmd", _S.INFO,
           "launch task StepId={job}.{socket} request from UID:{uid} job_argument count {count}"),
    ),
    "compute": (
        _T(Category.UNIMPORTANT, "app", _S.INFO,
           "lpi_hbm_nn: iteration {count} residual {delay_ms}e-07 error tolerance ok job_argument {job}"),
        _T(Category.UNIMPORTANT, "app", _S.INFO,
           "MPI rank {cpu} of {nodecount}: barrier reached at step {count}, elapsed {delay_ms} s"),
    ),
    "checkpoint": (
        _T(Category.UNIMPORTANT, "app", _S.INFO,
           "lpi_hbm_nn: checkpoint {count} written in {delay_ms} ms no error detected"),
    ),
    "epilog": (
        _T(Category.UNIMPORTANT, "slurmd", _S.INFO,
           "_epilog: job {job} epilog complete on cn{devnum} status {exitcode}"),
    ),
    "complete": (
        _T(Category.UNIMPORTANT, "slurmctld", _S.INFO,
           "_complete: job {job} COMPLETED exit_code {exitcode} wall {sec} s"),
    ),
}


class SessionKind(Enum):
    """Ground-truth label of a generated session."""

    NORMAL = "normal"
    ERROR_INJECTED = "error_injected"  # real issue messages mid-run
    CRASH = "crash"  # lifecycle truncated before epilog/complete
    SHUFFLED = "shuffled"  # stages out of order (workflow violation)


@dataclass(frozen=True)
class LabeledSession:
    """One generated session."""

    messages: tuple[str, ...]
    kind: SessionKind

    @property
    def is_anomalous(self) -> bool:
        return self.kind is not SessionKind.NORMAL


@dataclass
class SessionGenerator:
    """Generates labelled job-lifecycle sessions.

    Parameters
    ----------
    seed:
        RNG seed.
    compute_steps:
        (min, max) compute-stage repetitions per session.
    """

    seed: int = 0
    compute_steps: tuple[int, int] = (3, 10)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        lo, hi = self.compute_steps
        if lo < 1 or hi < lo:
            raise ValueError(f"invalid compute_steps range {self.compute_steps}")

    def _stage(self, name: str) -> str:
        pool = _STAGES[name]
        tpl = pool[int(self._rng.integers(0, len(pool)))]
        return fill_slots(tpl, self._rng)

    def normal(self) -> LabeledSession:
        """One normal lifecycle session."""
        msgs = [self._stage("submit"), self._stage("prolog"), self._stage("launch")]
        lo, hi = self.compute_steps
        for _ in range(int(self._rng.integers(lo, hi + 1))):
            msgs.append(self._stage("compute"))
        msgs += [self._stage("checkpoint"), self._stage("epilog"),
                 self._stage("complete")]
        return LabeledSession(tuple(msgs), SessionKind.NORMAL)

    def error_injected(self) -> LabeledSession:
        """A session with real issue messages appearing mid-run."""
        base = list(self.normal().messages)
        category = [Category.THERMAL, Category.MEMORY, Category.HARDWARE][
            int(self._rng.integers(0, 3))
        ]
        tpls = templates_for(category)
        n_inject = int(self._rng.integers(1, 4))
        for _ in range(n_inject):
            tpl = tpls[int(self._rng.integers(0, len(tpls)))]
            pos = int(self._rng.integers(3, len(base) - 2))
            base.insert(pos, fill_slots(tpl, self._rng))
        return LabeledSession(tuple(base), SessionKind.ERROR_INJECTED)

    def crash(self) -> LabeledSession:
        """A session that dies mid-compute (no checkpoint/epilog/complete)."""
        base = list(self.normal().messages)
        cut = int(self._rng.integers(4, max(5, len(base) - 3)))
        return LabeledSession(tuple(base[:cut]), SessionKind.CRASH)

    def shuffled(self) -> LabeledSession:
        """A workflow-order violation (lifecycle stages permuted)."""
        base = list(self.normal().messages)
        perm = self._rng.permutation(len(base))
        return LabeledSession(tuple(base[i] for i in perm), SessionKind.SHUFFLED)

    def generate(
        self, n_normal: int, n_anomalous: int
    ) -> list[LabeledSession]:
        """A shuffled mix of normal and anomalous sessions.

        Anomalous sessions cycle through the three anomaly kinds.
        """
        out = [self.normal() for _ in range(n_normal)]
        makers = (self.error_injected, self.crash, self.shuffled)
        out += [makers[i % 3]() for i in range(n_anomalous)]
        order = self._rng.permutation(len(out))
        return [out[i] for i in order]
