"""Per-vendor syslog message templates for each taxonomy category.

Each template is a format string with named slots; the generator fills
slots from a seeded RNG, which yields the uniqueness and volume of real
logs while the fixed scaffolding carries the category-discriminative
vocabulary.  Template wording is modelled after public loghub-style
corpora (Linux kernel, sshd, slurm) and the example messages quoted in
the paper, and deliberately seeds the Table 1 tokens per category
("throttled"/"temperature"/"sensor" for Thermal, "preauth"/"closed"/
"port" for SSH, "real_memory" for Memory, ...), so that the TF-IDF
top-token experiment reproduces the table's *content* and not just its
format.

Different vendors phrase the same issue differently — compare the two
thermal phrasings quoted in §4.3.1 ("CPU temperature above threshold,
cpu clock throttled." vs "CPU 1 Temperature Above Non-Recoverable -
Asserted...") — which is exactly the heterogeneity that defeats
edit-distance bucketing.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
import string

import numpy as np

from repro.core.message import Severity
from repro.core.taxonomy import Category

__all__ = ["MessageTemplate", "TEMPLATES", "templates_for", "fill_slots", "SLOT_FILLERS"]


def _num(lo: int, hi: int) -> Callable[[np.random.Generator], str]:
    def fill(rng: np.random.Generator) -> str:
        return str(int(rng.integers(lo, hi + 1)))
    return fill


def _fnum(lo: float, hi: float, prec: int = 1) -> Callable[[np.random.Generator], str]:
    def fill(rng: np.random.Generator) -> str:
        return f"{rng.uniform(lo, hi):.{prec}f}"
    return fill


def _choice(*options: str) -> Callable[[np.random.Generator], str]:
    def fill(rng: np.random.Generator) -> str:
        return options[int(rng.integers(0, len(options)))]
    return fill


def _hexid(n: int) -> Callable[[np.random.Generator], str]:
    def fill(rng: np.random.Generator) -> str:
        return "".join(rng.choice(list("0123456789abcdef"), size=n))
    return fill


def _ip(rng: np.random.Generator) -> str:
    return ".".join(str(int(x)) for x in rng.integers(1, 255, size=4))


def _user(rng: np.random.Generator) -> str:
    users = ("jdoe", "asmith", "kchen", "mlopez", "rpatel", "tnguyen",
             "build", "ops", "svc-mon", "root")
    return users[int(rng.integers(0, len(users)))]


def _word(rng: np.random.Generator) -> str:
    letters = list(string.ascii_lowercase)
    n = int(rng.integers(4, 9))
    return "".join(rng.choice(letters, size=n))


#: Slot name → filler function.
SLOT_FILLERS: Mapping[str, Callable[[np.random.Generator], str]] = {
    "cpu": _num(0, 127),
    "socket": _num(0, 3),
    "core": _num(0, 63),
    "temp": _num(70, 105),
    "mtemp": _num(35, 60),
    "watts": _num(120, 700),
    "rpm": _num(1800, 14000),
    "port": _num(1024, 65535),
    "sshport": _choice("22", "22", "22", "2222"),
    "pid": _num(100, 99999),
    "uid": _num(0, 65534),
    "job": _num(100000, 9999999),
    "nodecount": _num(1, 64),
    "mem_mb": _num(1024, 1048576),
    "addr": _hexid(12),
    "hex8": _hexid(8),
    "hex16": _hexid(16),
    "ip": _ip,
    "user": _user,
    "dimm": _choice("A0", "A1", "B0", "B1", "C0", "C1", "D0", "D1"),
    "bus": _num(1, 8),
    "devnum": _num(1, 127),
    "usbver": _choice("1.1", "2.0", "3.0", "3.1"),
    "usbprod": _choice("Mass Storage", "Keyboard", "Optical Mouse",
                       "Flash Disk", "Hub", "Serial Console"),
    "vendorid": _hexid(4),
    "prodid": _hexid(4),
    "sensor": _choice("CPU1_Temp", "CPU2_Temp", "Inlet_Temp", "Exhaust_Temp",
                      "VRM_Temp", "GPU_Temp", "PCH_Temp", "DIMM_Temp"),
    "fan": _choice("FAN1", "FAN2", "FAN3", "FAN4", "SYS_FAN", "CPU_FAN"),
    "disk": _choice("sda", "sdb", "sdc", "nvme0n1", "nvme1n1"),
    "iface": _choice("eth0", "eth1", "ib0", "ib1", "eno1", "enp65s0"),
    "slurmver": _choice("20.11.9", "21.08.8", "22.05.3", "23.02.1"),
    "kernver": _choice("4.18.0-372", "5.14.0-162", "5.15.0-76", "4.14.0-115"),
    "service": _choice("chronyd", "ntpd", "systemd", "irqbalance", "lldpad",
                       "rasdaemon", "tuned"),
    "delay_ms": _fnum(0.01, 900.0, 3),
    "offset_s": _fnum(-2.0, 2.0, 6),
    "pct": _num(1, 100),
    "count": _num(1, 100000),
    "sec": _num(1, 86400),
    "word": _word,
    "gpu": _num(0, 7),
    "exitcode": _num(0, 255),
    "inode": _num(1000, 99999999),
    "tty": _choice("pts/0", "pts/1", "pts/2", "tty1", "ttyS0"),
}


@dataclass(frozen=True)
class MessageTemplate:
    """One parameterized syslog message shape.

    Attributes
    ----------
    category:
        Ground-truth taxonomy label for messages from this template.
    app:
        Emitting application/tag.
    severity:
        Syslog severity of emitted messages.
    text:
        Format string with ``{slot}`` placeholders (see
        :data:`SLOT_FILLERS`).
    vendors:
        Vendor keys that emit this shape; ``None`` means all vendors.
    weight:
        Relative frequency among the category's templates.
    """

    category: Category
    app: str
    severity: Severity
    text: str
    vendors: tuple[str, ...] | None = None
    weight: float = 1.0

    def slots(self) -> tuple[str, ...]:
        """Slot names referenced by :attr:`text`, in order."""
        return tuple(
            fname
            for _lit, fname, _spec, _conv in string.Formatter().parse(self.text)
            if fname
        )


def fill_slots(template: MessageTemplate, rng: np.random.Generator) -> str:
    """Instantiate ``template`` with RNG-drawn slot values.

    Raises
    ------
    KeyError
        If the template references an unknown slot.
    """
    # sorted: set iteration order is hash-seed dependent, and each slot
    # consumes RNG draws — unsorted iteration would make corpora differ
    # across processes despite fixed seeds
    values = {name: SLOT_FILLERS[name](rng) for name in sorted(set(template.slots()))}
    return template.text.format(**values)


_T = MessageTemplate
_S = Severity

TEMPLATES: tuple[MessageTemplate, ...] = (
    # ------------------------------------------------------------------
    # Thermal Issue — Table 1 tokens: processor, throttled, sensor, cpu,
    # temperature
    _T(Category.THERMAL, "kernel", _S.WARNING,
       "CPU{cpu} temperature above threshold, cpu clock throttled (total events = {count})",
       vendors=("dell", "supermicro"), weight=3.0),
    _T(Category.THERMAL, "kernel", _S.NOTICE,
       "CPU{cpu} temperature/speed normal, cpu clock unthrottled",
       vendors=("dell", "supermicro"), weight=2.0),
    _T(Category.THERMAL, "ipmi-sel", _S.CRITICAL,
       "CPU {cpu} Temperature Above Non-Recoverable - Asserted. Current temperature: {temp}C",
       vendors=("hpe",), weight=2.0),
    _T(Category.THERMAL, "ipmi-sel", _S.WARNING,
       "sensor {sensor} reading {temp} C exceeds upper critical threshold",
       vendors=("hpe", "arm"), weight=1.5),
    _T(Category.THERMAL, "kernel", _S.WARNING,
       "Warning: Socket {socket} - CPU {cpu} throttling",
       vendors=("nvidia",), weight=1.5),
    _T(Category.THERMAL, "thermald", _S.WARNING,
       "processor package temp {temp}C above passive trip point, engaging throttling",
       vendors=("ibm", "arm"), weight=1.0),
    _T(Category.THERMAL, "kernel", _S.CRITICAL,
       "thermal thermal_zone{socket}: critical temperature reached ({temp} C), shutting down",
       weight=0.5),
    _T(Category.THERMAL, "ipmi-sel", _S.WARNING,
       "Fan {fan} speed {rpm} RPM below lower threshold, temperature rising on sensor {sensor}",
       vendors=("dell", "supermicro"), weight=1.0),
    _T(Category.THERMAL, "nvidia-smi", _S.WARNING,
       "GPU {gpu}: slowdown temperature threshold reached, clocks throttled to {pct} percent",
       vendors=("nvidia",), weight=1.0),
    _T(Category.THERMAL, "kernel", _S.WARNING,
       "Core {core} thermal event: temperature {temp}C, package throttle asserted",
       vendors=("arm", "ibm"), weight=1.0),

    # ------------------------------------------------------------------
    # Memory Issue — Table 1 tokens: size, real_memory, low, cn, node
    _T(Category.MEMORY, "slurmd", _S.ERROR,
       "error: Node configuration differs from hardware: RealMemory="
       "{mem_mb} real_memory size low on node cn{devnum}",
       vendors=("dell", "supermicro"), weight=2.0),
    _T(Category.MEMORY, "kernel", _S.ERROR,
       "EDAC MC{socket}: {count} CE memory read error on DIMM {dimm} (channel:{socket} slot:{bus})",
       weight=2.5),
    _T(Category.MEMORY, "kernel", _S.CRITICAL,
       "Out of memory: Killed process {pid} ({word}) total-vm:{mem_mb}kB, anon-rss:{mem_mb}kB",
       weight=2.0),
    _T(Category.MEMORY, "kernel", _S.ERROR,
       "mce: [Hardware Error]: Machine check events logged, memory controller bank {bus} address 0x{hex16}",
       vendors=("dell", "hpe", "supermicro"), weight=1.5),
    _T(Category.MEMORY, "rasdaemon", _S.WARNING,
       "rasdaemon: mc_event store: DIMM {dimm} corrected memory errors count {count} size {mem_mb}",
       vendors=("hpe", "ibm"), weight=1.0),
    _T(Category.MEMORY, "kernel", _S.WARNING,
       "page allocation failure: order:{socket}, mode:0x{hex8}, size {mem_mb}kB low memory on node",
       weight=1.0),
    _T(Category.MEMORY, "ipmi-sel", _S.ERROR,
       "Memory Device {dimm} Uncorrectable ECC error asserted, node cn{devnum} real_memory degraded",
       vendors=("dell",), weight=1.0),
    _T(Category.MEMORY, "kernel", _S.WARNING,
       "Memory failure: page {inode}: recovery action for dirty page: Recovered, size {mem_mb}kB",
       vendors=("ibm", "arm", "nvidia"), weight=1.0),

    # ------------------------------------------------------------------
    # SSH-Connection — Table 1 tokens: closed, preauth, connection, port,
    # user
    _T(Category.SSH, "sshd", _S.INFO,
       "Connection closed by {ip} port {port} [preauth]", weight=3.0),
    _T(Category.SSH, "sshd", _S.INFO,
       "Accepted publickey for {user} from {ip} port {port} ssh2: RSA SHA256:{hex16}",
       weight=2.0),
    _T(Category.SSH, "sshd", _S.INFO,
       "Disconnected from user {user} {ip} port {port}", weight=1.5),
    _T(Category.SSH, "sshd", _S.WARNING,
       "error: maximum authentication attempts exceeded for user {user} from {ip} port {port} ssh2 [preauth]",
       weight=1.0),
    _T(Category.SSH, "sshd", _S.INFO,
       "Received disconnect from {ip} port {port}:11: disconnected by user",
       weight=1.5),
    _T(Category.SSH, "sshd", _S.INFO,
       "Failed password for invalid user {user} from {ip} port {port} ssh2",
       weight=1.0),
    _T(Category.SSH, "sshd", _S.INFO,
       "Connection reset by authenticating user {user} {ip} port {port} [preauth]",
       weight=1.0),

    # ------------------------------------------------------------------
    # Intrusion Detection — Table 1 tokens: root, session, user, started,
    # boot
    _T(Category.INTRUSION, "systemd-logind", _S.INFO,
       "New session {count} of user root started on {tty}", weight=2.0),
    _T(Category.INTRUSION, "sudo", _S.NOTICE,
       "{user} : TTY={tty} ; PWD=/home/{user} ; USER=root ; COMMAND=/usr/bin/{word}",
       weight=2.0),
    _T(Category.INTRUSION, "su", _S.NOTICE,
       "session opened for user root by {user}(uid={uid})", weight=1.5),
    _T(Category.INTRUSION, "audit", _S.WARNING,
       "ANOM_LOGIN acct=root uid={uid} ses={count} boot id {hex8} unexpected privileged session started",
       vendors=("hpe", "nvidia"), weight=1.0),
    _T(Category.INTRUSION, "pam_unix", _S.WARNING,
       "authentication failure; logname= uid={uid} euid=0 tty={tty} user=root",
       weight=1.5),
    _T(Category.INTRUSION, "systemd-logind", _S.INFO,
       "Session {count} of user {user} logged out. Waiting for processes to exit, boot session root audit",
       weight=1.0),
    _T(Category.INTRUSION, "kernel", _S.NOTICE,
       "audit: type=1006 audit({sec}.{count}:{count}): pid={pid} uid=0 old-auid={uid} auid=0 "
       "ses={count} res=1 root session started after boot",
       weight=1.0),

    # ------------------------------------------------------------------
    # Slurm Issues — Table 1 tokens: version, update, slurm, please, node
    _T(Category.SLURM, "slurmctld", _S.ERROR,
       "error: slurmd version {slurmver} on node cn{devnum} does not match controller, please update slurm",
       weight=2.0),
    _T(Category.SLURM, "slurmctld", _S.WARNING,
       "Node cn{devnum} not responding, slurm node state set DOWN, please investigate",
       weight=1.5),
    _T(Category.SLURM, "slurmd", _S.ERROR,
       "error: slurm_receive_msg: Zero Bytes were transmitted or received on node update",
       weight=1.0),
    _T(Category.SLURM, "slurmctld", _S.ERROR,
       "Invalid RPC version {slurmver} from slurmd on node tx{devnum}, update required please",
       weight=1.0),

    # ------------------------------------------------------------------
    # USB-Device — Table 1 tokens: usb, device, hub, number, new
    _T(Category.USB, "kernel", _S.INFO,
       "usb {bus}-{socket}: new high-speed USB device number {devnum} using xhci_hcd",
       weight=3.0),
    _T(Category.USB, "kernel", _S.INFO,
       "usb {bus}-{socket}: New USB device found, idVendor={vendorid}, idProduct={prodid}, bcdDevice={usbver}",
       weight=2.0),
    _T(Category.USB, "kernel", _S.INFO,
       "usb {bus}-{socket}: Product: {usbprod}", weight=1.0),
    _T(Category.USB, "kernel", _S.INFO,
       "hub {bus}-0:1.0: USB hub found with {socket} ports", weight=1.5),
    _T(Category.USB, "kernel", _S.INFO,
       "usb {bus}-{socket}: USB disconnect, device number {devnum}", weight=2.0),
    _T(Category.USB, "kernel", _S.WARNING,
       "usb {bus}-{socket}: device descriptor read/64, error -{exitcode}; new device enumeration failed on hub",
       weight=1.0),

    # ------------------------------------------------------------------
    # Hardware Issue — Table 1 tokens: timestamp, sync, clock, system,
    # event
    _T(Category.HARDWARE, "chronyd", _S.WARNING,
       "System clock wrong by {offset_s} seconds, timestamp sync lost with source {ip}",
       weight=2.0),
    _T(Category.HARDWARE, "kernel", _S.WARNING,
       "clocksource: timekeeping watchdog: Marking clocksource tsc as unstable, system timestamp sync event",
       weight=1.5),
    _T(Category.HARDWARE, "ntpd", _S.WARNING,
       "time reset {offset_s} s: clock sync lost, system event logged at timestamp {sec}",
       vendors=("ibm", "supermicro"), weight=1.0),
    _T(Category.HARDWARE, "kernel", _S.ERROR,
       "pcieport 0000:{hex8}: AER: Corrected error received: id=00{devnum}, system hardware event",
       weight=1.5),
    _T(Category.HARDWARE, "ipmi-sel", _S.ERROR,
       "Power Supply {socket} failure detected - Asserted, system event at timestamp {sec}",
       vendors=("dell", "hpe", "supermicro"), weight=1.5),
    _T(Category.HARDWARE, "kernel", _S.ERROR,
       "{disk}: I/O error, dev {disk}, sector {inode} op 0x0:(READ) flags 0x{hex8} system event",
       weight=1.5),
    _T(Category.HARDWARE, "kernel", _S.WARNING,
       "{iface}: NIC Link is Down - transmit timestamp sync lost, check cable / switch clock",
       weight=1.0),
    _T(Category.HARDWARE, "smartd", _S.WARNING,
       "Device: /dev/{disk}, SMART Prefailure Attribute: {count} Raw_Read_Error_Rate changed, system event",
       vendors=("dell", "supermicro", "ibm"), weight=1.0),

    # ------------------------------------------------------------------
    # Unimportant — Table 1 tokens: error, lpi_hbm_nn, job_argument,
    # slurm_rpc_node_registration (application noise that *looks* scary:
    # it deliberately reuses words like "error" so that the confusion
    # the paper observed along this category is reproduced)
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "lpi_hbm_nn: iteration {count} residual {delay_ms}e-07 error tolerance ok job_argument {job}",
       weight=3.0),
    _T(Category.UNIMPORTANT, "slurmd", _S.INFO,
       "slurm_rpc_node_registration complete for cn{devnum} usec={count}",
       weight=3.0),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "job_argument parse ok: --input /scratch/{user}/run{count} --tol {delay_ms} error bound accepted",
       weight=2.0),
    _T(Category.UNIMPORTANT, "systemd", _S.INFO,
       "Started Session {count} of user {user}.", weight=2.0),
    _T(Category.UNIMPORTANT, "systemd", _S.INFO,
       "{service}.service: Succeeded.", weight=2.0),
    _T(Category.UNIMPORTANT, "crond", _S.INFO,
       "({user}) CMD (/usr/lib64/sa/sa1 1 1)", weight=1.5),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "lpi_hbm_nn: checkpoint {count} written in {delay_ms} ms no error detected",
       weight=2.0),
    _T(Category.UNIMPORTANT, "slurmd", _S.INFO,
       "launch task StepId={job}.{socket} request from UID:{uid} job_argument count {count}",
       weight=2.0),
    _T(Category.UNIMPORTANT, "kernel", _S.INFO,
       "perf: interrupt took too long ({count} > {count}), lowering kernel.perf_event_max_sample_rate",
       weight=1.0),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "solver {word} converged after {count} iterations, error norm {delay_ms}e-09",
       weight=2.0),
    _T(Category.UNIMPORTANT, "dbus-daemon", _S.INFO,
       "[system] Activating service name='org.freedesktop.{word}' requested by ':{socket}.{count}'",
       weight=1.0),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "MPI rank {cpu} of {nodecount}: barrier reached at step {count}, elapsed {delay_ms} s",
       weight=2.0),
    # "Confusable" noise — §5.1 attributes the confusion along the
    # Unimportant category to "messages that use significant words from
    # other categories, but that aren't actually an interesting issue".
    # These templates reuse category vocabulary in benign contexts.
    _T(Category.UNIMPORTANT, "healthcheck", _S.INFO,
       "periodic probe: cpu temperature {mtemp}C within normal range, no throttling active",
       weight=1.2),
    _T(Category.UNIMPORTANT, "healthcheck", _S.INFO,
       "memory usage {pct} percent, real_memory size nominal on node cn{devnum}",
       weight=1.2),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "watchdog: connection to scheduler ok, port {port} responsive, session healthy",
       weight=1.0),
    _T(Category.UNIMPORTANT, "healthcheck", _S.INFO,
       "sensor sweep complete: {count} sensors read, all temperature readings below threshold",
       weight=1.0),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "benchmark harness: simulated hardware failure injection {count} handled, system event counter reset",
       weight=0.8),
    _T(Category.UNIMPORTANT, "backup", _S.INFO,
       "nightly sync of user home started, clock skew {delay_ms} ms acceptable",
       weight=1.0),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "allocator stats: pool size {mem_mb}kB, low watermark not reached, no memory pressure",
       weight=1.0),
    _T(Category.UNIMPORTANT, "usbmuxd", _S.INFO,
       "device inventory unchanged: {count} usb devices enumerated, hub topology stable",
       weight=0.8),
    # Near-duplicates of real issue bodies in benign wrappers — these
    # are the hardest cases and drive the residual confusion.
    _T(Category.UNIMPORTANT, "selftest", _S.INFO,
       "selftest replay: CPU{cpu} temperature above threshold, cpu clock throttled (expected during burn-in)",
       weight=0.5),
    _T(Category.UNIMPORTANT, "selftest", _S.INFO,
       "drill: Connection closed by {ip} port {port} [preauth] (scanner canary, ignore)",
       weight=0.5),
    _T(Category.UNIMPORTANT, "selftest", _S.INFO,
       "EDAC sweep: {count} CE memory read error threshold check passed on DIMM {dimm}",
       weight=0.5),
)


def templates_for(
    category: Category, vendor: str | None = None
) -> tuple[MessageTemplate, ...]:
    """Templates of ``category``, optionally restricted to ``vendor``."""
    out = []
    for t in TEMPLATES:
        if t.category is not category:
            continue
        if vendor is not None and t.vendors is not None and vendor not in t.vendors:
            continue
        out.append(t)
    return tuple(out)
