"""Labeled corpus generation with Table 2 class imbalance.

§4.4 builds the paper's dataset from ~196k *unique* messages with the
per-category counts of Table 2 (Unimportant dominates with 106552,
Slurm has only 46).  :class:`CorpusGenerator` reproduces that shape at
a configurable scale: per-category targets are Table 2 counts times
``scale``, each message is drawn from a vendor-appropriate template
with RNG-filled slots, and uniqueness of the message text is enforced
by rejection sampling (matching "unique messages" in the table).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.message import SyslogMessage
from repro.core.taxonomy import Category
from repro.datagen.templates import MessageTemplate, fill_slots, templates_for
from repro.datagen.vendors import VENDORS, VendorProfile

__all__ = ["TABLE2_COUNTS", "LabeledCorpus", "CorpusGenerator"]

#: Unique messages per category in the paper's dataset (Table 2).
TABLE2_COUNTS: dict[Category, int] = {
    Category.HARDWARE: 3582,
    Category.INTRUSION: 6599,
    Category.MEMORY: 12449,
    Category.SSH: 3615,
    Category.THERMAL: 59411,
    Category.SLURM: 46,
    Category.USB: 4139,
    Category.UNIMPORTANT: 106552,
}

_SECONDS_PER_YEAR = 360 * 86400.0


@dataclass
class LabeledCorpus:
    """A generated, labelled syslog corpus.

    Attributes
    ----------
    messages:
        Parsed message records (host, app, severity, timestamp, text).
    texts:
        The raw message bodies — the classifier inputs.
    labels:
        Ground-truth categories, parallel to ``texts``.
    """

    messages: list[SyslogMessage]
    labels: list[Category]

    @property
    def texts(self) -> list[str]:
        return [m.text for m in self.messages]

    def __len__(self) -> int:
        return len(self.messages)

    def counts(self) -> dict[Category, int]:
        """Number of messages per category (Table 2 analogue)."""
        out: dict[Category, int] = {c: 0 for c in Category}
        for lab in self.labels:
            out[lab] += 1
        return {c: n for c, n in out.items() if n}

    def subset(self, mask: np.ndarray) -> "LabeledCorpus":
        """Corpus restricted to rows where ``mask`` is True."""
        idx = np.flatnonzero(mask)
        return LabeledCorpus(
            messages=[self.messages[i] for i in idx],
            labels=[self.labels[i] for i in idx],
        )

    def without(self, category: Category) -> "LabeledCorpus":
        """Corpus with ``category`` removed (the §5.1 ablation)."""
        keep = np.asarray([lab is not category for lab in self.labels])
        return self.subset(keep)


@dataclass
class CorpusGenerator:
    """Generate labelled corpora matching the paper's dataset shape.

    Parameters
    ----------
    scale:
        Fraction of Table 2 counts to generate (``1.0`` ≈ 196k unique
        messages; benches default to a laptop-friendly fraction).
        Every category keeps at least ``min_per_category`` messages so
        rare classes (Slurm: 46) never vanish at small scales.
    seed:
        RNG seed; corpora are fully deterministic given (scale, seed).
    nodes_per_vendor:
        Hostname pool size per vendor family.
    unique:
        Enforce unique message texts by rejection sampling (Table 2
        counts *unique* messages).  Disable for raw-stream generation
        where duplicates are realistic.
    """

    scale: float = 0.05
    seed: int = 0
    nodes_per_vendor: int = 40
    min_per_category: int = 8
    unique: bool = True
    max_rejects: int = 200
    #: template set to draw from — override with a drifted set (see
    #: :mod:`repro.datagen.firmware`) to generate post-firmware corpora
    templates: tuple[MessageTemplate, ...] | None = None

    def target_counts(self) -> dict[Category, int]:
        """Per-category generation targets at this scale."""
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        return {
            c: max(self.min_per_category, int(round(n * self.scale)))
            for c, n in TABLE2_COUNTS.items()
        }

    def generate(self) -> LabeledCorpus:
        """Generate the corpus.

        Messages are timestamped uniformly over a simulated year of
        collection (§4.4: "classified over the course of a year") and
        shuffled so category blocks don't correlate with position.
        """
        rng = np.random.default_rng(self.seed)
        targets = self.target_counts()
        messages: list[SyslogMessage] = []
        labels: list[Category] = []
        for category in Category:
            n = targets.get(category, 0)
            msgs = self._generate_category(category, n, rng)
            messages.extend(msgs)
            labels.extend([category] * len(msgs))
        order = rng.permutation(len(messages))
        messages = [messages[i] for i in order]
        labels = [labels[i] for i in order]
        return LabeledCorpus(messages=messages, labels=labels)

    def _generate_category(
        self, category: Category, n: int, rng: np.random.Generator
    ) -> list[SyslogMessage]:
        seen: set[str] = set()
        out: list[SyslogMessage] = []
        # Pre-compute template choices per vendor for this category.
        per_vendor: list[tuple[VendorProfile, tuple[MessageTemplate, ...], np.ndarray]] = []
        for vendor in VENDORS:
            tpls = self._templates_for(category, vendor.name)
            if not tpls:
                continue
            w = np.asarray([t.weight for t in tpls], dtype=np.float64)
            per_vendor.append((vendor, tpls, w / w.sum()))
        if not per_vendor:
            raise RuntimeError(f"no templates available for category {category}")
        rejects = 0
        while len(out) < n:
            vendor, tpls, probs = per_vendor[int(rng.integers(0, len(per_vendor)))]
            tpl = tpls[int(rng.choice(len(tpls), p=probs))]
            text = fill_slots(tpl, rng)
            if self.unique:
                if text in seen:
                    rejects += 1
                    if rejects > self.max_rejects * max(n, 1):
                        raise RuntimeError(
                            f"cannot generate {n} unique messages for "
                            f"{category}: template entropy exhausted after "
                            f"{len(out)} (consider lowering scale)"
                        )
                    continue
                seen.add(text)
            out.append(
                SyslogMessage(
                    timestamp=float(rng.uniform(0.0, _SECONDS_PER_YEAR)),
                    hostname=vendor.node_name(int(rng.integers(0, self.nodes_per_vendor))),
                    app=tpl.app,
                    text=text,
                    severity=tpl.severity,
                    facility=_facility_for(tpl),
                    pid=int(rng.integers(100, 99999)),
                )
            )
        return out

    def _templates_for(
        self, category: Category, vendor: str
    ) -> tuple[MessageTemplate, ...]:
        if self.templates is None:
            return templates_for(category, vendor)
        return tuple(
            t
            for t in self.templates
            if t.category is category
            and (t.vendors is None or vendor in t.vendors)
        )


def _facility_for(tpl: MessageTemplate):
    from repro.core.message import Facility

    if tpl.app in ("sshd", "su", "sudo", "pam_unix"):
        return Facility.AUTHPRIV
    if tpl.app == "kernel":
        return Facility.KERN
    if tpl.app in ("crond",):
        return Facility.CRON
    return Facility.DAEMON
