"""IPMI-style sensor telemetry simulation (§4.5.3).

The per-architecture analysis is motivated by sensor data: "Fans or
thermal sensors will occasionally report through IPMI that they are not
functioning or the reading for those sensors are unusually high or low,
however when comparing readings from other nodes from the same
architecture the readings are exactly the same."

:class:`TelemetryGenerator` produces periodic sensor sweeps over the
test-bed with three injectable phenomena:

- a **faulty sensor** on one node (stuck at an extreme value, or
  dropping to zero) — the node-level anomaly an admin should see;
- **rack heating** (the cold-aisle scenario) lifting the inlet
  temperatures of every node in a rack — a positional incident;
- a **family quirk**: every node of one architecture reports the same
  nonsense value through IPMI — the false indication §4.5.3 says the
  per-architecture comparison must suppress.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "TelemetrySample",
    "FaultySensor",
    "RackHeat",
    "FamilyQuirk",
    "TelemetryGenerator",
]


@dataclass(frozen=True)
class TelemetrySample:
    """One sensor reading."""

    timestamp: float
    hostname: str
    sensor: str
    value: float


@dataclass(frozen=True)
class FaultySensor:
    """One node's sensor misbehaving from ``start`` onward."""

    hostname: str
    sensor: str
    start: float
    mode: str = "stuck_high"  # stuck_high | stuck_zero
    stuck_value: float = 120.0


@dataclass(frozen=True)
class RackHeat:
    """Every listed node's inlet temperature rises by ``delta``."""

    hostnames: tuple[str, ...]
    start: float
    duration: float
    delta: float = 15.0
    sensor: str = "Inlet_Temp"


@dataclass(frozen=True)
class FamilyQuirk:
    """Every node of ``arch`` reports ``value`` on ``sensor`` (IPMI bug)."""

    arch: str
    sensor: str
    value: float
    start: float = 0.0


#: per-sensor (baseline mean, stddev); architectures get a deterministic
#: per-arch offset so families differ (as real hardware does).
_SENSOR_BASELINES: dict[str, tuple[float, float]] = {
    "Inlet_Temp": (24.0, 0.6),
    "CPU_Temp": (55.0, 2.0),
    "FAN1": (6000.0, 150.0),
}


@dataclass
class TelemetryGenerator:
    """Periodic sensor sweeps for a set of nodes.

    Parameters
    ----------
    arch_of:
        hostname → architecture mapping (defines peer families).
    interval_s:
        Sweep period.
    seed:
        RNG seed.
    sensors:
        Sensor names to sweep (defaults to the built-in trio).
    """

    arch_of: Mapping[str, str]
    interval_s: float = 60.0
    seed: int = 0
    sensors: tuple[str, ...] = tuple(_SENSOR_BASELINES)

    faulty: list[FaultySensor] = field(default_factory=list)
    rack_heat: list[RackHeat] = field(default_factory=list)
    quirks: list[FamilyQuirk] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {self.interval_s}")
        unknown = [s for s in self.sensors if s not in _SENSOR_BASELINES]
        if unknown:
            raise ValueError(f"unknown sensors: {unknown}")

    def _arch_offset(self, arch: str, sensor: str) -> float:
        # deterministic per-(arch, sensor) offset: families run at
        # different operating points (crc32, not hash(): the builtin is
        # randomized per process)
        import zlib

        h = zlib.crc32(f"{arch}/{sensor}".encode()) % 1000 / 1000.0
        base, std = _SENSOR_BASELINES[sensor]
        return (h - 0.5) * 4.0 * std

    def generate(self, duration_s: float) -> list[TelemetrySample]:
        """Sweep all nodes every ``interval_s`` for ``duration_s``."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        rng = np.random.default_rng(self.seed)
        out: list[TelemetrySample] = []
        t = 0.0
        hosts = sorted(self.arch_of)
        while t < duration_s:
            for host in hosts:
                arch = self.arch_of[host]
                for sensor in self.sensors:
                    out.append(TelemetrySample(
                        timestamp=t,
                        hostname=host,
                        sensor=sensor,
                        value=self._value(host, arch, sensor, t, rng),
                    ))
            t += self.interval_s
        return out

    def _value(
        self, host: str, arch: str, sensor: str, t: float,
        rng: np.random.Generator,
    ) -> float:
        for q in self.quirks:
            if q.arch == arch and q.sensor == sensor and t >= q.start:
                return q.value
        for f in self.faulty:
            if f.hostname == host and f.sensor == sensor and t >= f.start:
                return 0.0 if f.mode == "stuck_zero" else f.stuck_value
        base, std = _SENSOR_BASELINES[sensor]
        value = base + self._arch_offset(arch, sensor)
        # slow diurnal swing shared by the whole room
        value += 0.5 * std * np.sin(2 * np.pi * t / 86400.0)
        value += float(rng.normal(0.0, std * 0.5))
        for rh in self.rack_heat:
            if (
                sensor == rh.sensor
                and host in rh.hostnames
                and rh.start <= t < rh.start + rh.duration
            ):
                value += rh.delta
        return value
