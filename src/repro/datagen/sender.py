"""Wire senders: put a generated trace on a real loopback socket.

The datagen package produces :class:`~repro.core.message.SyslogMessage`
objects; the ingest layer accepts *bytes on a socket*.  This module is
the bridge the CLI, tests, and benchmark share: render each event with
the canonical formatters from :mod:`repro.stream.rfc` (the same module
the listener parses with — one grammar, both directions) and blast the
lines over UDP datagrams or a newline-framed TCP stream.

``wire_lines`` alternates RFC 3164 / RFC 5424 deterministically by
event ordinal, the heterogeneous-fleet shape the listener must parse
in practice; pass ``wire_format="3164"``/``"5424"`` for a uniform
fleet.
"""

from __future__ import annotations

import socket
from collections.abc import Iterable, Sequence

from repro.core.message import SyslogMessage
from repro.stream.rfc import format_rfc3164, format_rfc5424

__all__ = ["render_event", "wire_lines", "send_udp", "send_tcp"]

WIRE_FORMATS = ("3164", "5424", "mixed")


def render_event(message: SyslogMessage, ordinal: int, wire_format: str = "mixed") -> str:
    """Serialise one message; ``mixed`` alternates by ``ordinal`` parity."""
    fmt = wire_format
    if fmt == "mixed":
        fmt = "3164" if ordinal % 2 == 0 else "5424"
    if fmt == "5424":
        return format_rfc5424(message)
    if fmt == "3164":
        return format_rfc3164(message)
    raise ValueError(f"wire_format must be one of {WIRE_FORMATS}, got {wire_format!r}")


def wire_lines(
    messages: Iterable[SyslogMessage], *, wire_format: str = "mixed"
) -> list[bytes]:
    """Render a trace to wire lines (no trailing newlines)."""
    if wire_format not in WIRE_FORMATS:
        raise ValueError(
            f"wire_format must be one of {WIRE_FORMATS}, got {wire_format!r}"
        )
    return [
        render_event(m, i, wire_format).encode("utf-8")
        for i, m in enumerate(messages)
    ]


def send_udp(address: tuple[str, int], lines: Sequence[bytes]) -> int:
    """Fire ``lines`` as UDP datagrams at ``address``; returns the count.

    Fire-and-forget, exactly like rsyslog's UDP output: no ack, no
    retry — loss shows up in the listener's accounting, not here.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        for line in lines:
            sock.sendto(line, address)
    finally:
        sock.close()
    return len(lines)


def send_tcp(address: tuple[str, int], lines: Sequence[bytes]) -> int:
    """Stream ``lines`` newline-framed over one TCP connection."""
    sock = socket.create_connection(address)
    try:
        sock.sendall(b"\n".join(lines) + b"\n" if lines else b"")
    finally:
        sock.close()
    return len(lines)
