"""A held-out "newcomer" vendor for adaptation experiments.

§1 names the second driver of heterogeneity: message formats change
"over time as software and firmware components are upgraded" and as
"new systems would be added to the test-bed and old systems were
retired" (§3).  Firmware drift is modelled by
:mod:`repro.datagen.firmware`; this module models the harder case — a
brand-new vendor whose messages use *different vocabulary* for the same
issues, so a classifier trained before its arrival has never seen the
discriminative tokens.

The newcomer ("fujitsu", A64FX-style nodes) is deliberately excluded
from :data:`repro.datagen.vendors.VENDORS`, and its templates avoid the
established vendors' key tokens where a real vendor plausibly would
(terse alarm codes instead of prose).
"""

from __future__ import annotations

import numpy as np

from repro.core.message import Severity, SyslogMessage
from repro.core.taxonomy import Category
from repro.datagen.templates import MessageTemplate, fill_slots
from repro.datagen.vendors import VendorProfile

__all__ = ["NEWCOMER_VENDOR", "NEWCOMER_TEMPLATES", "generate_newcomer_messages"]

NEWCOMER_VENDOR = VendorProfile(
    "fujitsu", "aarch64-a64fx", "fx", rfc5424=True, kv_style=True
)

_T = MessageTemplate
_S = Severity

#: Newcomer message shapes — same eight categories, different surface
#: vocabulary (alarm codes, kanji-adjacent terseness transliterated to
#: codes, kv style).
NEWCOMER_TEMPLATES: tuple[MessageTemplate, ...] = (
    # Thermal
    _T(Category.THERMAL, "fefsmond", _S.WARNING,
       "TEMPALM code=T{socket}{cpu} pkg{socket} tj {temp}degC dvfs engaged lvl {pct}",
       vendors=("fujitsu",), weight=2.0),
    _T(Category.THERMAL, "fefsmond", _S.CRITICAL,
       "TEMPALM code=TX{socket} cmg{socket} over tjmax, freq floor applied",
       vendors=("fujitsu",), weight=1.0),
    # Memory
    _T(Category.MEMORY, "fefsmond", _S.ERROR,
       "MEMALM code=M{bus} hbm{socket} cexx count={count} scrub pass initiated",
       vendors=("fujitsu",), weight=2.0),
    _T(Category.MEMORY, "kernel", _S.CRITICAL,
       "oom-reaper: victim pid={pid} anon-rss={mem_mb}kB constraint=NONE",
       vendors=("fujitsu",), weight=1.0),
    # SSH
    _T(Category.SSH, "sshd", _S.INFO,
       "sshd[{pid}]: kex_exchange_identification: banner exchange with {ip}:{port} done",
       vendors=("fujitsu",), weight=2.0),
    # Intrusion
    _T(Category.INTRUSION, "auditd", _S.WARNING,
       "AUDALM code=A{socket} privileged shell acquired uid={uid} tty={tty}",
       vendors=("fujitsu",), weight=1.5),
    # Slurm
    _T(Category.SLURM, "slurmd", _S.ERROR,
       "SCHEDALM code=S{socket} rpc vers skew ctl={slurmver} nd={slurmver} on fx{devnum}",
       vendors=("fujitsu",), weight=1.0),
    # USB
    _T(Category.USB, "kernel", _S.INFO,
       "xhci-hcd xhci-hcd.{socket}.auto: plug evt slot={devnum} vid={vendorid} pid={prodid}",
       vendors=("fujitsu",), weight=1.5),
    # Hardware
    _T(Category.HARDWARE, "fefsmond", _S.ERROR,
       "HWALM code=H{bus} tofu link {socket} degraded lanes {pct} pct retrain",
       vendors=("fujitsu",), weight=1.5),
    _T(Category.HARDWARE, "chronyd", _S.WARNING,
       "CLKALM code=C{socket} src {ip} unreachable, holdover {offset_s}",
       vendors=("fujitsu",), weight=1.0),
    # Unimportant
    _T(Category.UNIMPORTANT, "fefsmond", _S.INFO,
       "HLTHRPT code=OK{socket} node fx{devnum} sweep {count} all nominal",
       vendors=("fujitsu",), weight=3.0),
    _T(Category.UNIMPORTANT, "app", _S.INFO,
       "a64fx-blas: dgemm tile {count} done gflops {delay_ms}",
       vendors=("fujitsu",), weight=2.0),
)


def generate_newcomer_messages(
    n: int, *, seed: int = 0, mix: dict[Category, float] | None = None
) -> tuple[list[SyslogMessage], list[Category]]:
    """Generate ``n`` labelled messages from the newcomer vendor.

    Parameters
    ----------
    mix:
        Category mix; defaults to a Table 2-like imbalance.
    """
    rng = np.random.default_rng(seed)
    mix = mix or {
        Category.UNIMPORTANT: 0.5,
        Category.THERMAL: 0.25,
        Category.MEMORY: 0.08,
        Category.SSH: 0.05,
        Category.HARDWARE: 0.05,
        Category.INTRUSION: 0.03,
        Category.USB: 0.02,
        Category.SLURM: 0.02,
    }
    cats = list(mix)
    probs = np.asarray([mix[c] for c in cats])
    probs = probs / probs.sum()
    by_cat = {
        c: [t for t in NEWCOMER_TEMPLATES if t.category is c] for c in cats
    }
    messages: list[SyslogMessage] = []
    labels: list[Category] = []
    for _ in range(n):
        cat = cats[int(rng.choice(len(cats), p=probs))]
        pool = by_cat[cat]
        tpl = pool[int(rng.integers(0, len(pool)))]
        messages.append(SyslogMessage(
            timestamp=float(rng.uniform(0, 86400)),
            hostname=NEWCOMER_VENDOR.node_name(int(rng.integers(0, 16))),
            app=tpl.app,
            text=fill_slots(tpl, rng),
            severity=tpl.severity,
        ))
        labels.append(cat)
    return messages, labels
