"""Vendor / architecture profiles for the heterogeneous test-bed.

Darwin (§1, [9]) mixes hardware generations and vendors; each reports
the *same* class of issue with different syntax.  A profile controls
the surface form of messages a node emits: framing, tag style, node
naming, and casing quirks.  The drift experiments additionally mutate
template text per firmware generation (see
:mod:`repro.datagen.firmware`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VendorProfile", "VENDORS", "vendor_by_name"]


@dataclass(frozen=True)
class VendorProfile:
    """Surface-form conventions of one vendor/architecture family.

    Attributes
    ----------
    name:
        Short vendor key used by templates (``dell``, ``hpe``...).
    arch:
        CPU architecture of the family's nodes (feeds the
        per-architecture monitoring analysis, §4.5.3).
    node_prefix:
        Hostname prefix; nodes are ``{prefix}{index:03d}``.
    rfc5424:
        Emit RFC 5424 framing (newer firmware) instead of BSD syslog.
    uppercase_severity:
        Spell severity words in caps ("WARNING:" vs "warning:").
    kv_style:
        Report readings as ``key=value`` rather than prose.
    firmware_generation:
        Initial firmware generation (bumped by drift experiments).
    """

    name: str
    arch: str
    node_prefix: str
    rfc5424: bool = False
    uppercase_severity: bool = False
    kv_style: bool = False
    firmware_generation: int = 0

    def node_name(self, index: int) -> str:
        """Hostname of this family's ``index``-th node."""
        return f"{self.node_prefix}{index:03d}"


#: The test-bed's vendor families.  Counts and names are synthetic but
#: the *shape* (several x86 generations, POWER, ARM, GPU nodes) mirrors
#: the published Darwin configuration.
VENDORS: tuple[VendorProfile, ...] = (
    VendorProfile("dell", "x86_64-broadwell", "cn", uppercase_severity=True),
    VendorProfile("hpe", "x86_64-epyc", "ep", rfc5424=True, kv_style=True),
    VendorProfile("ibm", "ppc64le-power9", "pw", uppercase_severity=False),
    VendorProfile("arm", "aarch64-tx2", "tx", kv_style=True),
    VendorProfile("nvidia", "x86_64-a100", "gp", rfc5424=True),
    VendorProfile("supermicro", "x86_64-skylake", "sk"),
)

_BY_NAME = {v.name: v for v in VENDORS}


def vendor_by_name(name: str) -> VendorProfile:
    """Look up a vendor profile by key.

    Raises
    ------
    KeyError
        Unknown vendor name.
    """
    return _BY_NAME[name]
