"""Synthetic heterogeneous test-bed syslog corpus.

The paper's dataset is ~196k unique messages from LANL's Darwin
test-bed, labelled via a year of Levenshtein bucketing (§4.4) — data we
cannot ship.  This package generates a behaviourally equivalent corpus:

- per-**vendor** message templates (``repro.datagen.templates``) so the
  same issue is phrased differently across the test-bed's architectures
  — the heterogeneity that motivates the paper,
- parameter slots (node ids, temperatures, ports, hex ids...) giving
  the uniqueness and volume of real logs,
- class imbalance matching Table 2 (``repro.datagen.generator``),
- **firmware drift** mutations (``repro.datagen.firmware``) reproducing
  the §3 failure mode where message syntax shifts over time, and
- arrival processes (``repro.datagen.workload``) with incident bursts
  for the streaming / monitoring experiments.
"""

from repro.datagen.vendors import VendorProfile, VENDORS, vendor_by_name
from repro.datagen.templates import MessageTemplate, TEMPLATES, templates_for
from repro.datagen.generator import CorpusGenerator, LabeledCorpus, TABLE2_COUNTS
from repro.datagen.firmware import FirmwareDrift, DriftedTemplateSet
from repro.datagen.sessions import SessionGenerator, LabeledSession, SessionKind
from repro.datagen.newcomer import NEWCOMER_VENDOR, NEWCOMER_TEMPLATES, generate_newcomer_messages
from repro.datagen.telemetry import (
    TelemetrySample,
    TelemetryGenerator,
    FaultySensor,
    RackHeat,
    FamilyQuirk,
)
from repro.datagen.workload import (
    ArrivalProcess,
    PoissonArrivals,
    BurstArrivals,
    Incident,
    StreamEvent,
    generate_stream,
)
from repro.datagen.sender import render_event, wire_lines, send_udp, send_tcp

__all__ = [
    "VendorProfile",
    "VENDORS",
    "vendor_by_name",
    "MessageTemplate",
    "TEMPLATES",
    "templates_for",
    "CorpusGenerator",
    "LabeledCorpus",
    "TABLE2_COUNTS",
    "FirmwareDrift",
    "DriftedTemplateSet",
    "SessionGenerator",
    "LabeledSession",
    "SessionKind",
    "NEWCOMER_VENDOR",
    "NEWCOMER_TEMPLATES",
    "generate_newcomer_messages",
    "TelemetrySample",
    "TelemetryGenerator",
    "FaultySensor",
    "RackHeat",
    "FamilyQuirk",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstArrivals",
    "Incident",
    "StreamEvent",
    "generate_stream",
    "render_event",
    "wire_lines",
    "send_udp",
    "send_tcp",
]
