"""Firmware-drift mutations of message templates.

§3 describes the failure mode of the legacy bucketing approach: "as
time went on, and systems received new firmware updates ... the
semantics and syntax of the messages would differ slightly which would
produce new buckets in the queue that needed to be classified."

:class:`FirmwareDrift` models a firmware update as a deterministic
rewrite of a vendor's templates: synonym substitutions, punctuation and
casing changes, field reordering, and added/removed boilerplate
prefixes.  Crucially the rewrites preserve the *discriminative
vocabulary* of each category (a thermal message still talks about
temperature and throttling) while changing enough surface characters to
push messages past an edit-distance threshold — which is why the
TF-IDF+ML pipeline survives drift that defeats bucketing (EXP-DRIFT).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.templates import MessageTemplate, TEMPLATES

__all__ = ["FirmwareDrift", "DriftedTemplateSet"]

# Synonym groups: within a group, a drift step may swap one surface form
# for another.  Groups keep category-critical stems intact (throttle →
# throttling stays in-family; "temperature" may become "temp reading"
# but never disappears).
_SYNONYMS: tuple[tuple[str, ...], ...] = (
    ("above threshold", "over limit", "beyond threshold"),
    ("temperature", "temp reading", "temperature reading"),
    ("throttled", "throttling engaged", "throttled down"),
    ("failure detected", "fault detected", "failure observed"),
    ("error", "err", "error condition"),
    ("exceeds", "is above", "exceeded"),
    ("not responding", "unresponsive", "no response"),
    ("Connection closed", "Connection terminated", "Session closed"),
    ("disconnect", "detach", "unplug event"),
    ("device number", "device id", "dev num"),
    ("memory read error", "memory rd error", "read error in memory"),
    ("shutting down", "initiating shutdown", "powering off"),
    ("sync lost", "synchronization lost", "out of sync"),
    ("started", "initiated", "begun"),
)

_PREFIXES = ("", "[fw] ", "EVT: ", "## ", "(notice) ")


@dataclass(frozen=True)
class DriftedTemplateSet:
    """Templates after some number of firmware generations.

    Attributes
    ----------
    generation:
        How many drift steps were applied.
    templates:
        The rewritten templates (same categories/apps as the originals).
    """

    generation: int
    templates: tuple[MessageTemplate, ...]


@dataclass
class FirmwareDrift:
    """Deterministic template rewriter simulating firmware updates.

    Parameters
    ----------
    seed:
        Base RNG seed; generation ``g`` uses ``seed + g`` so successive
        generations drift cumulatively but reproducibly.
    mutation_rate:
        Probability that any given applicable rewrite fires on a
        template per generation.
    """

    seed: int = 7
    mutation_rate: float = 0.6

    def drift(
        self,
        templates: tuple[MessageTemplate, ...] = TEMPLATES,
        generations: int = 1,
    ) -> DriftedTemplateSet:
        """Apply ``generations`` successive drift steps to ``templates``."""
        if generations < 0:
            raise ValueError(f"generations must be >= 0, got {generations}")
        current = templates
        for g in range(generations):
            rng = np.random.default_rng(self.seed + g)
            current = tuple(self._mutate(t, rng) for t in current)
        return DriftedTemplateSet(generation=generations, templates=current)

    def _mutate(self, tpl: MessageTemplate, rng: np.random.Generator) -> MessageTemplate:
        text = tpl.text
        # 1. synonym swaps
        for group in _SYNONYMS:
            for i, form in enumerate(group):
                if form in text and rng.random() < self.mutation_rate:
                    alt = group[(i + 1 + int(rng.integers(0, len(group) - 1))) % len(group)]
                    text = text.replace(form, alt)
                    break
        # 2. punctuation churn: commas ↔ " -", trailing period toggles
        if rng.random() < self.mutation_rate * 0.5:
            text = text.replace(", ", " - ") if ", " in text else text.replace(" - ", ", ")
        if rng.random() < self.mutation_rate * 0.3:
            text = text.rstrip(".") if text.endswith(".") else text + "."
        # 3. casing churn on the first word (vendors flip Warning/WARNING)
        if rng.random() < self.mutation_rate * 0.4:
            first, _, rest = text.partition(" ")
            if first.isalpha():
                text = (first.upper() if not first.isupper() else first.capitalize()) + " " + rest
        # 4. boilerplate prefix churn
        if rng.random() < self.mutation_rate * 0.4:
            text = _strip_known_prefix(text)
            text = _PREFIXES[int(rng.integers(0, len(_PREFIXES)))] + text
        return MessageTemplate(
            category=tpl.category,
            app=tpl.app,
            severity=tpl.severity,
            text=text,
            vendors=tpl.vendors,
            weight=tpl.weight,
        )


def _strip_known_prefix(text: str) -> str:
    for p in _PREFIXES:
        if p and text.startswith(p):
            return text[len(p):]
    return text
