"""Arrival processes and incident injection for the streaming substrate.

§1 motivates the problem by volume: "In just an hour over a million
messages can be produced in a small scale test-bed like Darwin."  The
streaming and monitoring experiments need timestamped message streams
with that character: a Poisson background of mostly-Unimportant noise,
punctuated by *incidents* — e.g. a cold-aisle door left open causing a
burst of thermal messages from every node in a rack (§4.5.1) — which
the frequency/positional/per-architecture analyses must detect.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.message import SyslogMessage
from repro.core.taxonomy import Category
from repro.datagen.templates import fill_slots, templates_for
from repro.datagen.vendors import VENDORS, VendorProfile

__all__ = [
    "StreamEvent",
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstArrivals",
    "SteppedArrivals",
    "DiurnalArrivals",
    "Incident",
    "generate_stream",
    "offered_load_events",
    "standard_simulation_events",
]


@dataclass(frozen=True)
class StreamEvent:
    """One timestamped labelled message in a stream."""

    message: SyslogMessage
    label: Category
    incident: str | None = None  # name of the injected incident, if any


class ArrivalProcess:
    """Yields arrival timestamps within ``[t0, t1)``."""

    def times(self, t0: float, t1: float, rng: np.random.Generator) -> np.ndarray:
        """Arrival timestamps in ``[t0, t1)``, sorted ascending."""
        raise NotImplementedError


@dataclass
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` per second."""

    rate: float

    def times(self, t0: float, t1: float, rng: np.random.Generator) -> np.ndarray:
        """Uniformly scattered arrivals at the Poisson count."""
        if self.rate < 0:
            raise ValueError(f"rate must be >= 0, got {self.rate}")
        if t1 <= t0 or self.rate == 0:
            return np.empty(0)
        n = rng.poisson(self.rate * (t1 - t0))
        return np.sort(rng.uniform(t0, t1, size=n))


@dataclass
class BurstArrivals(ArrivalProcess):
    """A burst: exponentially decaying rate from ``peak_rate`` at ``t0``."""

    peak_rate: float
    decay_s: float

    def times(self, t0: float, t1: float, rng: np.random.Generator) -> np.ndarray:
        """Thinned inhomogeneous-Poisson arrivals with decaying rate."""
        if self.peak_rate <= 0 or self.decay_s <= 0:
            raise ValueError("peak_rate and decay_s must be positive")
        # Thinning of an inhomogeneous Poisson process with
        # rate(t) = peak_rate * exp(-(t - t0)/decay_s).
        out: list[float] = []
        t = t0
        while t < t1:
            t += rng.exponential(1.0 / self.peak_rate)
            if t >= t1:
                break
            if rng.random() < np.exp(-(t - t0) / self.decay_s):
                out.append(t)
        return np.asarray(out)


@dataclass
class SteppedArrivals(ArrivalProcess):
    """Piecewise-constant offered load: ``(start_s, rate)`` steps.

    The autoscaling bench's load driver — a step profile like
    ``[(0, 20), (120, 200), (300, 20)]`` swings the offered rate 10×
    with sharp edges, the hardest shape for a controller that must not
    oscillate.  Each step's window is an independent homogeneous
    Poisson segment, so the profile composes from
    :class:`PoissonArrivals` semantics.
    """

    steps: Sequence[tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("steps must be non-empty")
        starts = [s for s, _r in self.steps]
        if starts != sorted(starts):
            raise ValueError(f"step starts must be ascending, got {starts}")
        if any(r < 0 for _s, r in self.steps):
            raise ValueError("step rates must be >= 0")

    def rate_at(self, t: float) -> float:
        """Offered rate in effect at time ``t`` (0 before the first step)."""
        rate = 0.0
        for start, step_rate in self.steps:
            if t < start:
                break
            rate = step_rate
        return rate

    def times(self, t0: float, t1: float, rng: np.random.Generator) -> np.ndarray:
        """Arrivals across all step segments overlapping ``[t0, t1)``."""
        edges = [s for s, _r in self.steps] + [t1]
        chunks: list[np.ndarray] = []
        for (start, rate), end in zip(self.steps, edges[1:]):
            lo, hi = max(start, t0), min(end, t1)
            if hi <= lo or rate == 0:
                continue
            n = rng.poisson(rate * (hi - lo))
            chunks.append(rng.uniform(lo, hi, size=n))
        if not chunks:
            return np.empty(0)
        return np.sort(np.concatenate(chunks))


@dataclass
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night load: ``base_rate ± amplitude`` over ``period_s``.

    ``rate(t) = base_rate + amplitude × sin(2πt / period_s)`` — the
    smooth counterpart to :class:`SteppedArrivals` for exercising a
    controller against gradual drift instead of step shocks.
    """

    base_rate: float
    amplitude: float
    period_s: float = 86_400.0

    def __post_init__(self) -> None:
        if self.base_rate <= 0 or self.period_s <= 0:
            raise ValueError("base_rate and period_s must be positive")
        if not 0 <= self.amplitude <= self.base_rate:
            raise ValueError(
                "amplitude must be in [0, base_rate] (rate stays >= 0), got "
                f"amplitude={self.amplitude} base_rate={self.base_rate}"
            )

    def rate_at(self, t: float) -> float:
        """Offered rate at time ``t``."""
        return self.base_rate + self.amplitude * float(
            np.sin(2.0 * np.pi * t / self.period_s)
        )

    def times(self, t0: float, t1: float, rng: np.random.Generator) -> np.ndarray:
        """Thinned inhomogeneous-Poisson arrivals under the sinusoid."""
        peak = self.base_rate + self.amplitude
        out: list[float] = []
        t = t0
        while t < t1:
            t += rng.exponential(1.0 / peak)
            if t >= t1:
                break
            if rng.random() < self.rate_at(t) / peak:
                out.append(t)
        return np.asarray(out)


@dataclass(frozen=True)
class Incident:
    """An injected incident: a burst of one category from specific nodes.

    Attributes
    ----------
    name:
        Identifier recorded on the emitted events (ground truth for the
        monitoring experiments).
    category:
        Message category the incident emits.
    start, duration:
        Window of elevated emission (seconds).
    hostnames:
        Affected nodes (e.g. every node in a rack for a cold-aisle
        incident).
    peak_rate:
        Per-node peak message rate at incident start.
    """

    name: str
    category: Category
    start: float
    duration: float
    hostnames: tuple[str, ...]
    peak_rate: float = 2.0


def generate_stream(
    *,
    duration_s: float,
    background_rate: float,
    incidents: Sequence[Incident] = (),
    seed: int = 0,
    nodes_per_vendor: int = 10,
    background_mix: dict[Category, float] | None = None,
    arrivals: ArrivalProcess | None = None,
) -> list[StreamEvent]:
    """Generate a timestamped labelled message stream.

    Parameters
    ----------
    duration_s:
        Stream length in seconds.
    background_rate:
        Total background messages/second across the test-bed.
    incidents:
        Bursts injected on top of the background.
    background_mix:
        Category mix of the background; defaults to a realistic
        noise-dominated mix (93% Unimportant, the rest spread thinly).
    arrivals:
        Background arrival process; overrides the constant
        ``background_rate`` Poisson default (used by the offered-load
        driver for stepped/diurnal profiles).

    Returns
    -------
    list[StreamEvent]
        Events sorted by timestamp.
    """
    rng = np.random.default_rng(seed)
    mix = background_mix or {
        Category.UNIMPORTANT: 0.93,
        Category.SSH: 0.03,
        Category.THERMAL: 0.015,
        Category.MEMORY: 0.01,
        Category.HARDWARE: 0.007,
        Category.INTRUSION: 0.004,
        Category.USB: 0.003,
        Category.SLURM: 0.001,
    }
    cats = list(mix)
    probs = np.asarray([mix[c] for c in cats], dtype=np.float64)
    if probs.sum() <= 0:
        raise ValueError("background_mix must have positive total weight")
    probs = probs / probs.sum()

    events: list[StreamEvent] = []
    if arrivals is None:
        arrivals = PoissonArrivals(background_rate)
    times = arrivals.times(0.0, duration_s, rng)
    choices = rng.choice(len(cats), size=len(times), p=probs)
    for t, ci in zip(times, choices):
        cat = cats[ci]
        vendor = VENDORS[int(rng.integers(0, len(VENDORS)))]
        events.append(
            StreamEvent(
                message=_emit(cat, vendor, None, float(t), rng, nodes_per_vendor),
                label=cat,
            )
        )

    for inc in incidents:
        burst = BurstArrivals(peak_rate=inc.peak_rate, decay_s=max(inc.duration / 3.0, 1.0))
        for host in inc.hostnames:
            vendor = _vendor_of(host)
            for t in burst.times(inc.start, inc.start + inc.duration, rng):
                events.append(
                    StreamEvent(
                        message=_emit(inc.category, vendor, host, float(t), rng, nodes_per_vendor),
                        label=inc.category,
                        incident=inc.name,
                    )
                )
    events.sort(key=lambda e: e.message.timestamp)
    return events


def offered_load_events(
    *,
    profile: str,
    duration_s: float,
    base_rate: float,
    swing: float = 10.0,
    seed: int = 0,
) -> list[StreamEvent]:
    """The autoscaling bench's load driver: a named offered-load profile.

    ``profile`` selects the shape:

    - ``"surge"`` — a ``swing``× step up for the middle third of the
      run, back down for the final third (the 10× swing the control
      plane must hold the p99 SLO across),
    - ``"diurnal"`` — one full sinusoidal period spanning the run,
      swinging between ``base_rate`` and ``swing × base_rate``,
    - ``"constant"`` — plain Poisson at ``base_rate`` (the
      anti-oscillation baseline: a correct controller goes quiet).

    Pure function of its arguments, like
    :func:`standard_simulation_events`.
    """
    if base_rate <= 0 or duration_s <= 0:
        raise ValueError("base_rate and duration_s must be positive")
    if swing < 1.0:
        raise ValueError(f"swing must be >= 1, got {swing}")
    arrivals: ArrivalProcess
    if profile == "surge":
        arrivals = SteppedArrivals([
            (0.0, base_rate),
            (duration_s / 3.0, base_rate * swing),
            (2.0 * duration_s / 3.0, base_rate),
        ])
    elif profile == "diurnal":
        mid = base_rate * (1.0 + swing) / 2.0
        arrivals = DiurnalArrivals(
            base_rate=mid,
            amplitude=base_rate * (swing - 1.0) / 2.0,
            period_s=duration_s,
        )
    elif profile == "constant":
        arrivals = PoissonArrivals(base_rate)
    else:
        raise ValueError(
            f"unknown profile {profile!r}; "
            "known: 'surge', 'diurnal', 'constant'"
        )
    return generate_stream(
        duration_s=duration_s, background_rate=base_rate,
        seed=seed, arrivals=arrivals,
    )


def standard_simulation_events(
    *,
    duration_s: float,
    background_rate: float,
    seed: int = 0,
    incident: bool = False,
) -> list[StreamEvent]:
    """The CLI/durability standard trace: background ± one incident.

    With ``incident`` a cold-aisle thermal burst hits nodes cn000–cn007
    at 40% of the run (burst length 60 s, clamped to half the run so
    short traces stay inside their own window).  Crucially this is a
    *pure function* of its arguments — the durable-ingest layer
    regenerates the trace on resume and uses each event's position as
    its identity, so the same config must always yield the same events.
    """
    incidents = []
    if incident:
        incidents.append(Incident(
            "cold-aisle-door-open", Category.THERMAL,
            start=duration_s * 0.4, duration=min(60.0, duration_s * 0.5),
            hostnames=tuple(f"cn{i:03d}" for i in range(8)),
            peak_rate=2.0,
        ))
    return generate_stream(
        duration_s=duration_s, background_rate=background_rate,
        incidents=incidents, seed=seed,
    )


def _vendor_of(hostname: str) -> VendorProfile:
    for v in VENDORS:
        if hostname.startswith(v.node_prefix):
            return v
    return VENDORS[0]


def _emit(
    cat: Category,
    vendor: VendorProfile,
    hostname: str | None,
    t: float,
    rng: np.random.Generator,
    nodes_per_vendor: int,
) -> SyslogMessage:
    tpls = templates_for(cat, vendor.name)
    if not tpls:
        tpls = templates_for(cat)
    w = np.asarray([tp.weight for tp in tpls])
    tpl = tpls[int(rng.choice(len(tpls), p=w / w.sum()))]
    return SyslogMessage(
        timestamp=t,
        hostname=hostname or vendor.node_name(int(rng.integers(0, nodes_per_vendor))),
        app=tpl.app,
        text=fill_slots(tpl, rng),
        severity=tpl.severity,
        pid=int(rng.integers(100, 99999)),
    )
