"""EXP-T1: Table 1 — top-5 TF-IDF tokens per category."""

from __future__ import annotations

from repro.datagen.generator import CorpusGenerator
from repro.textproc.tfidf import category_top_tokens

__all__ = ["run_table1"]


def run_table1(
    *, scale: float = 0.02, seed: int = 0, top_k: int = 5
) -> dict[str, list[str]]:
    """Generate a corpus and extract per-category top TF-IDF tokens.

    Returns ``category name → top tokens`` in Table 1's format.  The
    paper's table is data-dependent; the reproduction check is that the
    characteristic tokens appear for the right categories ("throttled"/
    "temperature" under Thermal, "preauth"/"port" under SSH, the
    application identifiers under Unimportant, ...).
    """
    corpus = CorpusGenerator(scale=scale, seed=seed).generate()
    return category_top_tokens(
        corpus.texts, [lab.value for lab in corpus.labels], top_k=top_k
    )
