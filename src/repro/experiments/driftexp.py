"""EXP-DRIFT: robustness to firmware drift — the paper's core motivation.

§3 describes why edit-distance bucketing was abandoned: after firmware
updates "the semantics and syntax of the messages would differ slightly
which would produce new buckets in the queue that needed to be
classified.  This continuous re-training process would consume valuable
system administrator time."

The experiment trains both approaches on generation-0 messages, then
evaluates on corpora produced from progressively drifted templates:

- the bucketing classifier's *coverage* (fraction of messages matching
  any labelled bucket) collapses with drift, and every missed message
  shape is one more bucket an administrator must label;
- the TF-IDF+ML classifier's accuracy degrades far more slowly, because
  drift rewrites surface forms while the discriminative vocabulary
  survives lemmatization and masking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.buckets.bucketer import LevenshteinBucketClassifier
from repro.datagen.firmware import FirmwareDrift
from repro.datagen.generator import CorpusGenerator
from repro.datagen.templates import TEMPLATES
from repro.ml import LogisticRegression, weighted_f1_score
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["DriftRow", "run_drift_experiment"]


@dataclass(frozen=True)
class DriftRow:
    """Outcomes at one drift generation."""

    generation: int
    bucket_coverage: float  # fraction of messages matched to a labelled bucket
    bucket_accuracy: float  # accuracy over matched messages
    new_buckets: int  # administrator labelling burden created
    ml_weighted_f1: float
    drain_coverage: float  # Drain-template classifier coverage
    new_templates: int  # Drain's labelling burden created


def run_drift_experiment(
    *,
    scale: float = 0.01,
    seed: int = 0,
    generations: tuple[int, ...] = (0, 1, 2, 3),
    mutation_rate: float = 0.6,
) -> list[DriftRow]:
    """Train at generation 0, evaluate across firmware generations."""
    train = CorpusGenerator(scale=scale, seed=seed).generate()
    y_train = np.asarray([lab.value for lab in train.labels])

    bucketer = LevenshteinBucketClassifier(threshold=7)
    bucketer.fit(train.texts, list(train.labels))

    from repro.buckets.drain_classifier import DrainTemplateClassifier

    drain = DrainTemplateClassifier()
    drain.fit(train.texts, list(train.labels))

    vec = TfidfVectorizer(max_features=2000)
    X_train = vec.fit_transform(train.texts)
    ml = LogisticRegression(max_iter=200)
    ml.fit(X_train, y_train)

    drifter = FirmwareDrift(seed=seed + 1, mutation_rate=mutation_rate)
    rows: list[DriftRow] = []
    for gen in generations:
        templates = drifter.drift(TEMPLATES, generations=gen).templates
        test = CorpusGenerator(
            scale=scale, seed=seed + 100 + gen, templates=templates
        ).generate()
        y_test = np.asarray([lab.value for lab in test.labels])

        buckets_before = bucketer.n_buckets
        preds = []
        for text in test.texts:
            bucket = bucketer.observe(text)  # novel shapes queue up
            preds.append(bucket.category)
        matched = [
            (p, t) for p, t in zip(preds, test.labels) if p is not None
        ]
        coverage = len(matched) / len(test)
        accuracy = (
            float(np.mean([p == t for p, t in matched])) if matched else 0.0
        )
        new_buckets = bucketer.n_buckets - buckets_before

        templates_before = drain.n_templates
        drain_hits = 0
        for text in test.texts:
            label, _is_new = drain.observe(text)
            if label is not None:
                drain_hits += 1
        new_templates = drain.n_templates - templates_before

        ml_pred = ml.predict(vec.transform(test.texts))
        rows.append(
            DriftRow(
                generation=gen,
                bucket_coverage=coverage,
                bucket_accuracy=accuracy,
                new_buckets=new_buckets,
                ml_weighted_f1=weighted_f1_score(y_test, ml_pred),
                drain_coverage=drain_hits / len(test),
                new_templates=new_templates,
            )
        )
    return rows
