"""EXP-ANOM: the related-work baselines comparison (§2).

Reproduces the two findings the paper cites from its related work:

1. *Supervised models outperform isolation forest and PCA, and PCA is
   the better of the two unsupervised detectors* (Studiawan & Sohel
   [20]; Zope et al. [24]) — measured as message-level ROC-AUC on the
   task "is this message a real issue (vs Unimportant noise)?".
   Unsupervised detectors train on noise only; the supervised model
   sees labels.

2. *DeepLog outperforms isolation forest and PCA* (Du et al. [7]) —
   measured at the session level on workflow sessions with structural
   anomalies (injected errors, crashes, shuffles), where the sequence
   model's order-awareness is the differentiator.  The point detectors
   score a session by its max message score.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.taxonomy import Category
from repro.datagen.generator import CorpusGenerator
from repro.datagen.sessions import SessionGenerator
from repro.ml.anomaly import DeepLogDetector, IsolationForest, PCAAnomalyDetector
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import roc_auc_score
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["AnomalyRow", "run_message_level", "run_session_level"]


@dataclass(frozen=True)
class AnomalyRow:
    """One detector's score on one task."""

    detector: str
    task: str
    auc: float
    supervised: bool


def run_message_level(
    *, scale: float = 0.01, seed: int = 0, max_features: int = 800
) -> list[AnomalyRow]:
    """Message-level: real issue vs noise, ROC-AUC."""
    corpus = CorpusGenerator(scale=scale, seed=seed).generate()
    is_issue = np.asarray([lab is not Category.UNIMPORTANT for lab in corpus.labels])
    texts = corpus.texts
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(texts))
    split = int(0.7 * len(texts))
    tr, te = order[:split], order[split:]

    vec = TfidfVectorizer(max_features=max_features)
    X_tr = vec.fit_transform([texts[i] for i in tr])
    X_te = vec.transform([texts[i] for i in te])
    y_tr, y_te = is_issue[tr], is_issue[te]

    rows: list[AnomalyRow] = []

    # supervised reference
    clf = LogisticRegression(max_iter=150)
    clf.fit(X_tr, np.where(y_tr, "issue", "noise"))
    pos = clf.classes_.tolist().index("issue")
    rows.append(AnomalyRow(
        "Logistic Regression (supervised)", "message",
        roc_auc_score(y_te, clf.predict_proba(X_te)[:, pos]), True,
    ))

    # unsupervised detectors train on the noise portion only
    noise_rows = tr[~y_tr]
    X_noise = X_tr[_as_index(noise_rows, tr)]
    pca = PCAAnomalyDetector(n_components=16, quantile=0.99).fit(X_noise)
    rows.append(AnomalyRow(
        "PCA (unsupervised)", "message", roc_auc_score(y_te, pca.score(X_te)), False,
    ))
    iso = IsolationForest(n_estimators=50, seed=seed).fit(X_noise)
    rows.append(AnomalyRow(
        "Isolation Forest (unsupervised)", "message",
        roc_auc_score(y_te, iso.score(X_te)), False,
    ))
    return rows


def _as_index(selected: np.ndarray, universe: np.ndarray) -> np.ndarray:
    """Positions of ``selected`` ids inside the ``universe`` id array."""
    pos_of = {v: i for i, v in enumerate(universe.tolist())}
    return np.asarray([pos_of[v] for v in selected.tolist()])


def run_session_level(
    *,
    seed: int = 0,
    n_train: int = 300,
    n_test_normal: int = 120,
    n_test_anomalous: int = 90,
    max_features: int = 400,
) -> list[AnomalyRow]:
    """Session-level: DeepLog vs point detectors on workflow sessions."""
    train_gen = SessionGenerator(seed=seed)
    train_sessions = [train_gen.normal().messages for _ in range(n_train)]
    test = SessionGenerator(seed=seed + 1).generate(n_test_normal, n_test_anomalous)
    truth = np.asarray([s.is_anomalous for s in test])

    rows: list[AnomalyRow] = []

    dl = DeepLogDetector(order=2, top_g=3).fit(train_sessions)
    rows.append(AnomalyRow(
        "DeepLog (semi-supervised)", "session",
        roc_auc_score(truth, np.asarray([dl.anomaly_rate(s.messages) for s in test])),
        False,
    ))

    # point detectors see the same training messages, no order
    flat = [m for s in train_sessions for m in s]
    vec = TfidfVectorizer(max_features=max_features)
    X_flat = vec.fit_transform(flat)

    pca = PCAAnomalyDetector(n_components=8, quantile=0.99).fit(X_flat)
    iso = IsolationForest(n_estimators=50, seed=seed).fit(X_flat)
    for name, det in (("PCA (unsupervised)", pca),
                      ("Isolation Forest (unsupervised)", iso)):
        scores = np.asarray([
            float(det.score(vec.transform(list(s.messages))).max()) for s in test
        ])
        rows.append(AnomalyRow(name, "session", roc_auc_score(truth, scores), False))
    return rows
