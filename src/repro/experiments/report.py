"""One-shot experiment report: every paper artifact, regenerated.

``write_report`` runs all experiment runners at a configurable scale
and writes a self-contained markdown report with paper-vs-measured
tables — the programmatic equivalent of running the whole benchmark
suite with ``-s`` and collecting the banners.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.taxonomy import Category
from repro.experiments.classifiers import linear_svc_confusion, run_classifier_comparison
from repro.experiments.common import ExperimentData, format_table
from repro.experiments.correlationexp import run_correlation_experiment
from repro.experiments.driftexp import run_drift_experiment
from repro.experiments.retrainexp import run_retrain_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import PAPER_TABLE3, run_table3
from repro.monitor.dashboard import render_confusion

__all__ = ["write_report", "build_report"]

_FIG3_PAPER = {
    "Logistic Regression": 0.9992,
    "Ridge Classifier": 0.9987,
    "kNN": 0.998475,
    "Random Forest": 0.9995,
    "Linear SVC": 0.99925,
    "Log-loss SGD": 0.987794,
    "Nearest Centroid": 0.952334,
    "Complement Naive Bayes": 0.99751,
}


def build_report(*, scale: float = 0.02, seed: int = 0) -> str:
    """Run every experiment and return the markdown report text."""
    sections: list[str] = [
        "# Experiment report — Heterogeneous Syslog Analysis reproduction",
        f"\nGenerated at corpus scale {scale} (paper dataset = scale 1.0), "
        f"seed {seed}.  Absolute timings depend on this machine; the "
        "paper-vs-measured *shape* is the reproduction criterion "
        "(see EXPERIMENTS.md).\n",
    ]

    # Table 1
    tops = run_table1(scale=scale, seed=seed)
    sections.append("## Table 1 — top TF-IDF tokens per category\n")
    sections.append("```\n" + format_table(
        ["Category", "Top tokens"],
        [[c, ", ".join(t)] for c, t in sorted(tops.items())],
    ) + "\n```\n")

    # Table 2
    t2 = run_table2(scale=scale, seed=seed)
    sections.append("## Table 2 — unique messages per category\n")
    sections.append("```\n" + format_table(
        ["Category", "generated", "paper"],
        [[c.value, t2.generated.get(c, 0), t2.paper[c]] for c in Category],
    ) + f"\n```\nall texts unique: {t2.all_unique}\n")

    # Figure 3 + Figure 2
    data = ExperimentData(scale=scale, seed=seed)
    rows = run_classifier_comparison(data)
    sections.append("## Figure 3 — traditional classifiers\n")
    sections.append("```\n" + format_table(
        ["Classifier", "wF1 measured", "wF1 paper", "train s", "test s"],
        [[r.name, r.weighted_f1, _FIG3_PAPER[r.name], r.train_s, r.test_s]
         for r in rows],
    ) + "\n```\n")
    cm, labels = linear_svc_confusion(data)
    sections.append("## Figure 2 — Linear SVC confusion matrix\n")
    sections.append("```\n" + render_confusion(cm, labels) + "\n```\n")

    # Table 3
    t3 = run_table3()
    sections.append("## Table 3 — LLM inference cost\n")
    sections.append("```\n" + format_table(
        ["Model", "time s (model)", "time s (paper)", "msgs/h (model)"],
        [[r.model, r.inference_time_s, PAPER_TABLE3[r.model][0],
          int(r.messages_per_hour)] for r in t3],
    ) + "\n```\n")

    # Drift
    drift = run_drift_experiment(scale=min(scale, 0.01), seed=seed,
                                 generations=(0, 1, 2))
    sections.append("## Firmware drift — bucketing vs ML\n")
    sections.append("```\n" + format_table(
        ["fw gen", "bucket coverage", "new buckets", "ML wF1"],
        [[r.generation, r.bucket_coverage, r.new_buckets, r.ml_weighted_f1]
         for r in drift],
    ) + "\n```\n")

    # Retrain
    rt = run_retrain_experiment(scale=min(scale, 0.008), seed=seed)
    sections.append("## Newcomer-vendor adaptation\n")
    sections.append(
        f"static accuracy on newcomer messages: {rt.static_newcomer_accuracy:.3f}; "
        f"adaptive: {rt.adaptive_newcomer_accuracy:.3f} after "
        f"{rt.retrain_events} retrain(s) / {rt.labels_requested} labels.\n"
    )

    # Correlation
    corr = run_correlation_experiment(seed=seed, duration_s=3600.0)
    sections.append("## Badge-access correlation\n")
    sections.append(
        f"USB lift {corr.usb.lift:.2f} (p={corr.usb.p_value:.3f}); "
        f"SSH control lift {corr.ssh_control.lift:.2f} "
        f"(p={corr.ssh_control.p_value:.3f}).\n"
    )
    return "\n".join(sections)


def write_report(path: str | Path, *, scale: float = 0.02, seed: int = 0) -> Path:
    """Build the report and write it to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report(scale=scale, seed=seed))
    return path
