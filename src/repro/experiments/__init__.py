"""Experiment runners — one per paper table/figure.

Each module reproduces one artifact of the paper's evaluation and
returns structured results the benchmarks print and the tests assert
on.  The experiment ↔ module map lives in DESIGN.md; paper-vs-measured
numbers are recorded in EXPERIMENTS.md.
"""

from repro.experiments.common import ExperimentData, format_table
from repro.experiments.classifiers import (
    ClassifierRow,
    run_classifier_comparison,
    linear_svc_confusion,
    CLASSIFIER_FACTORIES,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3, Table3Row
from repro.experiments.prompt_ablation import run_prompt_ablation, PromptAblationRow
from repro.experiments.throughput import run_throughput_sweep, ThroughputRow
from repro.experiments.driftexp import run_drift_experiment, DriftRow
from repro.experiments.blacklistexp import run_blacklist_experiment, BlacklistResult
from repro.experiments.monitoringexp import run_monitoring_experiment, MonitoringResult

__all__ = [
    "ExperimentData",
    "format_table",
    "ClassifierRow",
    "run_classifier_comparison",
    "linear_svc_confusion",
    "CLASSIFIER_FACTORIES",
    "run_table1",
    "run_table2",
    "run_table3",
    "Table3Row",
    "run_prompt_ablation",
    "PromptAblationRow",
    "run_throughput_sweep",
    "ThroughputRow",
    "run_drift_experiment",
    "DriftRow",
    "run_blacklist_experiment",
    "BlacklistResult",
    "run_monitoring_experiment",
    "MonitoringResult",
]
