"""EXP-RETRAIN: adapting to a new vendor joining the test-bed (§1/§3/§7).

A classifier trained on the established vendors meets a stream that
starts mixing in messages from a *newcomer* vendor whose message
vocabulary is entirely different.  Three strategies are compared:

- **static ML** — the original pipeline, never retrained: accuracy on
  newcomer messages is poor (their discriminative tokens are OOV);
- **adaptive ML** — the :class:`~repro.core.retrain.RetrainController`:
  drift (OOV spike) triggers a retrain with a small label budget,
  restoring accuracy;
- **bucketing** — the legacy approach's cost on the same stream: every
  new message shape is a bucket the administrator must label.

The headline: drift is *detected automatically* within one window and a
single bounded label request restores most of the lost accuracy without
touching established-vendor performance.  The one-off labelling effort
is comparable to bucketing's new-bucket queue for this single event —
the ML pipeline's advantage is that the effort does not recur on every
firmware change (see EXP-DRIFT, where bucketing's queue keeps growing
and the ML pipeline needs nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.buckets.bucketer import LevenshteinBucketClassifier
from repro.core.pipeline import ClassificationPipeline
from repro.core.retrain import RetrainController
from repro.core.taxonomy import Category
from repro.datagen.generator import CorpusGenerator
from repro.datagen.newcomer import generate_newcomer_messages
from repro.ml.linear import LogisticRegression
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["RetrainResult", "run_retrain_experiment"]


@dataclass(frozen=True)
class RetrainResult:
    """Outcomes of the newcomer-vendor scenario."""

    static_newcomer_accuracy: float
    adaptive_newcomer_accuracy: float
    adaptive_base_accuracy: float
    retrain_events: int
    labels_requested: int
    bucketing_new_buckets: int
    detection_window: int | None  # messages until the first retrain


def _make_pipeline() -> ClassificationPipeline:
    return ClassificationPipeline(
        vectorizer=TfidfVectorizer(max_features=2000),
        classifier=LogisticRegression(max_iter=150),
    )


def run_retrain_experiment(
    *,
    scale: float = 0.008,
    seed: int = 0,
    n_stream: int = 1500,
    newcomer_fraction: float = 0.5,
    window: int = 250,
    label_budget: int = 60,
) -> RetrainResult:
    """Run the newcomer-vendor adaptation scenario."""
    base = CorpusGenerator(scale=scale, seed=seed).generate()
    rng = np.random.default_rng(seed + 1)

    # the stream: established-vendor traffic with newcomer messages mixed in
    n_new = int(n_stream * newcomer_fraction)
    new_msgs, new_labels = generate_newcomer_messages(n_new + 400, seed=seed + 2)
    established = CorpusGenerator(scale=scale, seed=seed + 3).generate()
    stream_texts: list[str] = []
    stream_labels: list[Category] = []
    est_idx = 0
    new_idx = 0
    for i in range(n_stream):
        if rng.random() < newcomer_fraction and new_idx < n_new:
            stream_texts.append(new_msgs[new_idx].text)
            stream_labels.append(new_labels[new_idx])
            new_idx += 1
        else:
            stream_texts.append(established.texts[est_idx % len(established)])
            stream_labels.append(established.labels[est_idx % len(established)])
            est_idx += 1

    truth = dict(zip(stream_texts, stream_labels))

    # --- static pipeline -------------------------------------------------
    static = _make_pipeline()
    static.fit(base.texts, base.labels)

    # --- adaptive pipeline ------------------------------------------------
    controller = RetrainController(
        pipeline_factory=_make_pipeline,
        base_texts=base.texts,
        base_labels=base.labels,
        labeler=lambda texts: [truth[t] for t in texts],
        window=window,
        label_budget=label_budget,
    )
    for text in stream_texts:
        controller.classify(text)

    # --- bucketing cost on the same stream ---------------------------------
    bucketer = LevenshteinBucketClassifier(threshold=7)
    bucketer.fit(base.texts, list(base.labels))
    before = bucketer.n_buckets
    for text in stream_texts:
        bucketer.observe(text)
    bucketing_new = bucketer.n_buckets - before

    # --- evaluation: held-out newcomer + base messages ----------------------
    eval_new = [(m.text, lab) for m, lab in
                zip(new_msgs[n_new:], new_labels[n_new:])]
    eval_base = list(zip(base.texts[:400], base.labels[:400]))

    def accuracy(pipe: ClassificationPipeline, pairs) -> float:
        preds = pipe.classify_batch([t for t, _l in pairs])
        return float(np.mean([r.category == l for r, (_t, l) in zip(preds, pairs)]))

    return RetrainResult(
        static_newcomer_accuracy=accuracy(static, eval_new),
        adaptive_newcomer_accuracy=accuracy(controller.active_pipeline, eval_new),
        adaptive_base_accuracy=accuracy(controller.active_pipeline, eval_base),
        retrain_events=len(controller.events),
        labels_requested=controller.total_labels_requested,
        bucketing_new_buckets=bucketing_new,
        detection_window=(
            controller.events[0].at_message if controller.events else None
        ),
    )
