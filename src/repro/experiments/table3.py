"""EXP-T3: Table 3 — LLM per-message inference time and throughput.

The paper's rows (on the 4×A100 node, with the excessive-generation
fix — a tight ``max_new_tokens`` cap — in place):

====================================  ==============  =================
model                                 inference time   messages per hour
====================================  ==============  =================
Falcon-7b                             0.639 s          5633
Falcon-40b                            2.184 s          1648
facebook/Bart-Large-MNLI              0.13359 s        26948
====================================  ==============  =================

We regenerate the rows from the roofline cost model using the actual
token counts of the full §5.2 prompt on a real corpus message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import Category
from repro.llm.costmodel import InferenceCostModel
from repro.llm.models import model_spec
from repro.llm.prompts import PromptConfig, build_prompt
from repro.llm.tokenizer import count_tokens

__all__ = ["Table3Row", "run_table3", "PAPER_TABLE3"]

#: The paper's measured values, for paper-vs-measured reporting.
PAPER_TABLE3: dict[str, tuple[float, int]] = {
    "tiiuae/falcon-7b": (0.639, 5633),
    "tiiuae/falcon-40b": (2.184, 1648),
    "facebook/bart-large-mnli": (0.13359, 26948),
}


@dataclass(frozen=True)
class Table3Row:
    """One Table 3 row (model, latency, sustained throughput)."""

    model: str
    inference_time_s: float
    messages_per_hour: float
    n_gpus: int


_SAMPLE_MESSAGE = "CPU 1 Temperature Above Non-Recoverable - Asserted. Current temperature: 95C"

_SAMPLE_HINTS = {
    Category.THERMAL: ["processor", "throttled", "sensor", "cpu", "temperature"],
    Category.SSH: ["closed", "preauth", "connection", "port", "user"],
    Category.MEMORY: ["size", "real_memory", "low", "cn", "node"],
    Category.HARDWARE: ["timestamp", "sync", "clock", "system", "event"],
    Category.INTRUSION: ["root", "session", "user", "started", "boot"],
    Category.SLURM: ["version", "update", "slurm", "please", "node"],
    Category.USB: ["usb", "device", "hub", "number", "new"],
    Category.UNIMPORTANT: ["error", "lpi_hbm_nn", "job_argument"],
}


def run_table3(
    *,
    max_new_tokens: int = 20,
    message: str = _SAMPLE_MESSAGE,
    cost_model: InferenceCostModel | None = None,
) -> list[Table3Row]:
    """Regenerate Table 3 from the cost model.

    ``max_new_tokens`` is the paper's excessive-generation fix; raising
    it shows the uncapped cost the paper complained about.
    """
    cm = cost_model or InferenceCostModel()
    prompt = build_prompt(message, config=PromptConfig.full(), hints=_SAMPLE_HINTS)
    prompt_tokens = count_tokens(prompt)
    rows: list[Table3Row] = []
    for name in ("tiiuae/falcon-7b", "tiiuae/falcon-40b"):
        spec = model_spec(name)
        t = cm.generation_timing(
            spec, prompt_tokens=prompt_tokens, gen_tokens=max_new_tokens
        )
        rows.append(
            Table3Row(
                model=name,
                inference_time_s=t.total_s,
                messages_per_hour=t.messages_per_hour,
                n_gpus=t.n_gpus,
            )
        )
    bart = model_spec("facebook/bart-large-mnli")
    t = cm.zero_shot_timing(
        bart, text_tokens=count_tokens(message), n_labels=len(Category)
    )
    rows.append(
        Table3Row(
            model=bart.name,
            inference_time_s=t.total_s,
            messages_per_hour=t.messages_per_hour,
            n_gpus=t.n_gpus,
        )
    )
    return rows
