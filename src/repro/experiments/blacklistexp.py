"""EXP-BLKLST: the §5.1 blacklist pre-filter suggestion.

Compares three pipeline configurations on the same split:

1. the plain classifier over all eight categories (Figure 3 setup),
2. the classifier with the low-threshold edit-distance **blacklist**
   filtering known-Unimportant shapes before classification,
3. the §5.1 ablation that simply drops Unimportant from the data.

The paper hypothesises (2) recovers most of (3)'s accuracy gain while
still handling noise (instead of pretending it doesn't exist), and
additionally cuts classifier load because most traffic is noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.buckets.blacklist import BlacklistFilter
from repro.core.pipeline import ClassificationPipeline
from repro.core.taxonomy import Category
from repro.experiments.common import ExperimentData
from repro.ml import LogisticRegression, weighted_f1_score
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["BlacklistResult", "run_blacklist_experiment"]


@dataclass(frozen=True)
class BlacklistResult:
    """One configuration's outcome."""

    name: str
    weighted_f1: float
    classify_s: float
    messages_to_model: int  # classifier load after filtering
    filtered: int


def run_blacklist_experiment(
    *, scale: float = 0.02, seed: int = 0
) -> list[BlacklistResult]:
    """Run the three configurations on one shared split."""
    data = ExperimentData(scale=scale, seed=seed).prepare()
    results: list[BlacklistResult] = []

    def evaluate(name: str, pipe: ClassificationPipeline, texts, y_true) -> None:
        t0 = time.perf_counter()
        out = pipe.classify_batch(list(texts))
        dt = time.perf_counter() - t0
        y_pred = np.asarray([r.category.value for r in out])
        filtered = sum(1 for r in out if r.filtered)
        results.append(
            BlacklistResult(
                name=name,
                weighted_f1=weighted_f1_score(y_true, y_pred),
                classify_s=dt,
                messages_to_model=len(out) - filtered,
                filtered=filtered,
            )
        )

    labels_tr = [Category.from_name(v) for v in data.y_train]

    plain = ClassificationPipeline(
        vectorizer=TfidfVectorizer(max_features=data.max_features),
        classifier=LogisticRegression(max_iter=200),
    )
    plain.fit(data.train_texts, labels_tr)
    evaluate("plain (8 categories)", plain, data.test_texts, data.y_test)

    filtered_pipe = ClassificationPipeline(
        vectorizer=TfidfVectorizer(max_features=data.max_features),
        classifier=LogisticRegression(max_iter=200),
        blacklist=BlacklistFilter(threshold=3),
    )
    filtered_pipe.fit(data.train_texts, labels_tr)
    evaluate("blacklist pre-filter", filtered_pipe, data.test_texts, data.y_test)

    # §5.1 ablation: drop Unimportant entirely (train and test).
    keep_tr = [i for i, v in enumerate(data.y_train) if v != Category.UNIMPORTANT.value]
    keep_te = [i for i, v in enumerate(data.y_test) if v != Category.UNIMPORTANT.value]
    dropped = ClassificationPipeline(
        vectorizer=TfidfVectorizer(max_features=data.max_features),
        classifier=LogisticRegression(max_iter=200),
    )
    dropped.fit(
        [data.train_texts[i] for i in keep_tr],
        [labels_tr[i] for i in keep_tr],
    )
    evaluate(
        "drop Unimportant (ablation)",
        dropped,
        [data.test_texts[i] for i in keep_te],
        data.y_test[keep_te],
    )
    return results
