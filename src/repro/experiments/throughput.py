"""EXP-THRU: can classification keep up with the message stream?

§1: "In just an hour over a million messages can be produced in a small
scale test-bed"; §6: LLM classification "will not be able to keep up
with the continuous flow of messages without dedicating significantly
more resources."  This experiment runs the full Tivan simulation at a
sweep of arrival rates with classifier stages whose service times come
from (a) the measured traditional pipeline and (b) Table 3's LLM cost
model, and reports backlog growth.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.pipeline import ClassificationPipeline
from repro.datagen.generator import CorpusGenerator
from repro.datagen.workload import generate_stream
from repro.experiments.table3 import run_table3
from repro.ml import ComplementNB
from repro.runtime import MessageBatch, ShardedExecutor
from repro.stream.tivan import ClassifierStage, TivanCluster

__all__ = [
    "ThroughputRow",
    "run_throughput_sweep",
    "measured_pipeline_service_time",
    "find_crossover_rate",
]


@dataclass(frozen=True)
class ThroughputRow:
    """Backlog outcome for one (classifier, arrival rate) cell."""

    classifier: str
    service_time_s: float
    arrival_rate_hz: float
    produced: int
    classified: int
    final_backlog: int
    keeping_up: bool


def measured_pipeline_service_time(
    *,
    scale: float = 0.01,
    seed: int = 0,
    n_probe: int = 500,
    n_workers: int = 1,
) -> float:
    """Train the traditional pipeline and measure its per-message time.

    The probe runs through the batch-first path; with ``n_workers > 1``
    it is sharded across a :class:`ShardedExecutor` so the figure
    reflects the parallel deployment rather than a single process.
    """
    corpus = CorpusGenerator(scale=scale, seed=seed).generate()
    pipe = ClassificationPipeline(classifier=ComplementNB())
    pipe.fit(corpus.texts, corpus.labels)
    probe = MessageBatch.of_texts(
        (corpus.texts * ((n_probe // len(corpus.texts)) + 1))[:n_probe]
    )
    if n_workers > 1:
        with ShardedExecutor(
            pipe,
            n_workers=n_workers,
            chunk_size=max(1, len(probe) // n_workers),
            min_parallel=0,
        ) as executor:
            t0 = time.perf_counter()
            executor.classify_batch(probe)
            return (time.perf_counter() - t0) / len(probe)
    t0 = time.perf_counter()
    pipe.classify_batch(probe)
    return (time.perf_counter() - t0) / len(probe)


def find_crossover_rate(
    service_time_s: float,
    *,
    duration_s: float = 90.0,
    seed: int = 0,
    safety: float = 1.5,
) -> tuple[float, bool, bool]:
    """Locate a classifier's saturation point empirically.

    Queueing theory puts the crossover at ``1/service_time`` arrivals
    per second; this verifies it in the simulator by running just below
    (rate/safety) and just above (rate×safety) the predicted point.

    Returns
    -------
    (predicted_rate_hz, keeps_up_below, keeps_up_above)
        The prediction is validated when the classifier keeps up below
        the crossover and drowns above it.
    """
    if service_time_s <= 0:
        raise ValueError(f"service_time_s must be positive, got {service_time_s}")
    if safety <= 1.0:
        raise ValueError(f"safety must be > 1, got {safety}")
    predicted = 1.0 / service_time_s

    def run_at(rate: float) -> bool:
        events = generate_stream(
            duration_s=duration_s, background_rate=rate, seed=seed
        )
        cluster = TivanCluster()
        cluster.load_events(events)
        cluster.attach_classifier(ClassifierStage(service_time_s=service_time_s))
        return cluster.run(duration_s + 10.0).keeping_up

    return predicted, run_at(predicted / safety), run_at(predicted * safety)


def run_throughput_sweep(
    *,
    rates_hz: tuple[float, ...] = (1.0, 5.0, 20.0),
    duration_s: float = 120.0,
    seed: int = 0,
    include_traditional: bool = True,
    n_workers: int = 1,
    stage_batch_size: int = 1,
) -> list[ThroughputRow]:
    """Sweep arrival rates against LLM-speed and pipeline-speed stages.

    Service times: the three Table 3 models (regenerated from the cost
    model) and, optionally, the measured traditional pipeline
    (``n_workers`` shards the measurement probe).  ``stage_batch_size``
    sets how many queued documents each simulated service tick drains.
    """
    stages: list[tuple[str, float]] = [
        (row.model, row.inference_time_s) for row in run_table3()
    ]
    if include_traditional:
        label = "tfidf+complement-nb (measured)"
        if n_workers > 1:
            label = f"tfidf+complement-nb (sharded x{n_workers})"
        stages.append(
            (label, measured_pipeline_service_time(seed=seed, n_workers=n_workers))
        )
    rows: list[ThroughputRow] = []
    for rate in rates_hz:
        events = generate_stream(
            duration_s=duration_s, background_rate=rate, seed=seed
        )
        for name, svc in stages:
            cluster = TivanCluster()
            cluster.load_events(events)
            cluster.attach_classifier(
                ClassifierStage(service_time_s=svc, batch_size=stage_batch_size)
            )
            report = cluster.run(duration_s + 10.0)
            rows.append(
                ThroughputRow(
                    classifier=name,
                    service_time_s=svc,
                    arrival_rate_hz=rate,
                    produced=report.produced,
                    classified=report.classified,
                    final_backlog=report.final_backlog,
                    keeping_up=report.keeping_up,
                )
            )
    return rows
