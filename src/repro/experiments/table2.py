"""EXP-T2: Table 2 — unique messages per category."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import Category
from repro.datagen.generator import TABLE2_COUNTS, CorpusGenerator

__all__ = ["run_table2", "Table2Result"]


@dataclass(frozen=True)
class Table2Result:
    """Generated vs paper dataset shape."""

    generated: dict[Category, int]
    paper: dict[Category, int]
    scale: float
    all_unique: bool

    def ratio(self, cat: Category) -> float:
        """Generated count relative to the scaled paper target."""
        target = max(1, round(self.paper[cat] * self.scale))
        return self.generated.get(cat, 0) / target


def run_table2(*, scale: float = 0.02, seed: int = 0) -> Table2Result:
    """Generate the dataset and compare its shape with Table 2."""
    gen = CorpusGenerator(scale=scale, seed=seed)
    corpus = gen.generate()
    texts = corpus.texts
    return Table2Result(
        generated=corpus.counts(),
        paper=dict(TABLE2_COUNTS),
        scale=scale,
        all_unique=len(set(texts)) == len(texts),
    )
