"""EXP-PROMPT: prompt-element and token-limit ablation (§5.2 narrative).

Quantifies the paper's qualitative findings about generative
classification:

- invented categories become rarer with a format spec and a one-shot
  example in the prompt,
- TF-IDF hint words improve classification accuracy ("we can still
  encode category specific details from feature extractors like TF-IDF
  within the prompts"),
- excessive generation persists regardless of instructions and only a
  ``max_new_tokens`` cap contains its latency cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.taxonomy import Category
from repro.datagen.generator import CorpusGenerator
from repro.llm.embeddings import CorpusEmbeddings
from repro.llm.generative import SimulatedGenerativeLLM
from repro.llm.models import model_spec
from repro.llm.parse import ParseOutcome
from repro.llm.prompts import PromptConfig
from repro.textproc.tfidf import category_top_tokens

__all__ = ["PromptAblationRow", "run_prompt_ablation", "PROMPT_VARIANTS"]

#: Named prompt configurations, from bare to the paper's best.
PROMPT_VARIANTS: dict[str, PromptConfig] = {
    "categories only": PromptConfig.minimal(),
    "+ intro": PromptConfig(intro=True, tfidf_hints=False, format_spec=False,
                            one_shot_example=False),
    "+ format spec": PromptConfig(intro=True, tfidf_hints=False, format_spec=True,
                                  one_shot_example=False),
    "+ one-shot example": PromptConfig(intro=True, tfidf_hints=False,
                                       format_spec=True, one_shot_example=True),
    "+ TF-IDF hints (full)": PromptConfig.full(),
}


@dataclass(frozen=True)
class PromptAblationRow:
    """Outcome statistics for one (model, prompt variant, cap) cell."""

    model: str
    variant: str
    max_new_tokens: int | None
    accuracy: float  # over messages that parsed to a real category
    invented_rate: float
    unparseable_rate: float
    mean_latency_s: float
    mean_gen_tokens: float


def run_prompt_ablation(
    *,
    scale: float = 0.01,
    seed: int = 0,
    n_messages: int = 150,
    models: tuple[str, ...] = ("tiiuae/falcon-7b", "tiiuae/falcon-40b"),
    caps: tuple[int | None, ...] = (None, 20),
    embedding_dim: int = 64,
) -> list[PromptAblationRow]:
    """Sweep prompt variants × models × token caps on a fresh corpus."""
    corpus = CorpusGenerator(scale=scale, seed=seed).generate()
    texts = corpus.texts[:n_messages]
    labels = corpus.labels[:n_messages]
    hints = {
        Category.from_name(k): v
        for k, v in category_top_tokens(
            corpus.texts, [lab.value for lab in corpus.labels]
        ).items()
    }
    emb = CorpusEmbeddings(dim=embedding_dim).fit(corpus.texts)
    rows: list[PromptAblationRow] = []
    for model_name in models:
        for cap in caps:
            llm = SimulatedGenerativeLLM(
                spec=model_spec(model_name), embeddings=emb, max_new_tokens=cap
            )
            for variant, config in PROMPT_VARIANTS.items():
                results = [
                    llm.classify(
                        t,
                        config=config,
                        hints=hints if config.tfidf_hints else None,
                    )
                    for t in texts
                ]
                outcomes = [r.parsed.outcome for r in results]
                parsed = [
                    (r, lab)
                    for r, lab in zip(results, labels)
                    if r.parsed.outcome is ParseOutcome.OK
                ]
                acc = (
                    float(np.mean([r.category == lab for r, lab in parsed]))
                    if parsed
                    else 0.0
                )
                rows.append(
                    PromptAblationRow(
                        model=model_name,
                        variant=variant,
                        max_new_tokens=cap,
                        accuracy=acc,
                        invented_rate=float(
                            np.mean([o is ParseOutcome.INVENTED_CATEGORY for o in outcomes])
                        ),
                        unparseable_rate=float(
                            np.mean([o is ParseOutcome.UNPARSEABLE for o in outcomes])
                        ),
                        mean_latency_s=float(
                            np.mean([r.timing.total_s for r in results])
                        ),
                        mean_gen_tokens=float(
                            np.mean([r.timing.tokens_out for r in results])
                        ),
                    )
                )
    return rows
