"""EXP-MON: the §4.5 monitoring analyses on injected incidents.

Injects the paper's two motivating scenarios into a simulated stream —
a cold-aisle door left open (rack-wide thermal burst, §4.5.1/§4.5.2)
and an unexpected USB device plug-in (security event, §4.5.1) — runs
the full collection pipeline, and checks that:

- frequency analysis detects the bursts in the right windows,
- positional analysis localizes the thermal burst to the right rack,
- per-architecture analysis flags a singleton sensor anomaly while
  clearing a family-wide quirk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import Category
from repro.datagen.vendors import VENDORS
from repro.datagen.workload import Incident, generate_stream
from repro.monitor.frequency import Burst, BurstDetector
from repro.monitor.perarch import ArchPeerComparator, PeerVerdict
from repro.monitor.positional import RackIncident, RackTopology, localize_bursts
from repro.stream.tivan import TivanCluster

__all__ = ["MonitoringResult", "run_monitoring_experiment"]


@dataclass(frozen=True)
class MonitoringResult:
    """Everything the monitoring benches assert on."""

    cluster_bursts: tuple[Burst, ...]
    rack_incidents: tuple[RackIncident, ...]
    thermal_rack: str
    thermal_window: tuple[float, float]
    usb_burst_found: bool
    singleton_reading_verdict: PeerVerdict
    family_reading_verdict: PeerVerdict
    indexed: int


def run_monitoring_experiment(
    *,
    duration_s: float = 900.0,
    background_rate: float = 6.0,
    seed: int = 0,
    nodes_per_rack: int = 8,
) -> MonitoringResult:
    """Run the two-incident scenario end to end."""
    thermal_rack_hosts = tuple(f"cn{i:03d}" for i in range(nodes_per_rack))
    usb_host = "sk001"
    thermal_start, thermal_len = duration_s * 0.4, 90.0
    incidents = [
        Incident(
            "cold-aisle-door-open",
            Category.THERMAL,
            start=thermal_start,
            duration=thermal_len,
            hostnames=thermal_rack_hosts,
            peak_rate=2.0,
        ),
        Incident(
            "unexpected-usb-device",
            Category.USB,
            start=duration_s * 0.7,
            duration=30.0,
            hostnames=(usb_host,),
            peak_rate=3.0,
        ),
    ]
    events = generate_stream(
        duration_s=duration_s,
        background_rate=background_rate,
        incidents=incidents,
        seed=seed,
    )
    cluster = TivanCluster()
    cluster.load_events(events)
    cluster.run(duration_s + 10.0)
    store = cluster.store

    detector = BurstDetector(z_threshold=3.0, min_rate=4.0)
    interval = 30.0
    cluster_bursts = detector.detect_in_store(store, interval_s=interval)

    hosts = sorted({e.message.hostname for e in events})
    cn_hosts = [h for h in hosts if h.startswith("cn")]
    topology = RackTopology.grid(cn_hosts, nodes_per_rack=nodes_per_rack)
    bursts_by_host = {
        h: detector.detect_in_store(store, interval_s=interval, term=h)
        for h in cn_hosts
    }
    rack_incidents = localize_bursts(topology, bursts_by_host, min_fraction=0.5)
    thermal_rack = rack_incidents[0].rack if rack_incidents else ""
    thermal_window = rack_incidents[0].window if rack_incidents else (0.0, 0.0)

    usb_bursts = detector.detect_in_store(store, interval_s=interval, term=usb_host)
    usb_found = any(
        b.start <= incidents[1].start + incidents[1].duration
        and b.end >= incidents[1].start
        for b in usb_bursts
    )

    # Per-architecture check (§4.5.3): one node reads hot while its
    # peers agree with each other, vs a family-wide identical reading.
    arch_of = {
        v.node_name(i): v.arch for v in VENDORS for i in range(10)
    }
    comparator = ArchPeerComparator(arch_of=arch_of)
    for i in range(10):
        comparator.observe_reading(f"ep{i:03d}", "Inlet_Temp", 24.0 + 0.1 * i)
    singleton = comparator.check_reading("ep000", "Inlet_Temp", 97.0)
    family = comparator.check_reading("ep000", "Inlet_Temp", 24.5)

    return MonitoringResult(
        cluster_bursts=tuple(cluster_bursts),
        rack_incidents=tuple(rack_incidents),
        thermal_rack=thermal_rack,
        thermal_window=thermal_window,
        usb_burst_found=usb_found,
        singleton_reading_verdict=singleton,
        family_reading_verdict=family,
        indexed=len(store),
    )
