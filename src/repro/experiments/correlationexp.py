"""EXP-CORR: facility-event correlation (§4.5.1).

Builds the paper's suggested security view: badge-access events to the
data-center room, a log stream in which some USB-device events follow
badge swipes (someone walks in and plugs something in) while background
noise continues throughout, and the lagged-window correlator that joins
them.  A control correlation against an unrelated category (SSH
traffic, which has no relationship to physical access) validates the
permutation baseline: its lift must hover around 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.taxonomy import Category
from repro.datagen.workload import Incident, generate_stream
from repro.monitor.correlate import CorrelationResult, EventCorrelator
from repro.stream.tivan import TivanCluster

__all__ = ["CorrelationExperimentResult", "run_correlation_experiment"]


@dataclass(frozen=True)
class CorrelationExperimentResult:
    """Correlations of badge events against USB (signal) and SSH (control)."""

    usb: CorrelationResult
    ssh_control: CorrelationResult
    n_badge_events: int
    indexed: int


def run_correlation_experiment(
    *,
    duration_s: float = 7200.0,
    background_rate: float = 2.0,
    n_badged_visits: int = 15,
    n_unrelated_swipes: int = 6,
    max_lag_s: float = 60.0,
    seed: int = 0,
) -> CorrelationExperimentResult:
    """Run the badge ↔ USB correlation scenario end to end."""
    rng = np.random.default_rng(seed)
    # badge swipes that lead to USB activity shortly after
    visit_times = np.sort(rng.uniform(300.0, duration_s - 600.0, size=n_badged_visits))
    incidents = []
    for i, t in enumerate(visit_times):
        lag = float(rng.uniform(20.0, max_lag_s * 0.6))
        incidents.append(Incident(
            name=f"usb-visit-{i}",
            category=Category.USB,
            start=float(t) + lag,
            duration=30.0,
            hostnames=(f"sk{int(rng.integers(0, 6)):03d}",),
            peak_rate=1.5,
        ))
    # swipes with no following activity (cleaning crew, tours)
    idle_swipes = rng.uniform(300.0, duration_s - 600.0, size=n_unrelated_swipes)
    badge_times = np.sort(np.concatenate([visit_times, idle_swipes]))

    events = generate_stream(
        duration_s=duration_s,
        background_rate=background_rate,
        incidents=incidents,
        seed=seed + 1,
    )
    cluster = TivanCluster()
    cluster.load_events(events)
    cluster.run(duration_s + 30.0)

    # classified target streams from the store (ground-truth labels here;
    # in deployment these come from the classification pipeline)
    usb_times = sorted(
        e.message.timestamp for e in events if e.label is Category.USB
    )
    ssh_times = sorted(
        e.message.timestamp for e in events if e.label is Category.SSH
    )
    correlator = EventCorrelator(max_lag_s=max_lag_s, n_shifts=200, seed=seed)
    usb = correlator.correlate(
        badge_times, usb_times,
        candidate_labels=[
            "badge-visit" if t in set(visit_times.tolist()) else "badge-idle"
            for t in badge_times.tolist()
        ],
        horizon=duration_s,
    )
    ssh = correlator.correlate(badge_times, ssh_times, horizon=duration_s)
    return CorrelationExperimentResult(
        usb=usb,
        ssh_control=ssh,
        n_badge_events=len(badge_times),
        indexed=len(cluster.store),
    )
