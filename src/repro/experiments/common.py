"""Shared experiment plumbing: dataset preparation and table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.core.taxonomy import Category
from repro.datagen.generator import CorpusGenerator, LabeledCorpus
from repro.ml.model_selection import train_test_split
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["ExperimentData", "format_table"]


@dataclass
class ExperimentData:
    """A generated corpus with a stratified split and TF-IDF features.

    Built once and shared across experiments so every classifier sees
    the identical split (the paper evaluates all models on one
    train/test partition).

    Parameters
    ----------
    scale:
        Fraction of the paper's Table 2 counts to generate.
    seed:
        Corpus + split seed.
    max_features:
        TF-IDF vocabulary cap.
    drop_unimportant:
        Remove the Unimportant class before splitting (the §5.1
        ablation).
    """

    scale: float = 0.02
    seed: int = 0
    test_size: float = 0.25
    max_features: int | None = 2000
    drop_unimportant: bool = False

    corpus: LabeledCorpus = field(default=None, init=False, repr=False)
    vectorizer: TfidfVectorizer = field(default=None, init=False, repr=False)
    X_train: sp.csr_matrix = field(default=None, init=False, repr=False)
    X_test: sp.csr_matrix = field(default=None, init=False, repr=False)
    y_train: np.ndarray = field(default=None, init=False, repr=False)
    y_test: np.ndarray = field(default=None, init=False, repr=False)
    train_texts: list = field(default=None, init=False, repr=False)
    test_texts: list = field(default=None, init=False, repr=False)
    vectorize_train_s: float = field(default=0.0, init=False)

    def prepare(self) -> "ExperimentData":
        """Generate, split, and vectorize (idempotent)."""
        if self.X_train is not None:
            return self
        import time

        corpus = CorpusGenerator(scale=self.scale, seed=self.seed).generate()
        if self.drop_unimportant:
            corpus = corpus.without(Category.UNIMPORTANT)
        self.corpus = corpus
        labels = np.asarray([lab.value for lab in corpus.labels])
        tr_txt, te_txt, y_tr, y_te = train_test_split(
            corpus.texts, labels, test_size=self.test_size, seed=self.seed
        )
        self.train_texts, self.test_texts = list(tr_txt), list(te_txt)
        self.y_train, self.y_test = y_tr, y_te
        self.vectorizer = TfidfVectorizer(max_features=self.max_features)
        t0 = time.perf_counter()
        self.X_train = self.vectorizer.fit_transform(self.train_texts)
        self.vectorize_train_s = time.perf_counter() - t0
        self.X_test = self.vectorizer.transform(self.test_texts)
        return self


def format_table(
    headers: list[str], rows: list[list], *, floatfmt: str = ".4f"
) -> str:
    """Render an aligned plain-text table."""
    def cell(v) -> str:
        if isinstance(v, float):
            return format(v, floatfmt)
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
