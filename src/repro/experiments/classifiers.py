"""EXP-F3 / EXP-F2 / EXP-ABL-U: the traditional-classifier comparison.

Reproduces Figure 3 (eight classifiers: weighted F1, training time,
testing time), Figure 2 (Linear SVC confusion matrix), and the §5.1
ablation (drop "Unimportant": F1 up, SVC training time down sharply).

The paper ran Linear SVC through liblinear's dual coordinate-descent
solver, which dominates Figure 3's training-time column (211.78 s); we
default the comparison to the same ``solver="dual"`` so the time
*shape* (SVC slowest by a wide margin) reproduces honestly, and keep
the fast primal solver available for deployments.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from repro.experiments.common import ExperimentData
from repro.ml import (
    ComplementNB,
    KNeighborsClassifier,
    LinearSVC,
    LogisticRegression,
    NearestCentroid,
    RandomForestClassifier,
    RidgeClassifier,
    SGDClassifier,
    confusion_matrix,
    weighted_f1_score,
)

__all__ = [
    "ClassifierRow",
    "CLASSIFIER_FACTORIES",
    "run_classifier_comparison",
    "linear_svc_confusion",
]

#: Figure 3's classifier roster, in the paper's row order.
CLASSIFIER_FACTORIES: Mapping[str, Callable[[], object]] = {
    "Logistic Regression": lambda: LogisticRegression(max_iter=200),
    "Ridge Classifier": lambda: RidgeClassifier(),
    "kNN": lambda: KNeighborsClassifier(n_neighbors=5),
    "Random Forest": lambda: RandomForestClassifier(n_estimators=40, max_depth=25),
    "Linear SVC": lambda: LinearSVC(solver="dual", max_iter=40),
    "Log-loss SGD": lambda: SGDClassifier(),
    "Nearest Centroid": lambda: NearestCentroid(),
    "Complement Naive Bayes": lambda: ComplementNB(),
}


@dataclass(frozen=True)
class ClassifierRow:
    """One Figure 3 row."""

    name: str
    weighted_f1: float
    train_s: float
    test_s: float


def run_classifier_comparison(
    data: ExperimentData,
    *,
    factories: Mapping[str, Callable[[], object]] | None = None,
) -> list[ClassifierRow]:
    """Fit and time every classifier on the shared split."""
    data.prepare()
    rows: list[ClassifierRow] = []
    for name, make in (factories or CLASSIFIER_FACTORIES).items():
        clf = make()
        t0 = time.perf_counter()
        clf.fit(data.X_train, data.y_train)
        t1 = time.perf_counter()
        pred = clf.predict(data.X_test)
        t2 = time.perf_counter()
        rows.append(
            ClassifierRow(
                name=name,
                weighted_f1=weighted_f1_score(data.y_test, pred),
                train_s=t1 - t0,
                test_s=t2 - t1,
            )
        )
    return rows


def linear_svc_confusion(
    data: ExperimentData, *, solver: str = "primal"
) -> tuple[np.ndarray, list[str]]:
    """Figure 2: (confusion matrix, label order) for Linear SVC.

    Uses the primal solver by default — the matrix is identical in
    expectation and the experiment is about *what confuses*, not solver
    cost.
    """
    data.prepare()
    labels = sorted(np.unique(np.concatenate([data.y_train, data.y_test])).tolist())
    clf = LinearSVC(solver=solver)
    clf.fit(data.X_train, data.y_train)
    pred = clf.predict(data.X_test)
    return confusion_matrix(data.y_test, pred, labels), labels
