"""Edit distances for message bucketing.

The legacy classifier (§3) groups messages into buckets when their
Levenshtein distance to a bucket exemplar is below a threshold (the
paper uses 7).  Bucketing 196k messages means millions of distance
evaluations, so besides the plain DP we provide:

- :func:`levenshtein_within` — a banded (Ukkonen) computation that
  answers "is d(a, b) ≤ k?" in O(k·min(len)) with cheap length and
  character-multiset prefilters, and
- a NumPy row-vectorized full DP for long strings.

Distances operate on strings; :func:`token_edit_distance` applies the
same DP over token sequences, useful for template mining.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence, Hashable

import numpy as np

__all__ = [
    "levenshtein",
    "levenshtein_within",
    "hamming",
    "token_edit_distance",
]


def levenshtein(a: str, b: str) -> int:
    """Exact Levenshtein (insert/delete/substitute, unit cost) distance."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):  # iterate over the longer string row-wise
        a, b = b, a
    # Row-vectorized DP: prev/curr are rows of the (len(a)+1)x(len(b)+1)
    # matrix.  The substitution/insertion terms vectorize; the deletion
    # term carries a serial dependency handled by a running minimum scan.
    bn = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    prev = np.arange(len(b) + 1, dtype=np.int64)
    curr = np.empty_like(prev)
    for i, ca in enumerate(a, start=1):
        cost = (bn != ord(ca)).astype(np.int64)
        np.minimum(prev[1:] + 1, prev[:-1] + cost, out=curr[1:])
        curr[0] = i
        # deletion: curr[j] = min(curr[j], curr[j-1] + 1) — prefix scan
        curr[1:] = np.minimum.accumulate(
            curr[1:] - np.arange(1, len(b) + 1)
        ) + np.arange(1, len(b) + 1)
        curr[1:] = np.minimum(curr[1:], curr[0] + np.arange(1, len(b) + 1))
        prev, curr = curr, prev
    return int(prev[-1])


def levenshtein_within(a: str, b: str, k: int) -> int | None:
    """Banded Levenshtein: return d(a, b) if ≤ ``k``, else ``None``.

    Uses the classic diagonal band of half-width ``k`` plus two cheap
    prefilters: the length difference and half the character-multiset
    difference are both lower bounds on the distance.
    """
    if k < 0:
        return None
    if a == b:
        return 0
    la, lb = len(a), len(b)
    if abs(la - lb) > k:
        return None
    if la == 0 or lb == 0:
        d = max(la, lb)
        return d if d <= k else None
    # Multiset lower bound: each edit fixes at most one surplus char on
    # each side, so distance ≥ max(surplus_a, surplus_b).
    if la + lb > 20:  # only worth it for non-trivial strings
        ca, cb = Counter(a), Counter(b)
        diff = ca - cb
        surplus_a = sum(diff.values())
        surplus_b = sum((cb - ca).values())
        if max(surplus_a, surplus_b) > k:
            return None
    if la < lb:
        a, b, la, lb = b, a, lb, la
    INF = k + 1
    prev = list(range(min(lb, k) + 1)) + [INF] * max(0, lb - k)
    for j in range(len(prev), lb + 1):
        prev.append(INF)
    for i in range(1, la + 1):
        lo = max(1, i - k)
        hi = min(lb, i + k)
        curr = [INF] * (lb + 1)
        if i - k <= 0:
            curr[0] = i
        row_best = INF
        ai = a[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if ai == b[j - 1] else 1
            v = prev[j - 1] + cost
            if prev[j] + 1 < v:
                v = prev[j] + 1
            if curr[j - 1] + 1 < v:
                v = curr[j - 1] + 1
            curr[j] = v
            if v < row_best:
                row_best = v
        if row_best > k:
            return None
        prev = curr
    d = prev[lb]
    return d if d <= k else None


def hamming(a: str, b: str) -> int:
    """Hamming distance for equal-length strings.

    Raises
    ------
    ValueError
        If the strings differ in length (Hamming is undefined then).
    """
    if len(a) != len(b):
        raise ValueError(
            f"hamming distance requires equal lengths, got {len(a)} and {len(b)}"
        )
    if not a:
        return 0
    an = np.frombuffer(a.encode("utf-32-le"), dtype=np.uint32)
    bn = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    return int(np.count_nonzero(an != bn))


def token_edit_distance(a: Sequence[Hashable], b: Sequence[Hashable]) -> int:
    """Levenshtein distance over token sequences."""
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    prev = list(range(len(b) + 1))
    for i, ta in enumerate(a, start=1):
        curr = [i]
        for j, tb in enumerate(b, start=1):
            cost = 0 if ta == tb else 1
            curr.append(min(prev[j] + 1, curr[-1] + 1, prev[j - 1] + cost))
        prev = curr
    return prev[-1]
