"""Text processing for syslog messages.

This package implements the preprocessing and feature-engineering stack
described in §4.3 of the paper:

- :mod:`repro.textproc.tokenize` — a syslog-aware tokenizer,
- :mod:`repro.textproc.normalize` — masking of volatile fields (hex ids,
  IP addresses, numbers, paths) so that messages differing only in
  identifying information share a token stream,
- :mod:`repro.textproc.lemmatize` — a morphy-style rule lemmatizer that
  collapses inflections ("failed"/"failure"/"failing" → "fail"),
- :mod:`repro.textproc.vocab` — vocabulary construction with document
  frequency pruning,
- :mod:`repro.textproc.tfidf` — a sparse TF-IDF vectorizer plus the
  per-category top-token extraction used for Table 1 and for LLM prompt
  construction, and a vocabulary-free hashing variant,
- :mod:`repro.textproc.fingerprint` — one-pass masked-template
  fingerprinting (the template-dedup cache key),
- :mod:`repro.textproc.distance` — Levenshtein / Hamming / token edit
  distances, including the thresholded variant used by the legacy
  bucketing classifier (§3).
"""

from repro.textproc.tokenize import tokenize, Tokenizer
from repro.textproc.normalize import normalize_message, MaskingNormalizer
from repro.textproc.lemmatize import Lemmatizer, lemmatize_token
from repro.textproc.vocab import Vocabulary, build_vocabulary
from repro.textproc.tfidf import (
    TfidfVectorizer,
    HashingVectorizer,
    category_top_tokens,
)
from repro.textproc.fingerprint import (
    TemplateFingerprinter,
    fingerprint,
    mask_template,
)
from repro.textproc.drain import DrainTemplateMiner, LogTemplate
from repro.textproc.distance import (
    levenshtein,
    levenshtein_within,
    hamming,
    token_edit_distance,
)

__all__ = [
    "tokenize",
    "Tokenizer",
    "normalize_message",
    "MaskingNormalizer",
    "Lemmatizer",
    "lemmatize_token",
    "Vocabulary",
    "build_vocabulary",
    "TfidfVectorizer",
    "HashingVectorizer",
    "category_top_tokens",
    "TemplateFingerprinter",
    "fingerprint",
    "mask_template",
    "DrainTemplateMiner",
    "LogTemplate",
    "levenshtein",
    "levenshtein_within",
    "hamming",
    "token_edit_distance",
]
