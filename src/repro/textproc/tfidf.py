"""Sparse TF-IDF vectorization and per-category top-token extraction.

§4.3.1: TF-IDF turns messages into feature vectors whose weights
highlight tokens that are frequent within a message but rare across the
corpus, and — run per category — surfaces the tokens that characterise
each category (Table 1).  Those per-category token lists double as the
"category hints" injected into LLM prompts (§5.2).

The vectorizer follows the standard smooth formulation:

    tf(t, d)   = count (or 1 + log count with ``sublinear_tf``)
    idf(t)     = log((1 + N) / (1 + df(t))) + 1
    w(t, d)    = tf · idf, rows L2-normalized

which matches scikit-learn's defaults so the classifier comparison
reproduces the paper's setup.
"""

from __future__ import annotations

import zlib
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.textproc.lemmatize import Lemmatizer
from repro.textproc.normalize import MaskingNormalizer
from repro.textproc.tokenize import Tokenizer
from repro.textproc.vocab import Vocabulary, build_vocabulary

__all__ = ["HashingVectorizer", "TfidfVectorizer", "category_top_tokens"]


@dataclass
class TfidfVectorizer:
    """TF-IDF vectorizer over raw syslog messages.

    The full preprocessing chain — masking normalization, tokenization,
    lemmatization — is built in and individually switchable so the
    preprocessing ablation (DESIGN.md) can toggle stages.

    Parameters
    ----------
    normalize, lemmatize:
        Enable the masking normalizer / lemmatizer stages.
    sublinear_tf:
        Use ``1 + log(tf)`` instead of raw counts.
    min_df, max_df_ratio, max_features:
        Vocabulary pruning (see :func:`repro.textproc.vocab.build_vocabulary`).
    l2_normalize:
        L2-normalize rows of the output matrix.
    """

    normalize: bool = True
    lemmatize: bool = True
    sublinear_tf: bool = False
    min_df: int = 1
    max_df_ratio: float = 1.0
    max_features: int | None = None
    l2_normalize: bool = True
    #: (min_n, max_n) word n-gram range.  The paper's related work [6]
    #: (Cavnar & Trenkle) categorizes text with n-grams; (1, 2) adds
    #: word bigrams ("clock throttled") to the unigram features.
    ngram_range: tuple[int, int] = (1, 1)

    vocabulary: Vocabulary | None = field(default=None, repr=False)
    idf_: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        lo, hi = self.ngram_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid ngram_range {self.ngram_range}")
        self._tokenizer = Tokenizer()
        self._normalizer = MaskingNormalizer() if self.normalize else None
        self._lemmatizer = Lemmatizer() if self.lemmatize else None

    # -- preprocessing -------------------------------------------------

    def analyze(self, text: str) -> list[str]:
        """Run the preprocessing chain on one message, returning tokens
        (including n-grams when ``ngram_range`` extends past unigrams)."""
        return self.analyze_batch([text])[0]

    def analyze_batch(self, messages: Sequence[str]) -> list[list[str]]:
        """Run the preprocessing chain column-wise over a batch.

        Each stage — masking normalization, tokenization, lemmatization,
        n-gram expansion — runs once over the whole column, which is
        what lets the batch-first pipeline (``repro.runtime``) time the
        stages separately and keep per-call overhead off the hot path.
        """
        texts = list(messages)
        if self._normalizer is not None:
            texts = self._normalizer.normalize_many(texts)
        docs = self._tokenizer.tokenize_many(texts)
        if self._lemmatizer is not None:
            docs = self._lemmatizer.lemmatize_docs(docs)
        lo, hi = self.ngram_range
        if hi == 1:
            return docs if lo == 1 else [[] for _ in docs]
        return [self._expand_ngrams(tokens) for tokens in docs]

    def _expand_ngrams(self, tokens: list[str]) -> list[str]:
        lo, hi = self.ngram_range
        out: list[str] = []
        for n in range(lo, hi + 1):
            if n == 1:
                out.extend(tokens)
            else:
                out.extend(
                    " ".join(tokens[i : i + n])
                    for i in range(len(tokens) - n + 1)
                )
        return out

    # -- fitting -------------------------------------------------------

    def fit(self, messages: Sequence[str]) -> "TfidfVectorizer":
        """Learn vocabulary and IDF weights from ``messages``."""
        docs = self.analyze_batch(messages)
        self.vocabulary = build_vocabulary(
            docs,
            min_df=self.min_df,
            max_df_ratio=self.max_df_ratio,
            max_size=self.max_features,
        )
        counts = self._count_matrix(docs)
        df = np.asarray((counts > 0).sum(axis=0)).ravel()
        n = counts.shape[0]
        self.idf_ = np.log((1.0 + n) / (1.0 + df)) + 1.0
        return self

    def fit_transform(self, messages: Sequence[str]) -> sp.csr_matrix:
        """Fit on ``messages`` and return their TF-IDF matrix."""
        self.fit(messages)
        return self.transform(messages)

    def transform(self, messages: Sequence[str]) -> sp.csr_matrix:
        """Vectorize ``messages`` with the fitted vocabulary/IDF.

        Raises
        ------
        RuntimeError
            If called before :meth:`fit`.
        """
        return self.transform_analyzed(self.analyze_batch(messages))

    def transform_analyzed(self, docs: Sequence[Sequence[str]]) -> sp.csr_matrix:
        """Vectorize pre-analyzed token documents (the weighting half of
        :meth:`transform`, split out so the batch-first pipeline can
        time normalization and vectorization as separate stages).

        Raises
        ------
        RuntimeError
            If called before :meth:`fit`.
        """
        if self.vocabulary is None or self.idf_ is None:
            raise RuntimeError("TfidfVectorizer.transform called before fit")
        counts = self._count_matrix(docs).astype(np.float64)
        if self.sublinear_tf:
            counts.data = 1.0 + np.log(counts.data)
        x = counts.multiply(self.idf_[np.newaxis, :]).tocsr()
        if self.l2_normalize:
            _l2_normalize_rows(x)
        return x

    def _count_matrix(self, docs: Sequence[Sequence[str]]) -> sp.csr_matrix:
        assert self.vocabulary is not None
        vocab = self.vocabulary
        indptr = [0]
        indices: list[int] = []
        data: list[int] = []
        for doc in docs:
            row = Counter(vocab.get(t) for t in doc)
            row.pop(-1, None)  # out-of-vocabulary
            indices.extend(row.keys())
            data.extend(row.values())
            indptr.append(len(indices))
        return sp.csr_matrix(
            (
                np.asarray(data, dtype=np.int64),
                np.asarray(indices, dtype=np.int32),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(len(docs), len(vocab)),
        )

    # -- introspection ---------------------------------------------------

    def feature_names(self) -> tuple[str, ...]:
        """Vocabulary tokens in column order."""
        if self.vocabulary is None:
            raise RuntimeError("TfidfVectorizer not fitted")
        return self.vocabulary.tokens


#: bound the token→column memo so adversarial streams (unbounded
#: distinct slot values) cannot grow it without limit
_HASH_MEMO_MAX_ENTRIES = 1 << 16
_HASH_MEMO_MAX_TOKEN_LEN = 256


@dataclass
class HashingVectorizer(TfidfVectorizer):
    """Stateless hashed-feature sibling of :class:`TfidfVectorizer`.

    Shares the full ``analyze_batch`` preprocessing chain but maps
    tokens to columns with a hash (CRC-32 mod ``n_features``) instead
    of a learned vocabulary, so :meth:`fit` learns nothing and the
    transform path skips the vocab-dict lookups and IDF multiply — the
    cheap miss path for the template-dedup cache.

    The hash is unsigned (no sign-split like scikit-learn's
    ``HashingVectorizer``) because the naive-Bayes classifiers require
    non-negative features; collisions merely merge token counts, which
    naive Bayes tolerates.

    Parameters
    ----------
    n_features:
        Number of hash buckets (columns).  The default ``2**18`` keeps
        the collision rate negligible for syslog-sized vocabularies.
    """

    n_features: int = 1 << 18

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {self.n_features}")
        self._hash_memo: dict[str, int] = {}

    def fit(self, messages: Sequence[str]) -> "HashingVectorizer":
        """No-op (hashing needs no vocabulary); returns ``self``."""
        return self

    def transform_analyzed(self, docs: Sequence[Sequence[str]]) -> sp.csr_matrix:
        """Vectorize pre-analyzed token documents via hashed columns."""
        memo = self._hash_memo
        n_features = self.n_features
        indptr = [0]
        indices: list[int] = []
        data: list[int] = []
        for doc in docs:
            row: Counter[int] = Counter()
            for t in doc:
                col = memo.get(t)
                if col is None:
                    col = zlib.crc32(t.encode("utf-8", "surrogatepass")) % n_features
                    if (
                        len(t) <= _HASH_MEMO_MAX_TOKEN_LEN
                        and len(memo) < _HASH_MEMO_MAX_ENTRIES
                    ):
                        memo[t] = col
                row[col] += 1
            indices.extend(row.keys())
            data.extend(row.values())
            indptr.append(len(indices))
        x = sp.csr_matrix(
            (
                np.asarray(data, dtype=np.float64),
                np.asarray(indices, dtype=np.int32),
                np.asarray(indptr, dtype=np.int64),
            ),
            shape=(len(docs), n_features),
        )
        if self.sublinear_tf:
            x.data = 1.0 + np.log(x.data)
        if self.l2_normalize:
            _l2_normalize_rows(x)
        return x

    def feature_names(self) -> tuple[str, ...]:
        """Unavailable: hashed columns have no token names."""
        raise RuntimeError("HashingVectorizer has no feature names")


def _l2_normalize_rows(x: sp.csr_matrix) -> None:
    """In-place L2 row normalization of a CSR matrix."""
    norms = np.sqrt(np.asarray(x.multiply(x).sum(axis=1)).ravel())
    norms[norms == 0.0] = 1.0
    scale = np.repeat(1.0 / norms, np.diff(x.indptr))
    x.data *= scale


# Function words and masking placeholders carry no category signal and
# are excluded from the Table 1 style report (the paper's table lists
# content words only).
_TOP_TOKEN_STOPWORDS = frozenset({
    "the", "a", "an", "of", "on", "in", "for", "to", "by", "from",
    "with", "at", "is", "be", "was", "and", "or", "not", "no", "too",
})


def _is_reportable(token: str) -> bool:
    return (
        token not in _TOP_TOKEN_STOPWORDS
        and "<" not in token
        and ">" not in token
        and any(c.isalpha() for c in token)
    )


def category_top_tokens(
    messages: Sequence[str],
    labels: Sequence[str],
    *,
    top_k: int = 5,
    vectorizer: TfidfVectorizer | None = None,
    filter_placeholders: bool = True,
) -> dict[str, list[str]]:
    """Top-``k`` TF-IDF tokens per category (reproduces Table 1).

    Treats the concatenation of each category's messages as one
    "document" and the set of categories as the corpus, exactly the
    framing of §4.3.1 ("the particular set of text [is] all of the
    messages within a certain category ... the corpus is the combined
    set of messages in all of the categories").

    Parameters
    ----------
    messages, labels:
        Parallel sequences of raw messages and category names.
    top_k:
        Tokens to report per category.
    vectorizer:
        Preprocessing configuration to reuse; defaults to the standard
        chain.  Only its ``analyze`` method is used.
    filter_placeholders:
        Exclude masking placeholders (``<num>``...) and function words
        from the report, as the paper's table lists content words only.

    Returns
    -------
    dict
        ``category → [token, ...]`` ordered by descending TF-IDF weight.
    """
    if len(messages) != len(labels):
        raise ValueError(
            f"messages and labels lengths differ: {len(messages)} vs {len(labels)}"
        )
    vec = vectorizer or TfidfVectorizer()
    per_cat: dict[str, Counter[str]] = {}
    for msg, lab in zip(messages, labels):
        per_cat.setdefault(lab, Counter()).update(vec.analyze(msg))
    cats = sorted(per_cat)
    n = len(cats)
    # document frequency across category-documents
    df: Counter[str] = Counter()
    for c in cats:
        df.update(per_cat[c].keys())
    out: dict[str, list[str]] = {}
    for c in cats:
        counts = per_cat[c]
        total = sum(counts.values()) or 1
        scored = []
        for tok, cnt in counts.items():
            if filter_placeholders and not _is_reportable(tok):
                continue
            tf = cnt / total
            idf = np.log((1.0 + n) / (1.0 + df[tok])) + 1.0
            scored.append((tf * idf, tok))
        scored.sort(key=lambda st: (-st[0], st[1]))
        out[c] = [tok for _score, tok in scored[:top_k]]
    return out
