"""Rule-based lemmatization (WordNet-morphy style).

§4.3.2 of the paper lemmatizes messages so that different parts of
speech of the same word collapse to one root: "The system has failed" /
"There was a failure in the system" / "The system is failing" all yield
the lemma *fail*.  The paper uses the NLTK WordNet lemmatizer; offline
we implement the same idea as a two-stage rule engine:

1. an exception table for irregular forms, and
2. ordered suffix-detachment rules (morphy-style), where a detachment
   is accepted when the candidate stem is in the lexicon of known
   stems; purely inflectional detachments (plural -s, -ed, -ing with
   consonant doubling / e-restoration) are additionally accepted when
   they leave a plausible stem even outside the lexicon.

The derivational rules (``failure`` → ``fail``, ``connection`` →
``connect``) only fire against the lexicon, so arbitrary identifiers
("pressure", "session") are never mangled unless explicitly listed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Lemmatizer", "lemmatize_token", "DEFAULT_LEXICON"]

# Irregular forms common in syslog prose.
_EXCEPTIONS: dict[str, str] = {
    "is": "be", "are": "be", "was": "be", "were": "be", "been": "be",
    "has": "have", "had": "have", "having": "have",
    "does": "do", "did": "do", "done": "do", "doing": "do",
    "went": "go", "gone": "go",
    "ran": "run", "running": "run",
    "found": "find", "lost": "lose", "left": "leave", "sent": "send",
    "shut": "shut", "hung": "hang", "broke": "break", "broken": "break",
    "wrote": "write", "written": "write", "read": "read",
    "began": "begin", "begun": "begin", "took": "take", "taken": "take",
    "worse": "bad", "worst": "bad", "better": "good", "best": "good",
    "children": "child", "indices": "index", "caches": "cache",
    "statuses": "status", "busses": "bus", "buses": "bus",
}

# Known verb/noun stems for syslog vocabulary; derivational rules only
# detach suffixes when the resulting stem appears here.
DEFAULT_LEXICON: frozenset[str] = frozenset({
    "fail", "connect", "disconnect", "reject", "accept", "detect",
    "correct", "register", "terminate", "allocate", "deallocate",
    "authenticate", "authorize", "throttle", "assert", "deassert",
    "configure", "initialize", "reinitialize", "enumerate", "negotiate",
    "degrade", "expire", "violate", "isolate", "migrate", "calibrate",
    "saturate", "escalate", "validate", "invalidate", "generate",
    "operate", "recover", "resume", "suspend", "attach", "detach",
    "insert", "remove", "mount", "unmount", "create", "delete",
    "update", "upgrade", "downgrade", "install", "uninstall", "reboot",
    "shutdown", "start", "restart", "stop", "abort", "retry", "timeout",
    "overheat", "cool", "warm", "sense", "read", "write", "flush",
    "sync", "drain", "queue", "drop", "block", "unblock", "limit",
    "exceed", "reduce", "increase", "decrease", "report", "log",
    "notify", "alert", "warn", "error", "crash", "panic", "hang",
    "freeze", "corrupt", "scrub", "train", "link", "close", "open",
    "listen", "bind", "route", "forward", "transmit", "receive",
    "respond", "request", "complete", "schedule", "preempt", "cancel",
    "launch", "spawn", "kill", "exit", "load", "unload", "probe",
    "scan", "poll", "sample", "measure", "regulate", "power", "reset",
    "trip", "slow", "down", "reach", "pass", "occur", "refuse",
})

# (suffix, replacement, derivational) rules, tried in order; longest
# suffixes first so "connections" detaches "-ions" before "-s".
_RULES: list[tuple[str, str, bool]] = [
    # derivational — lexicon-gated
    ("izations", "ize", True), ("ization", "ize", True),
    ("ations", "ate", True), ("ation", "ate", True),
    ("ations", "", True), ("ation", "", True),
    ("ions", "", True), ("ion", "", True),
    ("ures", "", True), ("ure", "", True),
    ("ments", "", True), ("ment", "", True),
    ("ances", "", True), ("ance", "", True),
    ("ences", "", True), ("ence", "", True),
    ("ers", "", True), ("er", "", True),
    ("ors", "", True), ("or", "", True),
    ("als", "", True), ("al", "", True),
    ("ities", "e", True), ("ity", "e", True),
    # inflectional — accepted even off-lexicon when stem is long enough
    ("ingly", "", False), ("edly", "", False),
    ("ing", "", False), ("ings", "", False),
    ("ied", "y", False), ("ies", "y", False),
    ("ed", "", False),
    ("es", "", False), ("s", "", False),
]

_VOWELS = set("aeiou")


def _plausible(stem: str) -> bool:
    """A stem is plausible when it is ≥3 chars and contains a vowel."""
    return len(stem) >= 3 and any(c in _VOWELS for c in stem)


@dataclass
class Lemmatizer:
    """Morphy-style lemmatizer with a configurable stem lexicon.

    Parameters
    ----------
    lexicon:
        Known stems enabling derivational suffix detachment.
    extra_exceptions:
        Additional irregular ``form → lemma`` mappings, merged over the
        built-in table.
    """

    lexicon: frozenset[str] = DEFAULT_LEXICON
    extra_exceptions: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._exceptions = dict(_EXCEPTIONS)
        self._exceptions.update(self.extra_exceptions)
        self._cache: dict[str, str] = {}

    def __call__(self, token: str) -> str:
        return self.lemmatize(token)

    def lemmatize(self, token: str) -> str:
        """Return the lemma of a single (lowercase) token.

        Tokens containing non-alphabetic characters (placeholders,
        identifiers) are returned unchanged.
        """
        if not token.isalpha():
            return token
        hit = self._cache.get(token)
        if hit is not None:
            return hit
        lemma = self._lemmatize_uncached(token)
        self._cache[token] = lemma
        return lemma

    def _lemmatize_uncached(self, token: str) -> str:
        exc = self._exceptions.get(token)
        if exc is not None:
            return exc
        if token in self.lexicon:
            return token
        for suffix, repl, derivational in _RULES:
            if not token.endswith(suffix) or len(token) <= len(suffix):
                continue
            stem = token[: -len(suffix)] + repl
            for cand in self._candidates(stem):
                if cand in self.lexicon:
                    return cand
            if not derivational and _plausible(stem):
                # e-restoration: "throttling" -> "throttl" -> "throttle"
                for cand in self._candidates(stem):
                    if cand in self.lexicon:
                        return cand
                return self._tidy(stem)
        return token

    @staticmethod
    def _candidates(stem: str) -> tuple[str, ...]:
        """Stem variants: as-is, e-restored, undoubled final consonant,
        and e-inserted before a final consonant cluster ("registr" →
        "register")."""
        cands = [stem, stem + "e"]
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
            cands.append(stem[:-1])
        if (
            len(stem) >= 4
            and stem[-1] not in _VOWELS
            and stem[-2] not in _VOWELS
        ):
            cands.append(stem[:-1] + "e" + stem[-1])
        return tuple(cands)

    @staticmethod
    def _tidy(stem: str) -> str:
        """Clean an off-lexicon inflectional stem.

        Undo consonant doubling ("stopp" → "stop") and restore a final
        'e' after a consonant+consonant cluster that needs one
        ("throttl" → "throttle").
        """
        if len(stem) >= 3 and stem[-1] == stem[-2] and stem[-1] not in _VOWELS:
            return stem[:-1]
        if (
            len(stem) >= 3
            and stem[-1] not in _VOWELS
            and stem[-2] not in _VOWELS
            and stem[-1] in "lrtv"
        ):
            return stem + "e"
        return stem

    def lemmatize_tokens(self, tokens: list[str]) -> list[str]:
        """Lemmatize a token list."""
        return [self.lemmatize(t) for t in tokens]

    def lemmatize_docs(self, docs: list[list[str]]) -> list[list[str]]:
        """Lemmatize a whole column of token lists (batch-first hot
        path); the memo cache is shared across the batch."""
        return [self.lemmatize_tokens(doc) for doc in docs]


_DEFAULT = Lemmatizer()


def lemmatize_token(token: str) -> str:
    """Lemmatize with the default lexicon."""
    return _DEFAULT.lemmatize(token)
