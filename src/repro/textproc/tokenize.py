"""Syslog-aware tokenization.

Syslog messages mix natural language with structured fragments
(``key=value`` pairs, ``subsystem:`` prefixes, device paths, sensor
readings).  A plain whitespace split leaves punctuation glued to words
("throttled." vs "throttled"), while an aggressive word-character split
destroys identifiers the masking normalizer needs to see intact.  The
tokenizer here splits on whitespace first, then peels leading/trailing
punctuation and breaks ``k=v`` / ``k:v`` pairs, which keeps identifiers
("CPU23", "sda1", "192.168.0.4") as single tokens for the normalizer.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["Tokenizer", "tokenize"]

# Punctuation stripped from token edges.  Internal punctuation (dots in
# IP addresses, dashes in node names) is preserved.
_EDGE_PUNCT = ".,;!?\"'()[]{}:=#"

_KV_RE = re.compile(r"^([A-Za-z_][\w.\-]*)([=:])(.+)$")
_WS_RE = re.compile(r"\s+")


@dataclass
class Tokenizer:
    """Configurable syslog tokenizer.

    Parameters
    ----------
    lowercase:
        Fold tokens to lower case.  The paper's TF-IDF features are
        case-insensitive (Table 1 lists lowercased tokens).
    split_kv:
        Break ``key=value`` and ``key:value`` fragments into
        ``key``, ``value`` tokens so that the key survives as a feature
        even when the value is volatile.
    min_len:
        Drop tokens shorter than this after stripping (0 keeps all).
    """

    lowercase: bool = True
    split_kv: bool = True
    min_len: int = 1

    def __call__(self, text: str) -> list[str]:
        return self.tokenize(text)

    def tokenize(self, text: str) -> list[str]:
        """Tokenize ``text`` into a list of tokens."""
        out: list[str] = []
        for raw in _WS_RE.split(text.strip()):
            if not raw:
                continue
            self._emit(raw, out)
        if self.lowercase:
            out = [t.lower() for t in out]
        if self.min_len > 1:
            out = [t for t in out if len(t) >= self.min_len]
        return out

    def tokenize_many(self, texts: Sequence[str]) -> list[list[str]]:
        """Tokenize a whole column of messages (batch-first hot path)."""
        return [self.tokenize(t) for t in texts]

    def _emit(self, raw: str, out: list[str]) -> None:
        tok = raw.strip(_EDGE_PUNCT)
        if not tok:
            return
        if self.split_kv:
            m = _KV_RE.match(tok)
            # Do not split dotted quads or timestamps: only split when the
            # key looks like an identifier and the separator is = or a
            # colon not followed by a digit pair (12:34:56).
            if m and not (m.group(2) == ":" and re.match(r"^\d{2}(:|$)", m.group(3))):
                key, _sep, val = m.groups()
                out.append(key)
                val = val.strip(_EDGE_PUNCT)
                if val:
                    # Values may themselves be comma-joined lists.
                    for part in val.split(","):
                        part = part.strip(_EDGE_PUNCT)
                        if part:
                            out.append(part)
                return
        out.append(tok)


_DEFAULT = Tokenizer()


def tokenize(text: str) -> list[str]:
    """Tokenize with the default (lowercasing, kv-splitting) tokenizer."""
    return _DEFAULT.tokenize(text)
