"""Cheap template fingerprints for the dedup fast path.

The paper's core observation is that syslog is template + slots: the
overwhelming majority of lines are near-duplicates of a template the
process has already seen.  The dedup cache in front of
``classify_batch`` (:class:`repro.core.template_cache.TemplateCache`)
keys on a *fingerprint* of the message — but memoization is only sound
if fingerprint equality implies the pipeline would produce the same
result.  Everything downstream of masking (tokenize, lemmatize,
vectorize, predict) is a deterministic pure function of the masked
text, so the load-bearing invariant is::

    mask(x) == mask(y)  ⟹  MaskingNormalizer.normalize(x) == normalize(y)

:class:`TemplateFingerprinter` achieves that the strong way: its
:meth:`~TemplateFingerprinter.mask` returns *exactly*
``MaskingNormalizer.normalize(text)`` — not an approximation — but
computes it token-wise with a memo, so the hot path is a dict lookup
per whitespace token instead of thirteen regex passes over the line
(~10× cheaper on skewed workloads; see ``tests/test_template_cache.py``
for the hypothesis property that pins the equality).

Token-wise masking is exact because none of the masking rules can match
across whitespace — with one family of exceptions: the ``<temp>`` and
``<size>`` rules allow a single whitespace between the number and its
unit (``"45 C"``, ``"3 MB"``).  Messages where a unit-leading token
follows a digit-final token are detected up front and routed through
the real normalizer, so the fast path never has to reason about them.
"""

from __future__ import annotations

import hashlib
import re
from collections.abc import Sequence

from repro.textproc.normalize import _ALNUM_ID, _RULES, MaskingNormalizer

__all__ = ["TemplateFingerprinter", "fingerprint", "mask_template"]

#: tokens that can *begin* a cross-whitespace ``<temp>``/``<size>``
#: match when the previous token ends with a digit ("45 C", "3 MB").
#: ``(?:$|\W)`` mirrors the rules' trailing ``\b``: a unit glued to a
#: word character ("45 Cat") does not match the real rule either.
_UNIT_LEAD = re.compile(r"(?:degC|celsius|C|[kKMGT]i?B|kB|bytes)(?:$|\W)")
#: first characters of the unit alternatives — a one-set-lookup screen
#: before the regex runs
_UNIT_FIRST = frozenset("CdckKMGTb")

#: bound the per-token memo so adversarial streams (unbounded distinct
#: slot values) cannot grow it without limit
_MEMO_MAX_ENTRIES = 1 << 16
_MEMO_MAX_TOKEN_LEN = 256


class TemplateFingerprinter:
    """Masked-template keys, computed token-wise with a memo.

    Parameters
    ----------
    normalizer:
        The :class:`~repro.textproc.normalize.MaskingNormalizer` whose
        output :meth:`mask` must reproduce.  ``None`` means the pipeline
        runs without masking (``TfidfVectorizer(normalize=False)``); the
        raw text is then the only sound key, and :meth:`mask` returns it
        unchanged.

    Notes
    -----
    A normalizer configured with ``collapse_whitespace=False`` defeats
    the split/join decomposition, so such configurations fall back to
    calling the normalizer directly — still exact, just not accelerated.
    """

    def __init__(self, normalizer: MaskingNormalizer | None = None) -> None:
        self.normalizer = normalizer
        self._memo: dict[str, str] = {}
        self._identity = normalizer is None
        self._exact_only = normalizer is not None and not normalizer.collapse_whitespace
        self._alnum_ids = normalizer is not None and normalizer.mask_alnum_ids

    @classmethod
    def for_vectorizer(cls, vectorizer) -> "TemplateFingerprinter":
        """Build a fingerprinter matching a vectorizer's normalization."""
        return cls(getattr(vectorizer, "_normalizer", None))

    def mask(self, text: str) -> str:
        """The template key: exactly ``normalizer.normalize(text)``.

        Never raises on hostile input — any ``str`` (NULs, lone
        surrogates, megabyte lines) masks to a ``str``.
        """
        if self._identity:
            return text
        if self._exact_only:
            return self.normalizer.normalize(text)
        tokens = text.split()
        # screen for the one cross-whitespace case the rules allow: a
        # digit-final token followed by a unit-leading token ("45 C")
        prev_digit = False
        for t in tokens:
            if prev_digit and t[0] in _UNIT_FIRST and _UNIT_LEAD.match(t):
                return self.normalizer.normalize(text)
            prev_digit = t[-1].isdigit()
        memo = self._memo
        alnum_ids = self._alnum_ids
        out: list[str] = []
        for t in tokens:
            v = memo.get(t)
            if v is None:
                if t.isascii() and t.isdigit():
                    # the only rules a pure-digit token can match are
                    # <hexid> (8+ hex chars) and <num>
                    v = "<hexid>" if len(t) >= 8 else "<num>"
                else:
                    v = t
                    for placeholder, pat in _RULES:
                        v = pat.sub(placeholder, v)
                    if alnum_ids:
                        v = _ALNUM_ID.sub(lambda m: m.group(1) + "<num>", v)
                if len(t) <= _MEMO_MAX_TOKEN_LEN and len(memo) < _MEMO_MAX_ENTRIES:
                    memo[t] = v
            out.append(v)
        return " ".join(out)

    def mask_many(self, texts: Sequence[str]) -> list[str]:
        """Mask a whole column of messages (the batch hot path)."""
        return [self.mask(t) for t in texts]

    def fingerprint(self, text: str) -> str:
        """Stable 16-hex-char digest of :meth:`mask` output.

        Uses BLAKE2b (not Python's per-process-salted ``hash``), so the
        value is identical across processes and runs — safe to log,
        shard on, or compare between workers.
        """
        return _digest(self.mask(text))


_DEFAULT = TemplateFingerprinter(MaskingNormalizer())


def _digest(masked: str) -> str:
    payload = masked.encode("utf-8", "surrogatepass")
    return hashlib.blake2b(payload, digest_size=8).hexdigest()


def _coerce_text(message: str | bytes) -> str:
    if isinstance(message, bytes):
        # total on byte garbage and truncated UTF-8: undecodable bytes
        # become lone surrogates, which mask and digest fine
        return message.decode("utf-8", "surrogateescape")
    return message


def mask_template(message: str | bytes) -> str:
    """Mask ``message`` with the default rules (template key form).

    Equals ``MaskingNormalizer().normalize(message)`` exactly; accepts
    raw bytes (decoded with ``surrogateescape``) and never raises.
    """
    return _DEFAULT.mask(_coerce_text(message))


def fingerprint(message: str | bytes) -> str:
    """Stable 16-hex-char template fingerprint of ``message``.

    Two messages share a fingerprint exactly when they mask to the same
    template under the default rules.  Deterministic across processes
    (BLAKE2b, no hash randomization); total on hostile input — byte
    garbage, NULs, truncated UTF-8, and megabyte lines all fingerprint
    without raising.
    """
    return _DEFAULT.fingerprint(_coerce_text(message))
