"""Masking normalization of volatile syslog fields.

The legacy bucketing approach (§3) groups messages that "state the same
problem in the same way, but with slightly different identifying
information".  The ML pipeline achieves the same collapse *before*
feature extraction by masking volatile fields — IP addresses, MAC
addresses, hex ids, device numbers, PIDs, temperatures — with stable
placeholder tokens.  Two benefits:

- the TF-IDF vocabulary stays small and discriminative (no one-off
  identifiers), and
- message *shapes* become comparable across nodes and over time, which
  is what makes the classifier robust where edit-distance bucketing
  needed re-training.
"""

from __future__ import annotations

import re
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["MaskingNormalizer", "normalize_message"]

# Order matters: more specific patterns first (MAC before hex, IPv4
# before bare numbers, etc.).
_RULES: list[tuple[str, re.Pattern[str]]] = [
    ("<mac>", re.compile(r"\b(?:[0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}\b")),
    ("<ip>", re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}(?::\d+)?\b")),
    ("<ipv6>", re.compile(r"\b(?:[0-9a-fA-F]{1,4}:){3,7}[0-9a-fA-F]{1,4}\b")),
    ("<time>", re.compile(r"\b\d{1,2}:\d{2}(?::\d{2})?(?:\.\d+)?\b")),
    ("<date>", re.compile(r"\b\d{4}-\d{2}-\d{2}\b")),
    ("<hex>", re.compile(r"\b0x[0-9a-fA-F]+\b")),
    ("<hexid>", re.compile(r"\b[0-9a-fA-F]{8,}\b")),
    ("<path>", re.compile(r"(?:^|(?<=\s))/[\w./\-]+")),
    ("<ver>", re.compile(r"\b\d+\.\d+(?:\.\d+)+\b")),
    ("<temp>", re.compile(r"\b\d+(?:\.\d+)?\s?(?:C|degC|celsius)\b")),
    ("<size>", re.compile(r"\b\d+(?:\.\d+)?\s?(?:kB|KB|MB|GB|TB|KiB|MiB|GiB|bytes)\b")),
    ("<num>", re.compile(r"\b\d+(?:\.\d+)?[eE][+-]?\d+\b")),  # scientific notation
    ("<num>", re.compile(r"\b\d+(?:\.\d+)?\b")),
]

# node-name style identifiers: alpha prefix + numeric suffix (cn042,
# sda1, eth0, cpu23).  The alpha stem is kept, the counter masked, so
# "cpu23"/"cpu7" share the feature "cpu<num>".
_ALNUM_ID = re.compile(r"\b([A-Za-z]{2,})(\d{1,6})\b")


@dataclass
class MaskingNormalizer:
    """Replace volatile message fields with placeholder tokens.

    Parameters
    ----------
    mask_alnum_ids:
        Also mask the numeric suffix of ``name<digits>`` identifiers
        (``cn042`` → ``cn<num>``), keeping the stem.
    collapse_whitespace:
        Squash runs of whitespace to a single space.
    """

    mask_alnum_ids: bool = True
    collapse_whitespace: bool = True

    def __call__(self, text: str) -> str:
        return self.normalize(text)

    def normalize(self, text: str) -> str:
        """Return ``text`` with volatile fields masked."""
        for placeholder, pat in _RULES:
            text = pat.sub(placeholder, text)
        if self.mask_alnum_ids:
            text = _ALNUM_ID.sub(lambda m: m.group(1) + "<num>", text)
        if self.collapse_whitespace:
            text = " ".join(text.split())
        return text

    def normalize_many(self, texts: Sequence[str]) -> list[str]:
        """Normalize a whole column of messages.

        The batch-first hot path (``repro.runtime``) runs each
        preprocessing stage once per batch; masking is applied
        column-wise here so the stage is a single timed unit.
        """
        return [self.normalize(t) for t in texts]


_DEFAULT = MaskingNormalizer()


def normalize_message(text: str) -> str:
    """Normalize with the default masking rules."""
    return _DEFAULT.normalize(text)
