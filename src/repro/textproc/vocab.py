"""Vocabulary construction with document-frequency pruning."""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = ["Vocabulary", "build_vocabulary"]


@dataclass
class Vocabulary:
    """An immutable token → column-index mapping.

    Built by :func:`build_vocabulary` or from an explicit token list.
    Iteration order is the index order.
    """

    tokens: tuple[str, ...]
    index: dict[str, int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.index = {t: i for i, t in enumerate(self.tokens)}
        if len(self.index) != len(self.tokens):
            dupes = [t for t, c in Counter(self.tokens).items() if c > 1]
            raise ValueError(f"duplicate vocabulary tokens: {dupes[:5]}")

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: str) -> bool:
        return token in self.index

    def __getitem__(self, token: str) -> int:
        return self.index[token]

    def get(self, token: str, default: int = -1) -> int:
        """Index of ``token``, or ``default`` when out of vocabulary."""
        return self.index.get(token, default)

    def token(self, idx: int) -> str:
        """Token at column ``idx``."""
        return self.tokens[idx]


def build_vocabulary(
    documents: Iterable[Sequence[str]],
    *,
    min_df: int = 1,
    max_df_ratio: float = 1.0,
    max_size: int | None = None,
) -> Vocabulary:
    """Build a vocabulary from tokenized documents.

    Parameters
    ----------
    documents:
        Iterable of token sequences.
    min_df:
        Keep tokens appearing in at least this many documents.
    max_df_ratio:
        Drop tokens appearing in more than this fraction of documents
        (corpus-wide boilerplate carries no category signal).
    max_size:
        Keep at most this many tokens, preferring higher document
        frequency (ties broken alphabetically for determinism).
    """
    if min_df < 1:
        raise ValueError(f"min_df must be >= 1, got {min_df}")
    if not 0.0 < max_df_ratio <= 1.0:
        raise ValueError(f"max_df_ratio must be in (0, 1], got {max_df_ratio}")
    df: Counter[str] = Counter()
    n_docs = 0
    for doc in documents:
        n_docs += 1
        df.update(set(doc))
    max_df = max_df_ratio * n_docs
    kept = [(t, c) for t, c in df.items() if c >= min_df and c <= max_df]
    kept.sort(key=lambda tc: (-tc[1], tc[0]))
    if max_size is not None:
        kept = kept[:max_size]
    # Final ordering alphabetical for stable column layout.
    tokens = tuple(sorted(t for t, _ in kept))
    return Vocabulary(tokens)
