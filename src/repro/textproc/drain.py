"""Drain-style online log-template mining.

The legacy bucketing approach (§3) and the masking normalizer both
approximate what the log-parsing literature calls *template mining* —
discovering the constant skeleton of each message and wildcarding its
parameters.  Drain (He et al., ICWS 2017; the core of the LogPAI
toolkit) is the standard online algorithm: a fixed-depth prefix tree
routes each message by token count and leading tokens to a small group
of candidate clusters, the most similar cluster above a threshold
absorbs the message (wildcarding positions that differ), and otherwise
a new cluster is born.

Having a real miner lets the repo compare three grouping strategies on
equal footing (see ``benchmarks/bench_template_mining.py``):

- Levenshtein bucketing (the paper's legacy approach),
- masking + exact shape matching (what the ML pipeline rides on),
- Drain template mining (the literature's default).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.textproc.tokenize import Tokenizer

__all__ = ["DrainTemplateMiner", "LogTemplate"]

_WILDCARD = "<*>"


@dataclass
class LogTemplate:
    """One mined template (cluster)."""

    template_id: int
    tokens: list[str]
    count: int = 0

    def render(self) -> str:
        """The template as a string, wildcards included."""
        return " ".join(self.tokens)


def _has_digit(token: str) -> bool:
    return any(ch.isdigit() for ch in token)


@dataclass
class DrainTemplateMiner:
    """Online template miner (Drain's fixed-depth search tree).

    Parameters
    ----------
    depth:
        Tree depth (number of leading tokens used for routing, after
        the token-count level).
    similarity_threshold:
        Fraction of positions that must match an existing template for
        the message to join it.
    max_children:
        Branching cap per internal node; overflow routes through a
        catch-all child (Drain's guard against parameter explosion).
    """

    depth: int = 3
    similarity_threshold: float = 0.5
    max_children: int = 24

    templates: list[LogTemplate] = field(default_factory=list, init=False)
    _root: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")
        if not 0.0 < self.similarity_threshold <= 1.0:
            raise ValueError(
                f"similarity_threshold must be in (0, 1], got "
                f"{self.similarity_threshold}"
            )
        self._tokenizer = Tokenizer(lowercase=False, split_kv=False)

    # -- routing --------------------------------------------------------

    def _leaf_for(self, tokens: list[str]) -> list[LogTemplate]:
        """The candidate-template list for this token sequence,
        creating routing nodes as needed."""
        node = self._root.setdefault(len(tokens), {})
        for d in range(min(self.depth, len(tokens))):
            tok = tokens[d]
            # parameters (digit-bearing tokens) all route through the
            # wildcard child so numbers don't explode the tree
            key = _WILDCARD if _has_digit(tok) else tok
            children = node.setdefault("children", {})
            if key not in children and len(children) >= self.max_children:
                key = _WILDCARD
            node = children.setdefault(key, {})
        return node.setdefault("leaf", [])

    @staticmethod
    def _similarity(a: list[str], b: list[str]) -> float:
        # mismatched lengths must compare as dissimilar: zip truncation
        # would otherwise overstate similarity against len(a) and a
        # merge would silently drop the longer tail
        if len(a) != len(b):
            return 0.0
        same = sum(
            1 for x, y in zip(a, b) if x == y or x == _WILDCARD or y == _WILDCARD
        )
        return same / len(a) if a else 1.0

    # -- API ------------------------------------------------------------------

    def add(self, message: str) -> LogTemplate:
        """Route one message; returns its (possibly new) template."""
        tokens = self._tokenizer.tokenize(message)
        leaf = self._leaf_for(tokens)
        best: LogTemplate | None = None
        best_sim = 0.0
        for tpl in leaf:
            sim = self._similarity(tpl.tokens, tokens)
            if sim > best_sim:
                best, best_sim = tpl, sim
        if best is not None and best_sim >= self.similarity_threshold:
            # merge: wildcard the differing positions
            best.tokens = [
                t if t == u else _WILDCARD
                for t, u in zip(best.tokens, tokens)
            ]
            best.count += 1
            return best
        tpl = LogTemplate(template_id=len(self.templates), tokens=list(tokens),
                          count=1)
        self.templates.append(tpl)
        leaf.append(tpl)
        return tpl

    def fit(self, messages) -> "DrainTemplateMiner":
        """Mine templates from a message collection."""
        for m in messages:
            self.add(m)
        return self

    def match(self, message: str) -> LogTemplate | None:
        """Best existing template for ``message`` (no mutation), or None."""
        tokens = self._tokenizer.tokenize(message)
        node = self._root.get(len(tokens))
        if node is None:
            return None
        for d in range(min(self.depth, len(tokens))):
            children = node.get("children", {})
            tok = tokens[d]
            key = _WILDCARD if _has_digit(tok) else tok
            if key not in children:
                key = _WILDCARD
            node = children.get(key)
            if node is None:
                return None
        best, best_sim = None, 0.0
        for tpl in node.get("leaf", []):
            sim = self._similarity(tpl.tokens, tokens)
            if sim > best_sim:
                best, best_sim = tpl, sim
        return best if best is not None and best_sim >= self.similarity_threshold else None

    @property
    def n_templates(self) -> int:
        return len(self.templates)
