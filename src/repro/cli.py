"""Command-line interface.

The deployment surface of §7: generate corpora, train and persist
classification pipelines, classify message streams, evaluate, and
regenerate the paper's tables — all from the shell.

Subcommands
-----------
``generate``   write a labelled synthetic corpus as JSONL
``train``      fit a pipeline on a JSONL corpus and save it
``classify``   classify messages (file or stdin) with a saved pipeline
``evaluate``   train/test evaluation report on a JSONL corpus
``tables``     regenerate paper artifacts (table1|table2|table3|fig3)
``metrics``    pretty-print a metrics snapshot (file, WAL dir, or ops URL)
``simulate``   run the Tivan stream simulation (``--wal-dir`` = durable)
``listen``     bind a real UDP/TCP syslog listener feeding the broker
``recover``    resume a killed durable simulation from its WAL directory
``trace``      render cross-hop trace waterfalls (checkpoint or live server)

Example
-------
::

    repro-syslog generate --scale 0.01 --out corpus.jsonl
    repro-syslog train --corpus corpus.jsonl --model-dir model/ --classifier cnb
    echo "Warning: Socket 2 - CPU 23 throttling" | repro-syslog classify --model-dir model/
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]

_CLASSIFIERS = {
    "logreg": lambda: _ml().LogisticRegression(max_iter=200),
    "ridge": lambda: _ml().RidgeClassifier(),
    "knn": lambda: _ml().KNeighborsClassifier(),
    "forest": lambda: _ml().RandomForestClassifier(n_estimators=40, max_depth=25),
    "svc": lambda: _ml().LinearSVC(),
    "sgd": lambda: _ml().SGDClassifier(),
    "centroid": lambda: _ml().NearestCentroid(),
    "cnb": lambda: _ml().ComplementNB(),
}


def _ml():
    import repro.ml as ml

    return ml


def _positive_int(value: str) -> int:
    """Argparse type for options that must be a positive integer."""
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {n}")
    return n


def _add_cache_flags(p) -> None:
    """The template-dedup cache knobs (classify + simulate + listen)."""
    p.add_argument("--template-cache", action="store_true",
                   help="memoize classify results per masked template "
                        "(exact: cached and uncached results are "
                        "bit-for-bit identical)")
    p.add_argument("--cache-size", type=int, default=4096,
                   help="template-cache LRU capacity (default 4096; "
                        "0 disables)")


def _add_telemetry_flags(p) -> None:
    """The shared end-to-end telemetry knobs (simulate + listen)."""
    p.add_argument("--metrics-port", type=int, default=None,
                   help="serve /metrics, /health, and /trace/<id> on this "
                        "port for the duration of the run (0 = ephemeral; "
                        "the bound port is printed to stderr)")
    p.add_argument("--trace-sample", type=float, default=0.0,
                   help="fraction of accepted messages carrying a cross-hop "
                        "trace context, 0..1 (default 0 = tracing off)")
    p.add_argument("--trace-seed", type=int, default=0,
                   help="seed of the deterministic sampling decision "
                        "(same seed + same message ordinal = same verdict)")
    p.add_argument("--slo-file", type=Path, default=None,
                   help="JSON list of SLO targets driving the /metrics "
                        "burn gauges (default: built-in e2e/loss/quorum "
                        "targets; requires --metrics-port)")


def _add_control_flags(p) -> None:
    """The closed-loop control-plane knobs (simulate + listen)."""
    p.add_argument("--control", action="store_true",
                   help="attach the closed-loop overload controller "
                        "(autoscaling + backpressure + brownout) with "
                        "the built-in policy")
    p.add_argument("--control-policy", type=Path, default=None,
                   help="JSON control policy file driving the "
                        "controller (implies --control; see "
                        "repro.control.ControlPolicy)")


def _control_policy(args, *, listen: bool = False):
    """Resolve --control/--control-policy into a ControlPolicy or None."""
    from repro.control import (
        default_listen_policy,
        default_policy,
        load_policy_file,
    )

    path = getattr(args, "control_policy", None)
    if path is not None:
        try:
            return load_policy_file(path)
        except (OSError, ValueError, KeyError, TypeError) as e:
            raise SystemExit(f"{path}: bad control policy: {e}")
    if getattr(args, "control", False):
        return default_listen_policy() if listen else default_policy()
    return None


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-syslog",
        description="Heterogeneous syslog analysis (SC'23 SYSPROS reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="write a labelled synthetic corpus (JSONL)")
    p.add_argument("--scale", type=float, default=0.01,
                   help="fraction of the paper's 196k-message dataset")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", type=Path, required=True, help="output JSONL path")

    p = sub.add_parser("train", help="fit and persist a classification pipeline")
    p.add_argument("--corpus", type=Path, required=True, help="JSONL corpus")
    p.add_argument("--model-dir", type=Path, required=True)
    p.add_argument("--classifier", choices=sorted(_CLASSIFIERS), default="cnb")
    p.add_argument("--max-features", type=int, default=2000)
    p.add_argument("--blacklist", action="store_true",
                   help="attach the §5.1 noise blacklist pre-filter")
    p.add_argument("--hashing", action="store_true",
                   help="use the stateless hashed-feature vectorizer "
                        "instead of a learned TF-IDF vocabulary")

    p = sub.add_parser("classify", help="classify messages with a saved pipeline")
    p.add_argument("--model-dir", type=Path, required=True)
    p.add_argument("--input", type=Path, default=None,
                   help="file of messages, one per line (default: stdin)")
    p.add_argument("--batch-size", type=_positive_int, default=500,
                   help="messages classified per batch (input is "
                        "streamed, never fully buffered)")
    p.add_argument("--workers", type=_positive_int, default=1,
                   help="shard batches across this many worker processes")
    p.add_argument("--jsonl", action="store_true",
                   help="emit one JSON object per message instead of "
                        "the human-readable line format")
    p.add_argument("--timing", action="store_true",
                   help="print the per-stage timing report to stderr")
    p.add_argument("--metrics-out", type=Path, default=None,
                   help="write a metrics snapshot on exit (Prometheus "
                        "text for .prom/.txt, JSON otherwise)")
    _add_cache_flags(p)

    p = sub.add_parser("evaluate", help="train/test evaluation on a corpus")
    p.add_argument("--corpus", type=Path, required=True)
    p.add_argument("--classifier", choices=sorted(_CLASSIFIERS), default="cnb")
    p.add_argument("--test-size", type=float, default=0.25)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--max-features", type=int, default=2000)
    p.add_argument("--batch-size", type=_positive_int, default=1000,
                   help="test messages classified per batch")
    p.add_argument("--timing", action="store_true",
                   help="print the per-stage timing report to stderr")
    p.add_argument("--metrics-out", type=Path, default=None,
                   help="write a metrics snapshot on exit (Prometheus "
                        "text for .prom/.txt, JSON otherwise)")

    p = sub.add_parser(
        "metrics",
        help="pretty-print a metrics snapshot written with --metrics-out",
    )
    p.add_argument("snapshot",
                   help="snapshot file (.prom/.txt Prometheus text, "
                        "or the JSON form), a durable-run WAL "
                        "directory (renders the newest checkpoint's "
                        "embedded metrics), or the http://host:port "
                        "URL of a --metrics-port ops server")
    p.add_argument("--watch", type=_positive_int, default=None, metavar="N",
                   help="re-read the source and re-render every N "
                        "seconds until interrupted")
    p.add_argument("--count", type=_positive_int, default=None,
                   help="with --watch: stop after this many renders")

    p = sub.add_parser("tables", help="regenerate a paper artifact")
    p.add_argument("artifact", choices=["table1", "table2", "table3", "fig3"])
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "simulate",
        help="run the Tivan stream simulation with a saved pipeline",
    )
    p.add_argument("--model-dir", type=Path, required=True)
    p.add_argument("--duration", type=float, default=600.0,
                   help="simulated seconds of stream")
    p.add_argument("--rate", type=float, default=5.0,
                   help="background messages per second")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--incident", action="store_true",
                   help="inject a cold-aisle thermal incident mid-run")
    p.add_argument("--fault-plan", type=Path, default=None,
                   help="JSON fault plan armed on the stream and "
                        "classification layers (see repro.faults)")
    p.add_argument("--overflow", choices=["block", "drop_oldest", "dead_letter"],
                   default="block",
                   help="forwarder policy when the buffer is full")
    p.add_argument("--flush-retries", type=_positive_int, default=None,
                   help="bounded flush retry budget; a head batch "
                        "failing this many times in a row is "
                        "dead-lettered (default: retry forever)")
    p.add_argument("--degrade-backlog", type=_positive_int, default=None,
                   help="classifier backlog at which the cluster sheds "
                        "load to the cheap blacklist path")
    p.add_argument("--store-nodes", type=_positive_int, default=None,
                   help="index through a replicated store over this "
                        "many nodes (default: single in-process store)")
    p.add_argument("--replicas", type=int, default=1,
                   help="copies per shard beyond the primary "
                        "(replicated store only; default 1)")
    p.add_argument("--write-quorum", type=_positive_int, default=None,
                   help="owner copies a write must land on (W; "
                        "default: majority of replicas+1)")
    p.add_argument("--read-quorum", type=_positive_int, default=None,
                   help="owner copies a read must consult (R; "
                        "default: majority of replicas+1)")
    p.add_argument("--metrics-out", type=Path, default=None,
                   help="write a metrics snapshot on exit (Prometheus "
                        "text for .prom/.txt, JSON otherwise)")
    p.add_argument("--wal-dir", type=Path, default=None,
                   help="make the run durable: write-ahead log and "
                        "checkpoints in this directory (resume a "
                        "killed run with `repro-syslog recover`)")
    p.add_argument("--checkpoint-every", type=float, default=60.0,
                   help="simulated seconds between checkpoints "
                        "(durable runs only)")
    p.add_argument("--fsync", choices=["always", "batch", "off"],
                   default="batch",
                   help="WAL fsync policy (durable runs only)")
    p.add_argument("--via-broker", action="store_true",
                   help="route the relay through the partitioned log "
                        "broker; the forwarder becomes a consumer-group "
                        "member and backpressure is broker lag")
    p.add_argument("--broker-partitions", type=_positive_int, default=None,
                   help="hash hosts onto this many partitions instead "
                        "of one per host (requires --via-broker; "
                        "incompatible with --wal-dir)")
    p.add_argument("--consumers", type=_positive_int, default=1,
                   help="consumer-group members sharing the partitions "
                        "(requires --via-broker; durable runs need 1)")
    p.add_argument("--load-profile",
                   choices=["standard", "surge", "diurnal", "constant"],
                   default="standard",
                   help="offered-load shape: the standard trace, a "
                        "--load-swing step surge for the middle third, "
                        "a sinusoidal diurnal sweep, or constant Poisson")
    p.add_argument("--load-swing", type=float, default=10.0,
                   help="peak/base offered-load ratio for surge/diurnal "
                        "profiles (default 10)")
    _add_cache_flags(p)
    _add_telemetry_flags(p)
    _add_control_flags(p)

    p = sub.add_parser(
        "listen",
        help="bind a real UDP/TCP syslog listener feeding the broker",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default loopback)")
    p.add_argument("--udp-port", type=int, default=0,
                   help="UDP port (0 = ephemeral, -1 = disabled)")
    p.add_argument("--tcp-port", type=int, default=0,
                   help="TCP port (0 = ephemeral, -1 = disabled)")
    p.add_argument("--rate-limit", type=float, default=None,
                   help="accept-time shed budget, messages/second "
                        "(default: unlimited)")
    p.add_argument("--burst", type=float, default=None,
                   help="token-bucket burst (default: one second of rate)")
    p.add_argument("--per-tenant", action="store_true",
                   help="share --rate-limit across tenants (host/app "
                        "keys) with deficit-round-robin fairness "
                        "instead of one first-come global bucket")
    p.add_argument("--max-line-bytes", type=_positive_int, default=8192,
                   help="oversize quarantine threshold")
    p.add_argument("--partitions", type=_positive_int, default=None,
                   help="hash hosts onto this many broker partitions "
                        "(default: one per host)")
    p.add_argument("--duration", type=float, default=None,
                   help="stop after this many wall-clock seconds "
                        "(default: run until --max-messages or ^C)")
    p.add_argument("--max-messages", type=_positive_int, default=None,
                   help="stop once this many lines were received")
    p.add_argument("--port-file", type=Path, default=None,
                   help="write the bound ports as JSON once listening "
                        "(handshake for scripted senders; includes the "
                        "metrics port when --metrics-port is set)")
    p.add_argument("--model-dir", type=Path, default=None,
                   help="classify consumed messages with this saved "
                        "pipeline and store their categories")
    _add_cache_flags(p)
    _add_telemetry_flags(p)
    _add_control_flags(p)

    p = sub.add_parser(
        "trace",
        help="render cross-hop trace waterfalls from a durable run "
             "or a live ops server",
    )
    p.add_argument("trace_id", nargs="?", default=None,
                   help="32-hex trace id to render (default: list the "
                        "traces the source holds)")
    p.add_argument("--wal-dir", type=Path, default=None,
                   help="durable-run WAL directory; spans come from the "
                        "newest checkpoint (run with --trace-sample > 0)")
    p.add_argument("--url", default=None,
                   help="http://host:port of a running --metrics-port "
                        "ops server (fetches /trace endpoints)")
    p.add_argument("--limit", type=_positive_int, default=10,
                   help="traces listed when no trace id is given")

    p = sub.add_parser(
        "recover",
        help="resume a durable simulation from its WAL directory",
    )
    p.add_argument("--wal-dir", type=Path, required=True,
                   help="directory of a simulate --wal-dir run")
    p.add_argument("--store-nodes", type=_positive_int, default=None,
                   help="override the run's replicated-store node "
                        "count (default: the value in meta.json)")
    p.add_argument("--replicas", type=int, default=None,
                   help="override the run's replica count")
    p.add_argument("--write-quorum", type=_positive_int, default=None,
                   help="override the run's write quorum (W)")
    p.add_argument("--read-quorum", type=_positive_int, default=None,
                   help="override the run's read quorum (R)")
    p.add_argument("--metrics-out", type=Path, default=None,
                   help="write a metrics snapshot on exit (Prometheus "
                        "text for .prom/.txt, JSON otherwise)")

    p = sub.add_parser(
        "report",
        help="run every experiment and write a paper-vs-measured report",
    )
    p.add_argument("--out", type=Path, required=True, help="markdown output path")
    p.add_argument("--scale", type=float, default=0.02)
    p.add_argument("--seed", type=int, default=0)

    p = sub.add_parser(
        "assist",
        help="run a §7 assistant task over a simulated collection window",
    )
    p.add_argument("task", choices=["summary", "explain", "reply"])
    p.add_argument("--model-dir", type=Path, required=True,
                   help="saved classification pipeline for labelling")
    p.add_argument("--host", default="cn001", help="node for explain/reply")
    p.add_argument("--question", default="Is the cluster healthy?",
                   help="admin question for the reply task")
    p.add_argument("--llm", default="Llama-2-70b-chat-hf")
    p.add_argument("--seed", type=int, default=0)
    return parser


def _read_corpus(path: Path):
    from repro.core.taxonomy import Category

    texts: list[str] = []
    labels: list = []
    with path.open() as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                texts.append(row["text"])
                labels.append(Category.from_name(row["label"]))
            except (json.JSONDecodeError, KeyError) as e:
                raise SystemExit(f"{path}:{i + 1}: bad corpus row: {e}")
    if not texts:
        raise SystemExit(f"{path}: empty corpus")
    return texts, labels


def _cmd_generate(args) -> int:
    from repro.datagen.generator import CorpusGenerator

    corpus = CorpusGenerator(scale=args.scale, seed=args.seed).generate()
    with args.out.open("w") as fh:
        for msg, label in zip(corpus.messages, corpus.labels):
            fh.write(json.dumps({
                "text": msg.text,
                "label": label.value,
                "hostname": msg.hostname,
                "app": msg.app,
                "timestamp": msg.timestamp,
            }) + "\n")
    counts = ", ".join(f"{c.name}={n}" for c, n in corpus.counts().items())
    print(f"wrote {len(corpus)} messages to {args.out} ({counts})")
    return 0


def _cmd_train(args) -> int:
    from repro.buckets.blacklist import BlacklistFilter
    from repro.core.pipeline import ClassificationPipeline
    from repro.core.serialize import save_pipeline
    from repro.textproc.tfidf import HashingVectorizer, TfidfVectorizer

    texts, labels = _read_corpus(args.corpus)
    vectorizer = (
        HashingVectorizer()
        if args.hashing
        else TfidfVectorizer(max_features=args.max_features)
    )
    pipe = ClassificationPipeline(
        vectorizer=vectorizer,
        classifier=_CLASSIFIERS[args.classifier](),
        blacklist=BlacklistFilter(threshold=3) if args.blacklist else None,
    )
    pipe.fit(texts, labels)
    save_pipeline(pipe, args.model_dir)
    print(f"trained {args.classifier} on {len(texts)} messages "
          f"-> {args.model_dir}")
    return 0


def _write_metrics(path: Path) -> None:
    """Write the process registry to ``path`` (format by extension)."""
    from repro.obs import write_snapshot
    from repro.obs.wellknown import declare_all

    # declare the full schema first so every snapshot carries all
    # well-known families, zero-valued where a subsystem never ran
    declare_all()
    print(f"wrote metrics snapshot to {write_snapshot(path)}", file=sys.stderr)


def _emit_result(result, *, jsonl: bool) -> None:
    if jsonl:
        print(json.dumps({
            "text": result.text,
            "category": result.category.value,
            "confidence": result.confidence,
            "filtered": result.filtered,
            "quarantined": result.quarantined,
        }))
        return
    conf = f" ({result.confidence:.2f})" if result.confidence is not None else ""
    flag = " [blacklisted]" if result.filtered else ""
    if result.quarantined:
        flag = " [quarantined]"
    print(f"{result.category.value}{conf}{flag}\t{result.text}")


def _attach_cache(pipe, args) -> None:
    """Attach a :class:`TemplateCache` when ``--template-cache`` is set."""
    if getattr(args, "template_cache", False):
        from repro.core.template_cache import TemplateCache

        pipe.template_cache = TemplateCache(max_entries=args.cache_size)


def _cmd_classify(args) -> int:
    from contextlib import ExitStack, nullcontext

    from repro.core.serialize import load_pipeline
    from repro.runtime import MessageBatch, ShardedExecutor

    pipe = load_pipeline(args.model_dir)
    # attached before the executor exists, so sharded workers each
    # inherit their own per-worker copy of the cache
    _attach_cache(pipe, args)
    with ExitStack() as stack:
        runner = pipe
        if args.workers > 1:
            runner = stack.enter_context(
                ShardedExecutor(pipe, n_workers=args.workers,
                                chunk_size=max(1, args.batch_size // args.workers),
                                min_parallel=args.batch_size)
            )
        stream = stack.enter_context(
            args.input.open() if args.input else nullcontext(sys.stdin)
        )
        for batch in MessageBatch.read_lines(stream, args.batch_size):
            for result in runner.classify_batch(batch):
                _emit_result(result, jsonl=args.jsonl)
    if args.timing:
        print(pipe.timing_report().render(), file=sys.stderr)
        if pipe.template_cache is not None:
            if args.workers > 1:
                # the workers hold the caches; their counter deltas are
                # mirrored into the parent registry under worker=<pid>,
                # so sum across every worker label
                from repro.obs import wellknown

                def _total(family) -> int:
                    return int(sum(c.value for _, c in family().samples()))

                hits = _total(wellknown.template_cache_hits)
                misses = _total(wellknown.template_cache_misses)
                st = {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": hits / max(1, hits + misses),
                    "size": _total(wellknown.template_cache_size),
                    "evictions": _total(wellknown.template_cache_evictions),
                }
            else:
                st = pipe.template_cache.stats()
            print(
                f"template cache: hits={st['hits']} misses={st['misses']} "
                f"hit_rate={st['hit_rate']:.3f} size={st['size']} "
                f"evictions={st['evictions']}",
                file=sys.stderr,
            )
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    return 0


def _cmd_evaluate(args) -> int:
    import numpy as np

    from repro.core.pipeline import ClassificationPipeline
    from repro.ml import classification_report, train_test_split, weighted_f1_score
    from repro.runtime import MessageBatch
    from repro.textproc.tfidf import TfidfVectorizer

    texts, labels = _read_corpus(args.corpus)
    y = np.asarray([lab.value for lab in labels])
    tr_txt, te_txt, y_tr, y_te = train_test_split(
        texts, y, test_size=args.test_size, seed=args.seed
    )
    pipe = ClassificationPipeline(
        vectorizer=TfidfVectorizer(max_features=args.max_features),
        classifier=_CLASSIFIERS[args.classifier](),
    )
    pipe.fit(list(tr_txt), list(y_tr))
    pred = np.asarray([
        r.category.value
        for chunk in MessageBatch.of_texts(te_txt).chunks(args.batch_size)
        for r in pipe.classify_batch(chunk)
    ])
    print(classification_report(y_te, pred))
    print(f"\nweighted F1: {weighted_f1_score(y_te, pred):.4f}")
    if args.timing:
        print(pipe.timing_report().render(), file=sys.stderr)
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    return 0


def _http_get(url: str) -> str:
    from urllib.request import urlopen

    try:
        with urlopen(url, timeout=10.0) as resp:
            return resp.read().decode("utf-8")
    except OSError as e:
        raise SystemExit(f"{url}: {e}")


def _render_metrics_source(source: str) -> str:
    """One metrics render from a file, WAL directory, or ops URL."""
    from repro.monitor.dashboard import render_metrics_panel
    from repro.obs import load_snapshot, parse_prometheus

    if source.startswith(("http://", "https://")):
        url = source.rstrip("/")
        if not url.endswith("/metrics"):
            url += "/metrics"
        return render_metrics_panel(parse_prometheus(_http_get(url)), title=url)
    path = Path(source)
    if not path.exists():
        raise SystemExit(f"{path}: no such snapshot file")
    if path.is_dir():
        # a durable-run WAL directory: render the metrics snapshot the
        # newest valid checkpoint carries
        from repro.durability import load_latest_checkpoint

        payload, ckpt = load_latest_checkpoint(path)
        if payload is None:
            raise SystemExit(f"{path}: no valid checkpoint in directory")
        return render_metrics_panel(payload["metrics"], title=str(ckpt))
    try:
        snapshot = load_snapshot(path)
    except ValueError as e:
        raise SystemExit(f"{path}: {e}")
    return render_metrics_panel(snapshot, title=str(path))


def _cmd_metrics(args) -> int:
    import itertools
    import time

    try:
        for i in itertools.count():
            if i:
                time.sleep(args.watch)
                if sys.stdout.isatty():
                    print("\x1b[2J\x1b[H", end="")
            print(_render_metrics_source(args.snapshot))
            if args.watch is None:
                break
            if args.count is not None and i + 1 >= args.count:
                break
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_tables(args) -> int:
    from repro.experiments.common import format_table

    if args.artifact == "table1":
        from repro.experiments.table1 import run_table1

        tops = run_table1(scale=args.scale, seed=args.seed)
        print(format_table(
            ["Category", "Top Tokens"],
            [[c, ", ".join(t)] for c, t in sorted(tops.items())],
        ))
    elif args.artifact == "table2":
        from repro.experiments.table2 import run_table2

        res = run_table2(scale=args.scale, seed=args.seed)
        print(format_table(
            ["Category", "generated", "paper"],
            [[c.value, res.generated.get(c, 0), res.paper[c]]
             for c in res.paper],
        ))
    elif args.artifact == "table3":
        from repro.experiments.table3 import PAPER_TABLE3, run_table3

        rows = run_table3()
        print(format_table(
            ["Model", "time s", "paper s", "msgs/h"],
            [[r.model, r.inference_time_s, PAPER_TABLE3[r.model][0],
              int(r.messages_per_hour)] for r in rows],
        ))
    else:  # fig3
        from repro.experiments.classifiers import run_classifier_comparison
        from repro.experiments.common import ExperimentData

        data = ExperimentData(scale=args.scale, seed=args.seed)
        rows = run_classifier_comparison(data)
        print(format_table(
            ["Classifier", "weighted F1", "train s", "test s"],
            [[r.name, r.weighted_f1, r.train_s, r.test_s] for r in rows],
        ))
    return 0


def _start_ops(args):
    """Started :class:`OpsServer` from ``--metrics-port``, or None."""
    port = getattr(args, "metrics_port", None)
    if port is None:
        return None
    from repro.obs import OpsServer, SloTracker, default_slos, load_slo_file

    slo_path = getattr(args, "slo_file", None)
    try:
        targets = load_slo_file(slo_path) if slo_path else default_slos()
    except (OSError, ValueError, KeyError) as e:
        raise SystemExit(f"{slo_path}: bad SLO file: {e}")
    server = OpsServer(port=port, slo_tracker=SloTracker(targets)).start()
    print(
        f"ops: serving /metrics /health /trace at {server.url}",
        file=sys.stderr,
    )
    return server


def _build_injector(args):
    """FaultInjector from ``--fault-plan``, or None."""
    from repro.faults import FaultInjector, FaultPlan

    plan_path = getattr(args, "fault_plan", None)
    if plan_path is None:
        return None
    try:
        plan = FaultPlan.from_file(plan_path)
    except (OSError, ValueError, KeyError) as e:
        raise SystemExit(f"{plan_path}: bad fault plan: {e}")
    return FaultInjector(plan)


def _run_simulation(args):
    """Shared stream-simulation setup for simulate/assist.

    Returns ``(cluster, report, injector)``; the injector is ``None``
    unless ``--fault-plan`` armed one.  With ``--wal-dir`` the run is
    durable: state goes through :mod:`repro.durability` and a killed
    run can be resumed with ``repro-syslog recover``.
    """
    from repro.core.serialize import load_pipeline
    from repro.core.taxonomy import Category
    from repro.datagen.workload import (
        offered_load_events,
        standard_simulation_events,
    )
    from repro.stream.tivan import ClassifierStage, TivanCluster

    injector = _build_injector(args)
    duration = getattr(args, "duration", 600.0)
    rate = getattr(args, "rate", 5.0)
    incident = bool(getattr(args, "incident", True))
    control_policy = _control_policy(args)
    load_profile = getattr(args, "load_profile", "standard")

    wal_dir = getattr(args, "wal_dir", None)
    if wal_dir is not None:
        from repro.durability import SimConfig, resume_simulation

        if (wal_dir / "meta.json").exists():
            raise SystemExit(
                f"{wal_dir}: already holds a durable run — resume it "
                f"with `repro-syslog recover --wal-dir {wal_dir}`"
            )
        if getattr(args, "broker_partitions", None) is not None:
            raise SystemExit(
                "--broker-partitions is incompatible with --wal-dir: "
                "durable broker runs need the per-host partition layout"
            )
        SimConfig(
            duration_s=duration, rate=rate, seed=args.seed,
            incident=incident, fsync=args.fsync,
            checkpoint_every_s=args.checkpoint_every,
            overflow=getattr(args, "overflow", "block"),
            flush_retry_limit=getattr(args, "flush_retries", None),
            degrade_backlog=getattr(args, "degrade_backlog", None),
            model_dir=str(args.model_dir),
            store_nodes=getattr(args, "store_nodes", None),
            store_replicas=getattr(args, "replicas", 1),
            write_quorum=getattr(args, "write_quorum", None),
            read_quorum=getattr(args, "read_quorum", None),
            via_broker=bool(getattr(args, "via_broker", False)),
            n_consumers=getattr(args, "consumers", 1),
            trace_sample=getattr(args, "trace_sample", 0.0),
            trace_seed=getattr(args, "trace_seed", 0),
            template_cache=(
                getattr(args, "cache_size", 4096)
                if getattr(args, "template_cache", False)
                else None
            ),
            load_profile=load_profile,
            load_swing=getattr(args, "load_swing", 10.0),
            # the policy rides meta.json; every resume rebinds it and
            # restores the journaled controller state (WAL "control"
            # records), so crashed control runs keep their setpoints
            control=(
                control_policy.to_dict()
                if control_policy is not None else None
            ),
        ).save(wal_dir)
        cluster, config, journal = resume_simulation(wal_dir, injector=injector)
        report = cluster.run(duration + 30.0)
        journal.wal.close()
        return cluster, report, injector

    pipe = load_pipeline(args.model_dir)
    _attach_cache(pipe, args)
    if injector is not None:
        pipe.fault_injector = injector
    if load_profile == "standard":
        events = standard_simulation_events(
            duration_s=duration, background_rate=rate,
            seed=args.seed, incident=incident,
        )
    else:
        events = offered_load_events(
            profile=load_profile, duration_s=duration, base_rate=rate,
            swing=getattr(args, "load_swing", 10.0), seed=args.seed,
        )
    cluster = TivanCluster(
        overflow=getattr(args, "overflow", "block"),
        flush_retry_limit=getattr(args, "flush_retries", None),
        degrade_backlog=getattr(args, "degrade_backlog", None),
        fault_injector=injector,
        store_nodes=getattr(args, "store_nodes", None),
        store_replicas=getattr(args, "replicas", 1),
        write_quorum=getattr(args, "write_quorum", None),
        read_quorum=getattr(args, "read_quorum", None),
        via_broker=bool(getattr(args, "via_broker", False)),
        broker_partitions=getattr(args, "broker_partitions", None),
        n_consumers=getattr(args, "consumers", 1),
        trace_sample=getattr(args, "trace_sample", 0.0),
        trace_seed=getattr(args, "trace_seed", 0),
    )
    cluster.load_events(events)

    def cheap_batch(texts):
        # degraded path: no model inference — everything fails closed
        # to UNIMPORTANT so the queue keeps draining
        return [Category.UNIMPORTANT for _ in texts]

    cluster.attach_classifier(ClassifierStage(
        service_time_s=max(pipe.mean_service_time, 1e-4),
        classify_batch=lambda texts: [
            r.category for r in pipe.classify_batch(texts)
        ],
        batch_size=64,
        cheap_classify_batch=cheap_batch,
    ))
    if control_policy is not None:
        try:
            cluster.attach_controller(control_policy)
        except ValueError as e:
            raise SystemExit(f"control policy not bindable: {e}")
    report = cluster.run(duration + 30.0)
    return cluster, report, injector


def _cmd_simulate(args) -> int:
    from repro.monitor.dashboard import render_overview

    server = _start_ops(args)
    try:
        cluster, report, injector = _run_simulation(args)
    finally:
        # the ops thread exists to be scraped *during* the run; stop it
        # before printing so a crash mid-simulation also tears it down
        if server is not None:
            server.stop()
    print(
        f"produced={report.produced} indexed={report.indexed} "
        f"classified={report.classified} backlog={report.final_backlog} "
        f"keeping_up={report.keeping_up}"
    )
    stats = cluster.forwarder.stats
    if injector is not None or report.degrade_transitions:
        print(
            f"faults: injected={dict(injector.fire_counts()) if injector else {}} "
            f"failed_flushes={stats.failed_flushes} "
            f"abandoned={stats.abandoned_messages} "
            f"evicted={stats.evicted} "
            f"dead_lettered={len(cluster.forwarder.dead_letters)}"
        )
    if report.degrade_transitions:
        print(
            f"degraded: classified_degraded={report.classified_degraded} "
            f"transitions={report.degrade_transitions}"
        )
    if cluster.controller is not None:
        print(
            f"control: ticks={report.control_ticks} "
            f"actuations={report.control_actuations} "
            f"flips={report.control_flips} "
            f"worker_seconds={report.control_worker_seconds:.1f} "
            f"brownout_level={report.brownout_level} "
            f"brownout_changes={report.brownout_changes} "
            f"shed={report.shed_messages}"
        )
    if getattr(args, "template_cache", False):
        import os

        from repro.obs import wellknown

        worker = str(os.getpid())
        hits = wellknown.template_cache_hits().value(worker=worker)
        misses = wellknown.template_cache_misses().value(worker=worker)
        total = hits + misses
        print(
            f"template cache: hits={int(hits)} misses={int(misses)} "
            f"hit_rate={hits / total if total else 0.0:.3f} "
            f"evictions="
            f"{int(wellknown.template_cache_evictions().value(worker=worker))}"
        )
    if cluster.broker is not None:
        print(
            f"broker: partitions={report.broker_partitions} "
            f"published={report.broker_published} "
            f"publish_refused={report.broker_publish_refused} "
            f"polled={report.broker_polled} lag={report.broker_lag} "
            f"commits_lost={report.broker_commits_lost} "
            f"stalls={report.broker_partition_stalls}"
        )
    if hasattr(cluster.store, "node_health"):
        rows = cluster.store.node_health()
        up = sum(1 for r in rows if r["up"])
        print(
            f"store: nodes={len(rows)} up={up} "
            f"W={cluster.store.write_quorum} R={cluster.store.read_quorum} "
            f"hints_pending={cluster.store.hints_pending}"
        )
    if cluster.journal is not None:
        from repro.durability import reconcile

        print(reconcile(cluster.journal.state, report.produced).render())
    print()
    print(render_overview(cluster.store, interval_s=max(args.duration / 12, 1.0)))
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    return 0


def _cmd_assist(args) -> int:
    from repro.llm.assistant import AdminAssistant
    from repro.llm.models import model_spec

    args.duration, args.rate, args.incident = 600.0, 5.0, True
    cluster, _report, _injector = _run_simulation(args)
    assistant = AdminAssistant(spec=model_spec(args.llm))
    if args.task == "summary":
        reply = assistant.summarize_status(cluster.store)
    elif args.task == "explain":
        reply = assistant.explain_node(cluster.store, args.host)
    else:
        reply = assistant.draft_admin_reply(args.question, cluster.store, args.host)
    print(reply.text)
    print(f"\n[simulated inference cost: {reply.timing.total_s:.1f}s "
          f"on {reply.timing.n_gpus} GPU(s)]")
    return 0


def _cmd_recover(args) -> int:
    from repro.durability import SimConfig, reconcile, resume_simulation

    overrides = {
        "store_nodes": getattr(args, "store_nodes", None),
        "store_replicas": getattr(args, "replicas", None),
        "write_quorum": getattr(args, "write_quorum", None),
        "read_quorum": getattr(args, "read_quorum", None),
    }
    try:
        if any(v is not None for v in overrides.values()):
            # persist the new topology so later resumes agree with it
            config = SimConfig.load(args.wal_dir)
            for name, value in overrides.items():
                if value is not None:
                    setattr(config, name, value)
            config.save(args.wal_dir)
        cluster, config, journal = resume_simulation(args.wal_dir)
    except FileNotFoundError as e:
        raise SystemExit(str(e))
    report = cluster.run(max(config.duration_s + 30.0, cluster.engine.now))
    conservation = reconcile(journal.state, report.produced)
    journal.wal.close()
    print(
        f"recovered: scanned={journal.wal.recovery.records} WAL records "
        f"(truncated {journal.wal.recovery.truncated_bytes} torn bytes)"
    )
    print(
        f"produced={report.produced} indexed={report.indexed} "
        f"classified={report.classified} backlog={report.final_backlog} "
        f"keeping_up={report.keeping_up}"
    )
    print(conservation.render())
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    return 0 if conservation.ok else 1


def _cmd_listen(args) -> int:
    """Real-socket intake: listener → broker → consumer → store.

    Binds the asyncio listener on loopback (or ``--host``), publishes
    accepted messages into a :class:`LogBroker`, and drains a consumer
    loop into an in-process :class:`LogStore`.  Stops on ``--duration``
    seconds, after ``--max-messages`` received lines, or Ctrl-C; then
    prints the full accounting.
    """
    import asyncio
    import json

    from repro.ingest import LogBroker, SyslogListener
    from repro.stream.opensearch import LogStore

    if args.udp_port < 0 and args.tcp_port < 0:
        raise SystemExit("at least one of --udp-port/--tcp-port must be enabled")

    sampler = None
    m_e2e = None
    if args.trace_sample > 0.0:
        from repro.obs import TraceSampler, wellknown

        sampler = TraceSampler(args.trace_sample, seed=args.trace_seed)
        m_e2e = wellknown.e2e_latency_seconds().labels()

    pipe = None
    if args.model_dir is not None:
        from repro.core.serialize import load_pipeline

        pipe = load_pipeline(args.model_dir)
        _attach_cache(pipe, args)

    tenant_quota = None
    rate_limit = args.rate_limit
    if getattr(args, "per_tenant", False):
        if args.rate_limit is None:
            raise SystemExit(
                "--per-tenant needs --rate-limit for the aggregate "
                "admit rate the tenants share"
            )
        from repro.ingest import DeficitRoundRobin

        # the fair-share quota replaces the global bucket: same
        # aggregate budget, dealt round-robin across host/app keys
        tenant_quota = DeficitRoundRobin(args.rate_limit, args.burst)
        rate_limit = None

    broker = LogBroker(n_partitions=args.partitions)
    store = LogStore()
    listener = SyslogListener(
        broker,
        host=args.host,
        udp_port=None if args.udp_port < 0 else args.udp_port,
        tcp_port=None if args.tcp_port < 0 else args.tcp_port,
        rate_limit=rate_limit,
        burst=args.burst,
        tenant_quota=tenant_quota,
        max_line_bytes=args.max_line_bytes,
        trace_sampler=sampler,
    )
    control_policy = _control_policy(args, listen=True)
    controller = None
    if control_policy is not None:
        from repro.control import Controller, ListenerRateActuator

        controller = Controller(control_policy)
        for lever_policy in control_policy.levers:
            if lever_policy.name != "listener_rate":
                raise SystemExit(
                    f"listen mode can only bind the 'listener_rate' "
                    f"lever, policy names {lever_policy.name!r}"
                )
            # the admission valve is the global bucket or, under
            # --per-tenant, the fair-share quota (same rate/set_rate
            # surface — the lever retunes the aggregate budget)
            valve = listener.bucket or listener.quota
            if valve is None:
                raise SystemExit(
                    "the 'listener_rate' lever needs --rate-limit to "
                    "create the admission valve it actuates"
                )
            controller.bind(lever_policy.name, ListenerRateActuator(valve))
    server = _start_ops(args)

    async def serve() -> None:
        await listener.start()
        ports = {
            "udp": listener.udp_address[1] if listener.udp_address else None,
            "tcp": listener.tcp_address[1] if listener.tcp_address else None,
            "metrics": server.port if server is not None else None,
        }
        print(f"listening: udp={ports['udp']} tcp={ports['tcp']} "
              f"metrics={ports['metrics']}")
        if args.port_file is not None:
            args.port_file.write_text(json.dumps(ports) + "\n")
        loop = asyncio.get_running_loop()
        deadline = (
            loop.time() + args.duration if args.duration is not None else None
        )
        def consume() -> None:
            import time

            from repro.obs import record_hop

            records = broker.poll("cli", "cli-0", max_records=1 << 20)
            high: dict[str, int] = {}
            doc_ids: list[int] = []
            for record in records:
                doc_ids.append(store.index(record.message))
                if record.ctx is not None:
                    # no forwarder on this path — the consumer loop
                    # itself is the poll and index hops
                    now = time.time()
                    hop = record_hop(record.ctx, "broker.poll", now,
                                     group="cli")
                    record_hop(hop, "store.index", now, docs=1)
                    m_e2e.observe(now - record.ctx.origin_s)
                high[record.partition] = record.offset + 1
            if pipe is not None and records:
                texts = [record.message.text for record in records]
                for doc_id, result in zip(doc_ids, pipe.classify_batch(texts)):
                    store.set_category(doc_id, result.category)
            for partition, next_offset in high.items():
                broker.commit("cli", partition, next_offset)

        # batched listener counters flush on a timer too, so /metrics
        # scrapes see trickle traffic, not just every-1024th-line syncs
        next_sync = loop.time() + 1.0
        next_control = (
            loop.time() + controller.policy.tick_every_s
            if controller is not None else None
        )
        try:
            while True:
                await asyncio.sleep(0.05)
                consume()
                if loop.time() >= next_sync:
                    listener.sync_metrics()
                    next_sync = loop.time() + 1.0
                if next_control is not None and loop.time() >= next_control:
                    # counters must be registry-fresh before the read
                    listener.sync_metrics()
                    controller.tick(loop.time())
                    next_control = (
                        loop.time() + controller.policy.tick_every_s
                    )
                if deadline is not None and loop.time() >= deadline:
                    break
                if (
                    args.max_messages is not None
                    and listener.stats.received >= args.max_messages
                ):
                    break
        except KeyboardInterrupt:
            pass
        finally:
            await listener.stop()
            consume()

    broker.subscribe("cli", "cli-0")
    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    finally:
        if server is not None:
            server.stop()
    s = listener.stats
    print(
        f"received={s.received} (udp={s.received_udp} tcp={s.received_tcp}) "
        f"accepted={s.accepted} shed={s.shed} oversize={s.oversize} "
        f"parse_errors={s.parse_errors} publish_refused={s.publish_refused} "
        f"accounted={s.accounted()}"
    )
    if listener.quota is not None:
        print(
            f"tenants: active={len(listener.quota)} "
            f"tenant_shed={s.tenant_shed}"
        )
    print(
        f"broker: partitions={len(broker.partitions)} "
        f"published={broker.stats.published} polled={broker.stats.polled} "
        f"lag={broker.lag('cli')} indexed={len(store)}"
    )
    if pipe is not None:
        line = f"classified={pipe.n_classified}"
        if pipe.template_cache is not None:
            st = pipe.template_cache.stats()
            line += (
                f" cache_hits={st['hits']} cache_misses={st['misses']} "
                f"hit_rate={st['hit_rate']:.3f}"
            )
        print(line)
    if controller is not None:
        cs = controller.stats()
        valve = listener.bucket or listener.quota
        print(
            f"control: ticks={cs['ticks']} "
            f"actuations={sum(cs['actuations'].values())} "
            f"flips={sum(cs['flips'].values())} "
            f"rate={valve.rate:.0f}"
        )
    if len(listener.dead_letters):
        print(f"dead_letters={len(listener.dead_letters)}")
    return 0


def _print_trace_index(index: list, *, limit: int) -> None:
    if not index:
        print("(no traces)")
        return
    shown = sorted(index, key=lambda r: (-r["hops"], r["trace_id"]))[:limit]
    print(f"{len(index)} trace(s); showing {len(shown)} "
          f"(pass a trace id for its waterfall)")
    for row in shown:
        print(f"  {row['trace_id']}  hops={row['hops']} "
              f"span={row['span_s']:.3f}s  {' > '.join(row['names'])}")


def _cmd_trace(args) -> int:
    """Render trace waterfalls from a checkpoint or a live ops server."""
    from repro.obs import Tracer, render_waterfall

    if (args.wal_dir is None) == (args.url is None):
        raise SystemExit("exactly one of --wal-dir/--url is required")

    if args.url is not None:
        base = args.url.rstrip("/")
        if args.trace_id:
            body = _http_get(f"{base}/trace/{args.trace_id}")
            print(body, end="" if body.endswith("\n") else "\n")
        else:
            _print_trace_index(json.loads(_http_get(f"{base}/trace")),
                               limit=args.limit)
        return 0

    from repro.durability import load_latest_checkpoint

    payload, path = load_latest_checkpoint(args.wal_dir)
    if payload is None:
        raise SystemExit(f"{args.wal_dir}: no valid checkpoint in directory")
    spans = payload.get("spans") or []
    if not spans:
        raise SystemExit(
            f"{path}: checkpoint carries no trace spans "
            f"(simulate with --trace-sample > 0)"
        )
    tracer = Tracer()
    tracer.adopt(spans)
    traces = tracer.traces()
    if args.trace_id:
        if args.trace_id not in traces:
            raise SystemExit(f"trace {args.trace_id}: not found in {path}")
        print(render_waterfall(traces[args.trace_id]))
        return 0
    index = []
    for trace_id, trace_spans in sorted(traces.items()):
        starts = [s.start_s for s in trace_spans]
        ends = [s.end_s if s.end_s is not None else s.start_s
                for s in trace_spans]
        index.append({
            "trace_id": trace_id,
            "hops": len(trace_spans),
            "names": sorted({s.name for s in trace_spans}),
            "span_s": max(ends) - min(starts),
        })
    _print_trace_index(index, limit=args.limit)
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.report import write_report

    path = write_report(args.out, scale=args.scale, seed=args.seed)
    print(f"wrote experiment report to {path}")
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "train": _cmd_train,
    "classify": _cmd_classify,
    "evaluate": _cmd_evaluate,
    "metrics": _cmd_metrics,
    "tables": _cmd_tables,
    "simulate": _cmd_simulate,
    "listen": _cmd_listen,
    "trace": _cmd_trace,
    "recover": _cmd_recover,
    "assist": _cmd_assist,
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro-syslog metrics f | head`);
        # the downstream closing early is not an error worth a traceback
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
