"""Bounded LRU memo of classify results per template.

Syslog is template + slots, so once ``"link cn<num> down"`` has been
classified there is nothing left for the model to say about the next
ten thousand lines with the same shape — only the slot values differ,
and masking erases those before the model ever sees them.
:class:`TemplateCache` memoizes the pipeline's final ``(category,
confidence)`` per masked template so repeated shapes cost a dict lookup
instead of the vectorize→predict path.

Correctness rules (enforced by ``ClassificationPipeline`` and proven by
the hypothesis wall in ``tests/test_template_cache.py``):

- the key is the exact masked text
  (:class:`~repro.textproc.fingerprint.TemplateFingerprinter`), so a
  hit is *guaranteed* to reproduce what the model stage would compute;
- blacklist-filtered and quarantined results are never cached, and
  poison-injected messages bypass the cache entirely in both
  directions;
- the cache carries the pipeline *generation* it was filled under;
  ``sync_generation`` clears it atomically when ``fit``/retrain bumps
  the pipeline, so a refit can never serve stale predictions.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["TemplateCache"]


class TemplateCache:
    """Bounded LRU ``template key → (category, confidence)`` memo.

    Parameters
    ----------
    max_entries:
        Capacity bound.  ``0`` is a valid, fully disabled cache: every
        lookup misses and nothing is ever stored.  ``1`` keeps exactly
        the most recently used template.

    Attributes
    ----------
    hits, misses, evictions, invalidations:
        Monotonic counters: served lookups, failed lookups, LRU
        evictions, and generation-change clears.  Mirrored into the
        ``repro_template_cache_*`` metric families by the pipeline.
    generation:
        The pipeline generation the current entries were computed
        under.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        self.max_entries = max_entries
        self.generation = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._data: OrderedDict[str, tuple] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def sync_generation(self, generation: int) -> None:
        """Adopt ``generation``, clearing every entry if it changed.

        Called by the pipeline before any lookup, so a ``fit`` between
        batches invalidates atomically: the first post-refit batch sees
        an empty cache, never a stale prediction.
        """
        if generation != self.generation:
            if self._data:
                self.invalidations += 1
                self._data.clear()
            self.generation = generation

    def get(self, key: str):
        """The memoized value for ``key``, or ``None``; counts hit/miss."""
        entry = self._data.get(key) if self.max_entries else None
        if entry is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: str, value: tuple) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        if self.max_entries == 0:
            return
        data = self._data
        if key in data:
            data[key] = value
            data.move_to_end(key)
            return
        if len(data) >= self.max_entries:
            data.popitem(last=False)
            self.evictions += 1
        data[key] = value

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache so far."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict[str, int]:
        """Snapshot of the monotonic counters (for delta accounting)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

    def stats(self) -> dict[str, float]:
        """Human/CLI-facing summary of cache effectiveness."""
        return {
            "size": len(self._data),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }
