"""Model registry.

§7's first goal is "deploying our trained models on the new data we
stored in our collection system".  The registry gives deployments a
place to version fitted pipelines, record their evaluation metrics, and
atomically promote one to "active" — so the stream simulator (and a
real deployment) always has exactly one serving model while candidates
are evaluated offline.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelRegistry", "ModelRecord"]


@dataclass(frozen=True)
class ModelRecord:
    """One registered model version."""

    name: str
    version: int
    model: object
    metrics: dict
    tags: tuple[str, ...] = ()


class ModelRegistry:
    """Versioned store of fitted models with a single active pointer."""

    def __init__(self) -> None:
        self._versions: dict[str, list[ModelRecord]] = {}
        self._active: dict[str, int] = {}

    def register(
        self,
        name: str,
        model: object,
        *,
        metrics: dict | None = None,
        tags: tuple[str, ...] = (),
    ) -> ModelRecord:
        """Add a new version of ``name``; returns the record."""
        versions = self._versions.setdefault(name, [])
        record = ModelRecord(
            name=name,
            version=len(versions) + 1,
            model=model,
            metrics=dict(metrics or {}),
            tags=tags,
        )
        versions.append(record)
        return record

    def promote(self, name: str, version: int) -> None:
        """Make ``version`` of ``name`` the active model.

        Raises
        ------
        KeyError
            Unknown model name or version.
        """
        versions = self._versions.get(name)
        if not versions or not 1 <= version <= len(versions):
            raise KeyError(f"no version {version} of model {name!r}")
        self._active[name] = version

    def active(self, name: str) -> ModelRecord:
        """The active record for ``name`` (latest if never promoted).

        Raises
        ------
        KeyError
            No versions registered under ``name``.
        """
        versions = self._versions.get(name)
        if not versions:
            raise KeyError(f"no model registered as {name!r}")
        version = self._active.get(name, len(versions))
        return versions[version - 1]

    def history(self, name: str) -> tuple[ModelRecord, ...]:
        """All versions of ``name``, oldest first."""
        return tuple(self._versions.get(name, ()))

    def names(self) -> tuple[str, ...]:
        """Registered model names."""
        return tuple(sorted(self._versions))

    def best(self, name: str, metric: str, higher_is_better: bool = True) -> ModelRecord:
        """Version of ``name`` with the best recorded ``metric``.

        Raises
        ------
        KeyError
            If no version records that metric.
        """
        candidates = [r for r in self.history(name) if metric in r.metrics]
        if not candidates:
            raise KeyError(f"no version of {name!r} records metric {metric!r}")
        return (max if higher_is_better else min)(
            candidates, key=lambda r: r.metrics[metric]
        )
