"""Model persistence: save and load fitted pipelines without pickle.

§7's first goal is "deploying our trained models on the new data we
stored in our collection system" — which needs durable, inspectable
model artifacts.  Pickle is a code-execution hazard for artifacts that
cross trust boundaries (a model trained on one enclave, deployed on
another), so serialization here is explicit: a JSON manifest for
structure/hyperparameters plus one ``.npz`` for arrays.

Supported estimators: the whole Figure 3 roster (linear family, naive
Bayes, centroid, kNN, random forest) and the TF-IDF vectorizer; a
:class:`~repro.core.pipeline.ClassificationPipeline` combining them is
saved as one directory.
"""

from __future__ import annotations

import json
import zipfile
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.core.pipeline import ClassificationPipeline
from repro.ml.bayes import ComplementNB, MultinomialNB
from repro.ml.centroid import NearestCentroid
from repro.ml.forest import RandomForestClassifier, _Tree
from repro.ml.knn import KNeighborsClassifier
from repro.ml.linear import LogisticRegression, RidgeClassifier
from repro.ml.sgd import SGDClassifier
from repro.ml.svm import LinearSVC
from repro.textproc.tfidf import HashingVectorizer, TfidfVectorizer
from repro.textproc.vocab import Vocabulary

__all__ = [
    "PipelineLoadError",
    "save_pipeline",
    "load_pipeline",
    "save_classifier",
    "load_classifier",
]

_FORMAT_VERSION = 1


class PipelineLoadError(ValueError):
    """A saved model artifact is missing, truncated, or corrupt.

    Carries *which file* failed and *why*, so a bad ``--model-dir``
    reads as "fix this artifact", not a bare ``KeyError`` deep inside
    numpy.  Subclasses :class:`ValueError` so existing format-version
    handling keeps working.
    """

    def __init__(self, path: str | Path, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(f"{self.path}: {reason}")


@contextmanager
def _loading(path: Path, what: str):
    """Translate load-time failures into :class:`PipelineLoadError`."""
    try:
        yield
    except PipelineLoadError:
        raise
    except FileNotFoundError as e:
        missing = e.filename or path
        raise PipelineLoadError(
            missing, f"missing {what} file — is this a saved model directory?"
        ) from e
    except KeyError as e:
        raise PipelineLoadError(path, f"{what} lacks required key {e}") from e
    except json.JSONDecodeError as e:
        raise PipelineLoadError(path, f"{what} is not valid JSON: {e}") from e
    except zipfile.BadZipFile as e:
        raise PipelineLoadError(
            path, f"{what} is truncated or corrupt: {e}"
        ) from e
    except (OSError, ValueError) as e:
        raise PipelineLoadError(path, f"cannot load {what}: {e}") from e

# estimators whose state is (classes_, coef_, intercept_) + init params
_LINEAR_FAMILY = {
    "LogisticRegression": LogisticRegression,
    "RidgeClassifier": RidgeClassifier,
    "LinearSVC": LinearSVC,
    "SGDClassifier": SGDClassifier,
}
_INIT_PARAMS: dict[str, tuple[str, ...]] = {
    "LogisticRegression": ("C", "max_iter", "tol", "fit_intercept"),
    "RidgeClassifier": ("alpha", "max_iter"),
    "LinearSVC": ("C", "solver", "max_iter", "tol", "seed"),
    "SGDClassifier": ("loss", "alpha", "epochs", "batch_size", "eta0", "power_t", "seed"),
    "ComplementNB": ("alpha", "norm"),
    "MultinomialNB": ("alpha",),
    "NearestCentroid": ("metric",),
    "KNeighborsClassifier": ("n_neighbors", "metric", "batch_rows"),
    "RandomForestClassifier": (
        "n_estimators", "max_depth", "min_samples_split",
        "min_samples_leaf", "max_features", "bootstrap", "seed",
    ),
}


def _params_of(clf) -> dict:
    return {p: getattr(clf, p) for p in _INIT_PARAMS[type(clf).__name__]}


def save_classifier(clf, directory: str | Path) -> None:
    """Persist a fitted classifier into ``directory``.

    Raises
    ------
    TypeError
        Unsupported estimator type.
    RuntimeError
        Estimator not fitted.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name = type(clf).__name__
    if name not in _INIT_PARAMS:
        raise TypeError(f"cannot serialize estimator of type {name}")
    if getattr(clf, "classes_", None) is None:
        raise RuntimeError(f"{name} is not fitted")
    manifest = {
        "format_version": _FORMAT_VERSION,
        "type": name,
        "params": _params_of(clf),
        "classes": np.asarray(clf.classes_).tolist(),
    }
    arrays: dict[str, np.ndarray] = {}
    if name in _LINEAR_FAMILY:
        arrays["coef"] = clf.coef_
        arrays["intercept"] = clf.intercept_
    elif name in ("ComplementNB", "MultinomialNB"):
        arrays["feature_log_prob"] = clf.feature_log_prob_
        arrays["class_log_prior"] = clf.class_log_prior_
    elif name == "NearestCentroid":
        arrays["centroids"] = clf.centroids_
    elif name == "KNeighborsClassifier":
        arrays["yi"] = clf._yi
        arrays["sq"] = clf._sq
        manifest["sparse_X"] = sp.issparse(clf._X)
        if sp.issparse(clf._X):
            sp.save_npz(directory / "knn_X.npz", clf._X.tocsr())
        else:
            arrays["X"] = np.asarray(clf._X)
    elif name == "RandomForestClassifier":
        manifest["n_trees"] = len(clf.trees_)
        manifest["n_features"] = clf._n_features
        for t, tree in enumerate(clf.trees_):
            arrays[f"t{t}_feature"] = tree.feature
            arrays[f"t{t}_threshold"] = tree.threshold
            arrays[f"t{t}_left"] = tree.left
            arrays[f"t{t}_right"] = tree.right
            arrays[f"t{t}_value"] = tree.value
    (directory / "manifest.json").write_text(json.dumps(manifest, indent=2))
    np.savez_compressed(directory / "arrays.npz", **arrays)


def load_classifier(directory: str | Path):
    """Load a classifier saved by :func:`save_classifier`.

    Raises
    ------
    PipelineLoadError
        Missing/truncated/corrupt artifact files, a manifest lacking a
        required key, an unknown format version, or an unknown
        estimator type — always naming the offending path and reason.
    """
    directory = Path(directory)
    with _loading(directory / "manifest.json", "classifier manifest"):
        manifest = json.loads((directory / "manifest.json").read_text())
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported model format version "
                f"{manifest.get('format_version')!r}"
            )
        name = manifest["type"]
        classes = np.asarray(manifest["classes"])
    with _loading(directory / "arrays.npz", "classifier arrays"):
        arrays = np.load(directory / "arrays.npz", allow_pickle=False)
        return _rebuild_classifier(name, manifest, arrays, classes, directory)


def _rebuild_classifier(name, manifest, arrays, classes, directory):
    if name in _LINEAR_FAMILY:
        clf = _LINEAR_FAMILY[name](**manifest["params"])
        clf.classes_ = classes
        clf.coef_ = arrays["coef"]
        clf.intercept_ = arrays["intercept"]
        return clf
    if name in ("ComplementNB", "MultinomialNB"):
        cls = ComplementNB if name == "ComplementNB" else MultinomialNB
        clf = cls(**manifest["params"])
        clf.classes_ = classes
        clf.feature_log_prob_ = arrays["feature_log_prob"]
        clf.class_log_prior_ = arrays["class_log_prior"]
        return clf
    if name == "NearestCentroid":
        clf = NearestCentroid(**manifest["params"])
        clf.classes_ = classes
        clf.centroids_ = arrays["centroids"]
        return clf
    if name == "KNeighborsClassifier":
        clf = KNeighborsClassifier(**manifest["params"])
        clf.classes_ = classes
        clf._yi = arrays["yi"]
        clf._sq = arrays["sq"]
        clf._X = (
            sp.load_npz(directory / "knn_X.npz")
            if manifest["sparse_X"]
            else arrays["X"]
        )
        return clf
    if name == "RandomForestClassifier":
        params = dict(manifest["params"])
        clf = RandomForestClassifier(**params)
        clf.classes_ = classes
        clf._n_features = manifest["n_features"]
        clf.trees_ = [
            _Tree(
                feature=arrays[f"t{t}_feature"],
                threshold=arrays[f"t{t}_threshold"],
                left=arrays[f"t{t}_left"],
                right=arrays[f"t{t}_right"],
                value=arrays[f"t{t}_value"],
            )
            for t in range(manifest["n_trees"])
        ]
        return clf
    raise ValueError(f"unknown estimator type {name!r} in manifest")


def _save_vectorizer(vec: TfidfVectorizer, directory: Path) -> None:
    if isinstance(vec, HashingVectorizer):
        # stateless: hyperparameters are the whole artifact (no
        # vocabulary, no IDF array)
        manifest = {
            "kind": "hashing",
            "normalize": vec.normalize,
            "lemmatize": vec.lemmatize,
            "sublinear_tf": vec.sublinear_tf,
            "l2_normalize": vec.l2_normalize,
            "n_features": vec.n_features,
        }
        (directory / "vectorizer.json").write_text(json.dumps(manifest))
        return
    if vec.vocabulary is None or vec.idf_ is None:
        raise RuntimeError("vectorizer is not fitted")
    manifest = {
        "normalize": vec.normalize,
        "lemmatize": vec.lemmatize,
        "sublinear_tf": vec.sublinear_tf,
        "min_df": vec.min_df,
        "max_df_ratio": vec.max_df_ratio,
        "max_features": vec.max_features,
        "l2_normalize": vec.l2_normalize,
        "vocabulary": list(vec.vocabulary.tokens),
    }
    (directory / "vectorizer.json").write_text(json.dumps(manifest))
    np.savez_compressed(directory / "vectorizer.npz", idf=vec.idf_)


def _load_vectorizer(directory: Path) -> TfidfVectorizer:
    with _loading(directory / "vectorizer.json", "vectorizer manifest"):
        manifest = json.loads((directory / "vectorizer.json").read_text())
        kind = manifest.pop("kind", "tfidf")
        if kind == "hashing":
            return HashingVectorizer(**manifest)
        if kind != "tfidf":
            raise ValueError(f"unknown vectorizer kind {kind!r}")
        vocab_tokens = manifest.pop("vocabulary")
        vec = TfidfVectorizer(**manifest)
        vec.vocabulary = Vocabulary(tuple(vocab_tokens))
    with _loading(directory / "vectorizer.npz", "vectorizer arrays"):
        vec.idf_ = np.load(directory / "vectorizer.npz")["idf"]
    return vec


def save_pipeline(pipe: ClassificationPipeline, directory: str | Path) -> None:
    """Persist a fitted pipeline (vectorizer + classifier) to a directory.

    The blacklist pre-filter, when present, is saved as its exemplar
    list.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if not pipe._fitted:
        raise RuntimeError("pipeline is not fitted")
    _save_vectorizer(pipe.vectorizer, directory)
    save_classifier(pipe.classifier, directory / "classifier")
    meta = {"has_blacklist": pipe.blacklist is not None,
            "blacklist_coverage": pipe.blacklist_coverage}
    if pipe.blacklist is not None:
        meta["blacklist_threshold"] = pipe.blacklist.threshold
        meta["blacklist_premask"] = pipe.blacklist.premask
        (directory / "blacklist.json").write_text(
            json.dumps([b.exemplar for b in pipe.blacklist.store.buckets])
        )
    (directory / "pipeline.json").write_text(json.dumps(meta))


def load_pipeline(directory: str | Path) -> ClassificationPipeline:
    """Load a pipeline saved by :func:`save_pipeline`, ready to classify.

    Raises
    ------
    PipelineLoadError
        Any missing, truncated, or corrupt artifact under
        ``directory`` — the error names the file and the reason.
    """
    directory = Path(directory)
    with _loading(directory / "pipeline.json", "pipeline metadata"):
        meta = json.loads((directory / "pipeline.json").read_text())
        blacklist = None
        if meta["has_blacklist"]:
            from repro.buckets.blacklist import BlacklistFilter

            blacklist = BlacklistFilter(
                threshold=meta["blacklist_threshold"],
                premask=meta["blacklist_premask"],
            )
            exemplars = json.loads(
                (directory / "blacklist.json").read_text()
            )
            for exemplar in exemplars:
                blacklist.store.add(exemplar)
    pipe = ClassificationPipeline(
        vectorizer=_load_vectorizer(directory),
        classifier=load_classifier(directory / "classifier"),
        blacklist=blacklist,
        blacklist_coverage=meta.get("blacklist_coverage", 0.9),
    )
    pipe._fitted = True
    return pipe
