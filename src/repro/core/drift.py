"""Distribution-drift monitoring.

The paper's core operational pain (§3) is silent drift: firmware
updates change message syntax, the old buckets stop matching, and the
administrator only notices via a growing unclassified queue.
:class:`DriftMonitor` makes drift *observable* for any classifier by
tracking, over tumbling windows of the incoming stream:

- **OOV rate** — fraction of tokens outside the training vocabulary
  (rising OOV = new message shapes),
- **confidence** — mean top-class probability when available,
- **category mix** — predicted-category distribution, compared to the
  training mix by Jensen–Shannon divergence.

A window is flagged when any metric crosses its threshold; the
recommended response is retraining (cheap for TF-IDF+ML, which is the
paper's argument for the approach).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.taxonomy import Category
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["DriftMonitor", "DriftReport"]


def _js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen–Shannon divergence (base-2, in [0, 1]) of two histograms."""
    p = p / p.sum() if p.sum() else np.full_like(p, 1.0 / len(p))
    q = q / q.sum() if q.sum() else np.full_like(q, 1.0 / len(q))
    m = 0.5 * (p + q)

    def kl(a, b):
        mask = a > 0
        return float((a[mask] * np.log2(a[mask] / b[mask])).sum())

    return 0.5 * kl(p, m) + 0.5 * kl(q, m)


@dataclass(frozen=True)
class DriftReport:
    """Metrics for one monitoring window."""

    window_index: int
    n_messages: int
    oov_rate: float
    mean_confidence: float | None
    category_js: float
    drifted: bool
    reasons: tuple[str, ...]


@dataclass
class DriftMonitor:
    """Windowed drift detector over a classification stream.

    Parameters
    ----------
    vectorizer:
        The *fitted* vectorizer whose vocabulary defines OOV.
    baseline_mix:
        Training-time category distribution to compare against.
    window:
        Messages per tumbling window.
    oov_threshold, js_threshold, confidence_threshold:
        Flagging thresholds (OOV above / JS above / confidence below).
    """

    vectorizer: TfidfVectorizer
    baseline_mix: dict[Category, float]
    window: int = 500
    oov_threshold: float = 0.25
    js_threshold: float = 0.15
    confidence_threshold: float = 0.6

    reports: list[DriftReport] = field(default_factory=list, init=False)
    _buf_oov: list[float] = field(default_factory=list, init=False, repr=False)
    _buf_conf: list[float] = field(default_factory=list, init=False, repr=False)
    _buf_cats: Counter = field(default_factory=Counter, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.vectorizer.vocabulary is None:
            raise ValueError("DriftMonitor requires a fitted vectorizer")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        total = sum(self.baseline_mix.values())
        if total <= 0:
            raise ValueError("baseline_mix must have positive total")
        self._baseline = np.asarray(
            [self.baseline_mix.get(c, 0.0) / total for c in Category]
        )

    def observe(
        self,
        text: str,
        predicted: Category,
        confidence: float | None = None,
    ) -> DriftReport | None:
        """Feed one classified message; returns a report at window ends."""
        tokens = self.vectorizer.analyze(text)
        vocab = self.vectorizer.vocabulary
        if tokens:
            oov = sum(1 for t in tokens if t not in vocab) / len(tokens)
        else:
            oov = 0.0
        self._buf_oov.append(oov)
        if confidence is not None:
            self._buf_conf.append(confidence)
        self._buf_cats[predicted] += 1
        if len(self._buf_oov) >= self.window:
            return self._close_window()
        return None

    def flush(self) -> DriftReport | None:
        """Close a partial window (end of stream)."""
        if not self._buf_oov:
            return None
        return self._close_window()

    def _close_window(self) -> DriftReport:
        n = len(self._buf_oov)
        oov_rate = float(np.mean(self._buf_oov))
        mean_conf = float(np.mean(self._buf_conf)) if self._buf_conf else None
        mix = np.asarray([self._buf_cats.get(c, 0) for c in Category], dtype=np.float64)
        js = _js_divergence(mix, self._baseline.copy())
        reasons = []
        if oov_rate > self.oov_threshold:
            reasons.append(f"oov_rate {oov_rate:.3f} > {self.oov_threshold}")
        if js > self.js_threshold:
            reasons.append(f"category_js {js:.3f} > {self.js_threshold}")
        if mean_conf is not None and mean_conf < self.confidence_threshold:
            reasons.append(f"confidence {mean_conf:.3f} < {self.confidence_threshold}")
        report = DriftReport(
            window_index=len(self.reports),
            n_messages=n,
            oov_rate=oov_rate,
            mean_confidence=mean_conf,
            category_js=js,
            drifted=bool(reasons),
            reasons=tuple(reasons),
        )
        self.reports.append(report)
        self._buf_oov.clear()
        self._buf_conf.clear()
        self._buf_cats.clear()
        return report
