"""The real-time classification pipeline.

Composes the pieces the paper deploys: optional blacklist pre-filter
(§5.1) → TF-IDF vectorization (§4.3) → classifier → per-category alert
routing (§4.1's actionable categories).  The pipeline is the unit the
throughput experiments measure: ``classify_batch`` reports wall-clock
service time so the stream simulator can decide whether a classifier
keeps up with the message arrival rate (§5's feasibility argument).
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.taxonomy import Category
from repro.faults.dlq import DeadLetterQueue
from repro.faults.plan import SITE_POISON, InjectedFault
from repro.runtime.batch import MessageBatch
from repro.runtime.timing import StageReport, StageTimer
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["ClassificationPipeline", "PipelineResult"]

#: dead-letter site for messages condemned by the salvage path
QUARANTINE_SITE = "pipeline.quarantine"


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of classifying one message.

    Attributes
    ----------
    text:
        The input message body.
    category:
        Predicted category (blacklisted messages get UNIMPORTANT).
    confidence:
        Classifier confidence in [0, 1] when the model exposes
        probabilities; ``None`` otherwise.
    filtered:
        True when the blacklist pre-filter short-circuited the message.
    quarantined:
        True when the message poisoned the model path and was
        dead-lettered instead of classified; the category is the
        fail-closed UNIMPORTANT default, not a prediction.
    """

    text: str
    category: Category
    confidence: float | None = None
    filtered: bool = False
    quarantined: bool = False


@dataclass
class ClassificationPipeline:
    """Preprocess → vectorize → classify → route.

    Parameters
    ----------
    vectorizer:
        A fitted-or-not :class:`TfidfVectorizer`; ``fit`` fits it.
    classifier:
        Any estimator honouring the fit/predict contract whose labels
        are :class:`Category` values (or their string names).
    blacklist:
        Optional :class:`repro.buckets.blacklist.BlacklistFilter`
        applied before vectorization.
    blacklist_coverage:
        When a blacklist is attached, ``fit`` blacklists the most
        frequent Unimportant message *shapes* until this fraction of
        the training noise is covered, and keeps the rest (still
        labelled Unimportant) in the classifier's training set.  This
        mirrors operations — administrators blacklist the top
        offenders — and leaves the classifier a residual Unimportant
        class for the long tail the filter misses.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`; when armed at
        ``pipeline.poison`` it condemns individual messages so the
        quarantine path can be exercised deterministically.  Never
        consulted when ``None`` (the production default).
    """

    vectorizer: TfidfVectorizer = field(default_factory=TfidfVectorizer)
    classifier: object = None
    blacklist: object = None
    blacklist_coverage: float = 0.9
    fault_injector: object = None

    #: poison messages parked here with their exception context
    dead_letters: DeadLetterQueue = field(
        default_factory=DeadLetterQueue, init=False, repr=False
    )
    _fitted: bool = field(default=False, init=False, repr=False)
    #: cumulative wall-clock seconds spent classifying (excl. fit)
    service_seconds: float = field(default=0.0, init=False)
    n_classified: int = field(default=0, init=False)
    #: per-stage (filter/normalize/vectorize/predict/route) accounting
    timer: StageTimer = field(default_factory=StageTimer, init=False, repr=False)

    def fit(self, texts: Sequence[str], labels: Sequence[Category]) -> "ClassificationPipeline":
        """Fit vectorizer and classifier on a labelled corpus.

        When a blacklist is attached, the most frequent Unimportant
        message shapes (up to ``blacklist_coverage`` of the training
        noise) are blacklisted, messages matching the blacklist are
        removed from the training set, and the rest — including the
        residual Unimportant tail — train the classifier.  This is the
        paper's §5.1 filter-then-classify suggestion in its deployable
        form.
        """
        if self.classifier is None:
            raise ValueError("ClassificationPipeline requires a classifier")
        if len(texts) != len(labels):
            raise ValueError(
                f"texts and labels lengths differ: {len(texts)} vs {len(labels)}"
            )
        texts = list(texts)
        y = np.asarray([_as_category(lab).value for lab in labels])
        if self.blacklist is not None:
            if not 0.0 < self.blacklist_coverage <= 1.0:
                raise ValueError(
                    f"blacklist_coverage must be in (0, 1], got "
                    f"{self.blacklist_coverage}"
                )
            from collections import Counter

            noise = [t for t, lab in zip(texts, y) if lab == Category.UNIMPORTANT.value]
            shapes = Counter(self.blacklist.shape(t) for t in noise)
            budget = self.blacklist_coverage * len(noise)
            covered = 0
            selected: list[str] = []
            for shape, count in shapes.most_common():
                if covered >= budget:
                    break
                selected.append(shape)
                covered += count
            self.blacklist.blacklist_many(selected)
            keep = [i for i, t in enumerate(texts) if not self.blacklist.matches(t)]
            texts = [texts[i] for i in keep]
            y = y[keep]
        X = self.vectorizer.fit_transform(texts)
        self.classifier.fit(X, y)
        self._fitted = True
        return self

    def classify(self, text: str) -> PipelineResult:
        """Classify one message (a batch of one on the batch-first path)."""
        return self.classify_batch(MessageBatch.of_texts((text,)))[0]

    def classify_batch(
        self, batch: MessageBatch | Sequence[str]
    ) -> list[PipelineResult]:
        """Classify a batch, tracking service time for throughput math.

        This is the runtime primitive: the batch flows through each
        stage — blacklist filter, normalize/tokenize, vectorize,
        predict, route — as one columnar unit, with per-stage
        wall-clock accounting in :attr:`timer` (see
        :meth:`timing_report`).  Accepts a
        :class:`~repro.runtime.batch.MessageBatch` or any sequence of
        message texts.

        Poison messages do not abort the batch: when the columnar model
        path raises (undecodable input, a predict failure, or an
        injected ``pipeline.poison`` fault), the batch is re-run
        per-message under the ``salvage`` stage and the individual
        offenders are quarantined — dead-lettered with their exception
        context and returned as fail-closed UNIMPORTANT results with
        ``quarantined=True``.  Exactly one result per input, always.
        """
        if not self._fitted:
            raise RuntimeError("ClassificationPipeline used before fit")
        batch = MessageBatch.coerce(batch)
        t0 = time.perf_counter()
        texts = batch.texts
        results: list[PipelineResult | None] = [None] * len(texts)
        to_model: list[int] = []
        if self.blacklist is not None:
            with self.timer.stage("filter", len(texts)):
                for i, t in enumerate(texts):
                    try:
                        noise = self.blacklist.is_noise(t)
                    except Exception:
                        # malformed input the filter cannot judge: let
                        # the model path quarantine it properly
                        noise = False
                    if noise:
                        results[i] = PipelineResult(
                            text=t, category=Category.UNIMPORTANT, filtered=True
                        )
                    else:
                        to_model.append(i)
        else:
            to_model = list(range(len(texts)))
        if to_model:
            model_texts = [texts[i] for i in to_model]
            poisoned = self._poisoned_indices(len(model_texts))
            if poisoned:
                cats, confs, condemned = self._model_salvage(model_texts, poisoned)
            else:
                try:
                    cats, confs = self._model_stage(model_texts)
                    condemned = {}
                except Exception:
                    cats, confs, condemned = self._model_salvage(
                        model_texts, poisoned
                    )
            with self.timer.stage("route", len(to_model)):
                for j, i in enumerate(to_model):
                    if j in condemned:
                        results[i] = PipelineResult(
                            text=texts[i], category=Category.UNIMPORTANT,
                            quarantined=True,
                        )
                    else:
                        results[i] = PipelineResult(
                            text=texts[i],
                            category=_as_category(cats[j]),
                            confidence=(
                                float(confs[j]) if confs is not None else None
                            ),
                        )
        elapsed = time.perf_counter() - t0
        self.service_seconds += elapsed
        self.n_classified += len(texts)
        self._record_batch_metrics(len(texts), len(texts) - len(to_model), elapsed)
        return results  # type: ignore[return-value]

    def _poisoned_indices(self, n: int) -> set[int]:
        """Indices condemned by an armed ``pipeline.poison`` injector."""
        inj = self.fault_injector
        if inj is None or not inj.armed(SITE_POISON):
            return set()
        return {j for j in range(n) if inj.should_fire(SITE_POISON)}

    def _model_stage(self, model_texts):
        """The columnar normalize → vectorize → predict path."""
        n = len(model_texts)
        with self.timer.stage("normalize", n):
            docs = self.vectorizer.analyze_batch(model_texts)
        with self.timer.stage("vectorize", n):
            X = self.vectorizer.transform_analyzed(docs)
        with self.timer.stage("predict", n):
            preds = self.classifier.predict(X)
            probs = None
            if hasattr(self.classifier, "predict_proba"):
                probs = self.classifier.predict_proba(X).max(axis=1)
        return preds, probs

    def _model_salvage(self, model_texts, poisoned: set[int]):
        """Per-message fallback when the columnar path cannot run.

        Returns ``(cats, confs, condemned)`` where ``condemned`` maps
        model-batch index → exception for every quarantined message.
        Each offender is dead-lettered; survivors get the same
        prediction the columnar path would have produced (same
        vectorizer, same model, one row at a time).
        """
        from repro.obs import wellknown

        n = len(model_texts)
        cats: list = [None] * n
        confs: list = [None] * n
        condemned: dict[int, Exception] = {}
        has_proba = hasattr(self.classifier, "predict_proba")
        with self.timer.stage("salvage", n):
            for j, text in enumerate(model_texts):
                try:
                    if j in poisoned:
                        raise InjectedFault(SITE_POISON)
                    docs = self.vectorizer.analyze_batch([text])
                    X = self.vectorizer.transform_analyzed(docs)
                    cats[j] = self.classifier.predict(X)[0]
                    if has_proba:
                        confs[j] = self.classifier.predict_proba(X).max()
                except Exception as e:
                    condemned[j] = e
                    site = e.site if isinstance(e, InjectedFault) else QUARANTINE_SITE
                    self.dead_letters.push(
                        site, text, repr(e), batch_index=j,
                    )
        if condemned:
            wellknown.faults_quarantined(self.timer.registry).inc(len(condemned))
        if not has_proba:
            confs = None
        return cats, confs, condemned

    def _record_batch_metrics(
        self, n_messages: int, n_filtered: int, elapsed: float
    ) -> None:
        """Mirror one batch into the metrics registry (once per batch)."""
        from repro.obs import wellknown

        registry = self.timer.registry
        wellknown.pipeline_batches(registry).inc()
        wellknown.pipeline_messages(registry).inc(n_messages)
        if n_filtered:
            wellknown.pipeline_filtered(registry).inc(n_filtered)
        wellknown.pipeline_batch_seconds(registry).observe(elapsed)

    def timing_report(self) -> StageReport:
        """Per-stage breakdown of time spent classifying so far."""
        return self.timer.report()

    def reset_timing(self) -> None:
        """Zero the per-stage accounting (service totals are kept)."""
        self.timer.reset()

    @property
    def mean_service_time(self) -> float:
        """Average wall-clock seconds per message classified so far."""
        if self.n_classified == 0:
            return 0.0
        return self.service_seconds / self.n_classified

    def messages_per_hour(self) -> float:
        """Sustainable throughput extrapolated from observed service time.

        The paper's Table 3 reports this figure for the LLM
        classifiers; computing it for the pipeline makes the two
        directly comparable.
        """
        mst = self.mean_service_time
        return float("inf") if mst == 0.0 else 3600.0 / mst


def _as_category(label) -> Category:
    if isinstance(label, Category):
        return label
    return Category.from_name(str(label))
