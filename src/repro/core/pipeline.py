"""The real-time classification pipeline.

Composes the pieces the paper deploys: optional blacklist pre-filter
(§5.1) → TF-IDF vectorization (§4.3) → classifier → per-category alert
routing (§4.1's actionable categories).  The pipeline is the unit the
throughput experiments measure: ``classify_batch`` reports wall-clock
service time so the stream simulator can decide whether a classifier
keeps up with the message arrival rate (§5's feasibility argument).
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.taxonomy import Category
from repro.core.template_cache import TemplateCache
from repro.faults.dlq import DeadLetterQueue
from repro.faults.plan import SITE_POISON, InjectedFault
from repro.runtime.batch import MessageBatch
from repro.runtime.timing import StageReport, StageTimer
from repro.textproc.fingerprint import TemplateFingerprinter
from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["ClassificationPipeline", "PipelineResult"]

#: dead-letter site for messages condemned by the salvage path
QUARANTINE_SITE = "pipeline.quarantine"


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of classifying one message.

    Attributes
    ----------
    text:
        The input message body.
    category:
        Predicted category (blacklisted messages get UNIMPORTANT).
    confidence:
        Classifier confidence in [0, 1] when the model exposes
        probabilities; ``None`` otherwise.
    filtered:
        True when the blacklist pre-filter short-circuited the message.
    quarantined:
        True when the message poisoned the model path and was
        dead-lettered instead of classified; the category is the
        fail-closed UNIMPORTANT default, not a prediction.
    """

    text: str
    category: Category
    confidence: float | None = None
    filtered: bool = False
    quarantined: bool = False


@dataclass
class ClassificationPipeline:
    """Preprocess → vectorize → classify → route.

    Parameters
    ----------
    vectorizer:
        A fitted-or-not :class:`TfidfVectorizer`; ``fit`` fits it.
    classifier:
        Any estimator honouring the fit/predict contract whose labels
        are :class:`Category` values (or their string names).
    blacklist:
        Optional :class:`repro.buckets.blacklist.BlacklistFilter`
        applied before vectorization.
    blacklist_coverage:
        When a blacklist is attached, ``fit`` blacklists the most
        frequent Unimportant message *shapes* until this fraction of
        the training noise is covered, and keeps the rest (still
        labelled Unimportant) in the classifier's training set.  This
        mirrors operations — administrators blacklist the top
        offenders — and leaves the classifier a residual Unimportant
        class for the long tail the filter misses.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`; when armed at
        ``pipeline.poison`` it condemns individual messages so the
        quarantine path can be exercised deterministically.  Never
        consulted when ``None`` (the production default).
    template_cache:
        Optional :class:`~repro.core.template_cache.TemplateCache`.
        When attached, ``classify_batch`` memoizes the final
        ``(category, confidence)`` per masked template and only sends
        cache misses through the model stage.  The cache key is the
        exact masked text, so a hit reproduces the model's answer
        bit-for-bit; blacklist, poison-salvage, and quarantine
        semantics are preserved exactly (filtered/quarantined results
        are never cached, poison-injected messages bypass the cache),
        and ``fit`` invalidates atomically via the generation stamp.
    """

    vectorizer: TfidfVectorizer = field(default_factory=TfidfVectorizer)
    classifier: object = None
    blacklist: object = None
    blacklist_coverage: float = 0.9
    fault_injector: object = None
    template_cache: TemplateCache | None = None

    #: poison messages parked here with their exception context
    dead_letters: DeadLetterQueue = field(
        default_factory=DeadLetterQueue, init=False, repr=False
    )
    _fitted: bool = field(default=False, init=False, repr=False)
    #: cumulative wall-clock seconds spent classifying (excl. fit)
    service_seconds: float = field(default=0.0, init=False)
    n_classified: int = field(default=0, init=False)
    #: per-stage (filter/normalize/vectorize/predict/route) accounting
    timer: StageTimer = field(default_factory=StageTimer, init=False, repr=False)
    #: bumped by every successful ``fit``; stamps the template cache so
    #: a refit atomically invalidates memoized results
    _generation: int = field(default=0, init=False, repr=False)
    _fingerprinter: TemplateFingerprinter | None = field(
        default=None, init=False, repr=False
    )

    def fit(self, texts: Sequence[str], labels: Sequence[Category]) -> "ClassificationPipeline":
        """Fit vectorizer and classifier on a labelled corpus.

        When a blacklist is attached, the most frequent Unimportant
        message shapes (up to ``blacklist_coverage`` of the training
        noise) are blacklisted, messages matching the blacklist are
        removed from the training set, and the rest — including the
        residual Unimportant tail — train the classifier.  This is the
        paper's §5.1 filter-then-classify suggestion in its deployable
        form.
        """
        if self.classifier is None:
            raise ValueError("ClassificationPipeline requires a classifier")
        if len(texts) != len(labels):
            raise ValueError(
                f"texts and labels lengths differ: {len(texts)} vs {len(labels)}"
            )
        texts = list(texts)
        y = np.asarray([_as_category(lab).value for lab in labels])
        if self.blacklist is not None:
            if not 0.0 < self.blacklist_coverage <= 1.0:
                raise ValueError(
                    f"blacklist_coverage must be in (0, 1], got "
                    f"{self.blacklist_coverage}"
                )
            from collections import Counter

            noise = [t for t, lab in zip(texts, y) if lab == Category.UNIMPORTANT.value]
            shapes = Counter(self.blacklist.shape(t) for t in noise)
            budget = self.blacklist_coverage * len(noise)
            covered = 0
            selected: list[str] = []
            for shape, count in shapes.most_common():
                if covered >= budget:
                    break
                selected.append(shape)
                covered += count
            self.blacklist.blacklist_many(selected)
            keep = [i for i, t in enumerate(texts) if not self.blacklist.matches(t)]
            texts = [texts[i] for i in keep]
            y = y[keep]
        X = self.vectorizer.fit_transform(texts)
        self.classifier.fit(X, y)
        self._fitted = True
        # a refit changes what the model would answer: bump the
        # generation so an attached template cache clears atomically on
        # its next lookup, and rebuild the fingerprinter in case the
        # vectorizer's normalization changed
        self._generation += 1
        self._fingerprinter = None
        return self

    def classify(self, text: str) -> PipelineResult:
        """Classify one message (a batch of one on the batch-first path)."""
        return self.classify_batch(MessageBatch.of_texts((text,)))[0]

    def classify_batch(
        self, batch: MessageBatch | Sequence[str]
    ) -> list[PipelineResult]:
        """Classify a batch, tracking service time for throughput math.

        This is the runtime primitive: the batch flows through each
        stage — blacklist filter, normalize/tokenize, vectorize,
        predict, route — as one columnar unit, with per-stage
        wall-clock accounting in :attr:`timer` (see
        :meth:`timing_report`).  Accepts a
        :class:`~repro.runtime.batch.MessageBatch` or any sequence of
        message texts.

        Poison messages do not abort the batch: when the columnar model
        path raises (undecodable input, a predict failure, or an
        injected ``pipeline.poison`` fault), the batch is re-run
        per-message under the ``salvage`` stage and the individual
        offenders are quarantined — dead-lettered with their exception
        context and returned as fail-closed UNIMPORTANT results with
        ``quarantined=True``.  Exactly one result per input, always.

        With a :attr:`template_cache` attached, messages whose masked
        template was already classified are served from the cache under
        a ``fingerprint`` stage and only misses run the model stages —
        same results, bit-for-bit (see
        ``tests/test_template_cache.py``), at a fraction of the cost on
        skewed workloads.
        """
        if not self._fitted:
            raise RuntimeError("ClassificationPipeline used before fit")
        batch = MessageBatch.coerce(batch)
        t0 = time.perf_counter()
        texts = batch.texts
        results: list[PipelineResult | None] = [None] * len(texts)
        to_model: list[int] = []
        if self.blacklist is not None:
            with self.timer.stage("filter", len(texts)):
                for i, t in enumerate(texts):
                    try:
                        noise = self.blacklist.is_noise(t)
                    except Exception:
                        # malformed input the filter cannot judge: let
                        # the model path quarantine it properly
                        noise = False
                    if noise:
                        results[i] = PipelineResult(
                            text=t, category=Category.UNIMPORTANT, filtered=True
                        )
                    else:
                        to_model.append(i)
        else:
            to_model = list(range(len(texts)))
        if to_model:
            model_texts = [texts[i] for i in to_model]
            poisoned = self._poisoned_indices(len(model_texts))
            if self.template_cache is not None:
                cats, confs, condemned = self._model_stage_cached(
                    model_texts, poisoned, self.template_cache
                )
            elif poisoned:
                cats, confs, condemned = self._model_salvage(model_texts, poisoned)
            else:
                try:
                    cats, confs = self._model_stage(model_texts)
                    condemned = {}
                except Exception:
                    cats, confs, condemned = self._model_salvage(
                        model_texts, poisoned
                    )
            with self.timer.stage("route", len(to_model)):
                for j, i in enumerate(to_model):
                    if j in condemned:
                        results[i] = PipelineResult(
                            text=texts[i], category=Category.UNIMPORTANT,
                            quarantined=True,
                        )
                    else:
                        results[i] = PipelineResult(
                            text=texts[i],
                            category=_as_category(cats[j]),
                            confidence=(
                                float(confs[j])
                                if confs is not None and confs[j] is not None
                                else None
                            ),
                        )
        elapsed = time.perf_counter() - t0
        self.service_seconds += elapsed
        self.n_classified += len(texts)
        self._record_batch_metrics(len(texts), len(texts) - len(to_model), elapsed)
        return results  # type: ignore[return-value]

    def _poisoned_indices(self, n: int) -> set[int]:
        """Indices condemned by an armed ``pipeline.poison`` injector."""
        inj = self.fault_injector
        if inj is None or not inj.armed(SITE_POISON):
            return set()
        return {j for j in range(n) if inj.should_fire(SITE_POISON)}

    def _model_stage(self, model_texts):
        """The columnar normalize → vectorize → predict path."""
        n = len(model_texts)
        with self.timer.stage("normalize", n):
            docs = self.vectorizer.analyze_batch(model_texts)
        with self.timer.stage("vectorize", n):
            X = self.vectorizer.transform_analyzed(docs)
        with self.timer.stage("predict", n):
            preds = self.classifier.predict(X)
            probs = None
            if hasattr(self.classifier, "predict_proba"):
                probs = self.classifier.predict_proba(X).max(axis=1)
        return preds, probs

    def _template_keys(self, texts: Sequence[str]) -> list[str]:
        """Template-cache keys: the exact masked form of each text."""
        fp = self._fingerprinter
        if fp is None:
            fp = self._fingerprinter = TemplateFingerprinter.for_vectorizer(
                self.vectorizer
            )
        return fp.mask_many(texts)

    def _model_stage_cached(self, model_texts, poisoned: set[int], cache):
        """Template-dedup front of the model stage.

        Returns the same ``(cats, confs, condemned)`` contract as the
        uncached paths, with hits served from ``cache`` and only misses
        sent through :meth:`_model_stage` / :meth:`_model_salvage`.
        Soundness: the key is the exact masked text, and everything the
        model stage computes is a deterministic per-row function of it,
        so a hit replays precisely what the miss path stored.  Poisoned
        indices never read nor write the cache (the injector decision
        is positional, not textual), and quarantined results are never
        stored.
        """
        n = len(model_texts)
        before = cache.counters()
        cache.sync_generation(self._generation)
        with self.timer.stage("fingerprint", n):
            keys = self._template_keys(model_texts)
        cats: list = [None] * n
        confs: list = [None] * n
        condemned: dict[int, Exception] = {}
        miss_j: list[int] = []
        for j in range(n):
            if j in poisoned:
                miss_j.append(j)
                continue
            entry = cache.get(keys[j])
            if entry is None:
                miss_j.append(j)
            else:
                cats[j], confs[j] = entry
        if miss_j:
            miss_texts = [model_texts[j] for j in miss_j]
            miss_poisoned = {k for k, j in enumerate(miss_j) if j in poisoned}
            if miss_poisoned:
                m_cats, m_confs, m_condemned = self._model_salvage(
                    miss_texts, miss_poisoned
                )
            else:
                try:
                    m_cats, m_confs = self._model_stage(miss_texts)
                    m_condemned = {}
                except Exception:
                    m_cats, m_confs, m_condemned = self._model_salvage(
                        miss_texts, set()
                    )
            for k, j in enumerate(miss_j):
                if k in m_condemned:
                    condemned[j] = m_condemned[k]
                    continue
                # store the *converted* result so hits skip the
                # label→Category and numpy→float conversions too
                conf = m_confs[k] if m_confs is not None else None
                cats[j] = _as_category(m_cats[k])
                confs[j] = float(conf) if conf is not None else None
                if j not in poisoned:
                    cache.put(keys[j], (cats[j], confs[j]))
        self._record_cache_metrics(cache, before)
        return cats, confs, condemned

    def _record_cache_metrics(self, cache, before: dict) -> None:
        """Mirror one batch's cache counter deltas into the registry."""
        from repro.obs import wellknown

        registry = self.timer.registry
        worker = str(os.getpid())
        after = cache.counters()
        for name, family in (
            ("hits", wellknown.template_cache_hits),
            ("misses", wellknown.template_cache_misses),
            ("evictions", wellknown.template_cache_evictions),
            ("invalidations", wellknown.template_cache_invalidations),
        ):
            delta = after[name] - before[name]
            if delta:
                family(registry).inc(delta, worker=worker)
        wellknown.template_cache_size(registry).set(len(cache), worker=worker)

    def _model_salvage(self, model_texts, poisoned: set[int]):
        """Per-message fallback when the columnar path cannot run.

        Returns ``(cats, confs, condemned)`` where ``condemned`` maps
        model-batch index → exception for every quarantined message.
        Each offender is dead-lettered; survivors get the same
        prediction the columnar path would have produced (same
        vectorizer, same model, one row at a time).
        """
        from repro.obs import wellknown

        n = len(model_texts)
        cats: list = [None] * n
        confs: list = [None] * n
        condemned: dict[int, Exception] = {}
        has_proba = hasattr(self.classifier, "predict_proba")
        with self.timer.stage("salvage", n):
            for j, text in enumerate(model_texts):
                try:
                    if j in poisoned:
                        raise InjectedFault(SITE_POISON)
                    docs = self.vectorizer.analyze_batch([text])
                    X = self.vectorizer.transform_analyzed(docs)
                    cats[j] = self.classifier.predict(X)[0]
                    if has_proba:
                        confs[j] = self.classifier.predict_proba(X).max()
                except Exception as e:
                    condemned[j] = e
                    site = e.site if isinstance(e, InjectedFault) else QUARANTINE_SITE
                    self.dead_letters.push(
                        site, text, repr(e), batch_index=j,
                    )
        if condemned:
            wellknown.faults_quarantined(self.timer.registry).inc(len(condemned))
        if not has_proba:
            confs = None
        return cats, confs, condemned

    def _record_batch_metrics(
        self, n_messages: int, n_filtered: int, elapsed: float
    ) -> None:
        """Mirror one batch into the metrics registry (once per batch)."""
        from repro.obs import wellknown

        registry = self.timer.registry
        wellknown.pipeline_batches(registry).inc()
        wellknown.pipeline_messages(registry).inc(n_messages)
        if n_filtered:
            wellknown.pipeline_filtered(registry).inc(n_filtered)
        wellknown.pipeline_batch_seconds(registry).observe(elapsed)

    def timing_report(self) -> StageReport:
        """Per-stage breakdown of time spent classifying so far."""
        return self.timer.report()

    def reset_timing(self) -> None:
        """Zero the per-stage accounting (service totals are kept)."""
        self.timer.reset()

    @property
    def mean_service_time(self) -> float:
        """Average wall-clock seconds per message classified so far."""
        if self.n_classified == 0:
            return 0.0
        return self.service_seconds / self.n_classified

    def messages_per_hour(self) -> float:
        """Sustainable throughput extrapolated from observed service time.

        The paper's Table 3 reports this figure for the LLM
        classifiers; computing it for the pipeline makes the two
        directly comparable.
        """
        mst = self.mean_service_time
        return float("inf") if mst == 0.0 else 3600.0 / mst


def _as_category(label) -> Category:
    if isinstance(label, Category):
        return label
    return Category.from_name(str(label))
