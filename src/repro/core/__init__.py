"""Core syslog-analysis library: taxonomy, message model, pipeline.

This package holds the paper's primary contribution — the actionable
category taxonomy (§4.1) and the real-time classification pipeline that
routes heterogeneous syslog messages into those categories and raises
per-category alerts, with drift monitoring to detect when the message
distribution shifts (the failure mode that forced continuous retraining
of the legacy bucketing approach, §3).
"""

from repro.core.taxonomy import Category, CATEGORIES, TAXONOMY, CategorySpec
from repro.core.message import SyslogMessage, parse_syslog_line, Severity, Facility
from repro.core.pipeline import ClassificationPipeline, PipelineResult
from repro.core.template_cache import TemplateCache
from repro.core.alerts import AlertRule, AlertRouter, Alert, EmailSink, MemorySink
from repro.core.drift import DriftMonitor, DriftReport
from repro.core.registry import ModelRegistry, ModelRecord
from repro.core.retrain import RetrainController, RetrainEvent
from repro.core.serialize import save_pipeline, load_pipeline, save_classifier, load_classifier

__all__ = [
    "Category",
    "CATEGORIES",
    "TAXONOMY",
    "CategorySpec",
    "SyslogMessage",
    "parse_syslog_line",
    "Severity",
    "Facility",
    "ClassificationPipeline",
    "PipelineResult",
    "TemplateCache",
    "AlertRule",
    "AlertRouter",
    "Alert",
    "EmailSink",
    "MemorySink",
    "DriftMonitor",
    "DriftReport",
    "ModelRegistry",
    "ModelRecord",
    "RetrainController",
    "RetrainEvent",
    "save_pipeline",
    "load_pipeline",
    "save_classifier",
    "load_classifier",
]
