"""Adaptive retraining: close the loop the paper leaves open (§7).

§7: "We will specifically be interested in how well this particular
classification/pre-processing technique combination holds up to changes
in our cluster's environment."  The legacy bucketing approach answered
environmental change with a continuously growing hand-labelling queue
(§3); :class:`RetrainController` gives the ML pipeline a bounded
alternative:

1. classify the stream with the active pipeline while the
   :class:`~repro.core.drift.DriftMonitor` watches each window's OOV
   rate / confidence / category mix;
2. when a window is flagged, request labels for a *capped sample* of
   that window (the administrator-effort budget — the quantity the
   drift experiments compare against bucketing's per-shape labelling);
3. retrain on original data plus everything labelled so far, register
   the new version in the :class:`~repro.core.registry.ModelRegistry`,
   and promote it.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.drift import DriftMonitor, DriftReport
from repro.core.pipeline import ClassificationPipeline
from repro.core.registry import ModelRegistry
from repro.core.taxonomy import Category

__all__ = ["RetrainController", "RetrainEvent"]


@dataclass(frozen=True)
class RetrainEvent:
    """One retraining action."""

    at_message: int
    trigger: DriftReport
    labels_requested: int
    model_version: int


@dataclass
class RetrainController:
    """Drift-triggered retraining around a classification pipeline.

    Parameters
    ----------
    pipeline_factory:
        Builds a fresh (unfitted) pipeline for each retrain.
    base_texts, base_labels:
        The original training corpus.
    labeler:
        Oracle for administrator labels: ``texts -> labels``.  In
        production this is a human queue; experiments pass ground
        truth and *count the calls* as admin effort.
    window:
        Drift-monitor window (messages).
    label_budget:
        Maximum labels requested per retrain.
    cooldown_windows:
        Windows to wait after a retrain before the next may trigger
        (retraining mid-drift twice in a row wastes labels).
    """

    pipeline_factory: Callable[[], ClassificationPipeline]
    base_texts: Sequence[str]
    base_labels: Sequence[Category]
    labeler: Callable[[Sequence[str]], Sequence[Category]]
    window: int = 300
    label_budget: int = 60
    cooldown_windows: int = 1
    oov_threshold: float = 0.25

    registry: ModelRegistry = field(default_factory=ModelRegistry, init=False)
    events: list[RetrainEvent] = field(default_factory=list, init=False)
    n_processed: int = field(default=0, init=False)

    _pipeline: ClassificationPipeline = field(default=None, init=False, repr=False)
    _monitor: DriftMonitor = field(default=None, init=False, repr=False)
    _window_buf: list[str] = field(default_factory=list, init=False, repr=False)
    _extra_texts: list[str] = field(default_factory=list, init=False, repr=False)
    _extra_labels: list[Category] = field(default_factory=list, init=False, repr=False)
    _cooldown: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.base_texts) != len(self.base_labels):
            raise ValueError("base_texts and base_labels lengths differ")
        self._fit_active()

    # -- plumbing ---------------------------------------------------------

    def _baseline_mix(self) -> dict[Category, float]:
        mix: dict[Category, float] = {c: 0.0 for c in Category}
        labels = list(self.base_labels) + self._extra_labels
        for lab in labels:
            mix[lab] += 1.0
        return mix

    def _fit_active(self) -> int:
        pipe = self.pipeline_factory()
        pipe.fit(
            list(self.base_texts) + self._extra_texts,
            list(self.base_labels) + self._extra_labels,
        )
        record = self.registry.register(
            "syslog-pipeline", pipe,
            metrics={"n_train": len(self.base_texts) + len(self._extra_texts)},
        )
        self.registry.promote("syslog-pipeline", record.version)
        self._pipeline = pipe
        self._monitor = DriftMonitor(
            vectorizer=pipe.vectorizer,
            baseline_mix=self._baseline_mix(),
            window=self.window,
            oov_threshold=self.oov_threshold,
        )
        return record.version

    @property
    def active_pipeline(self) -> ClassificationPipeline:
        return self._pipeline

    @property
    def model_version(self) -> int:
        return self.registry.active("syslog-pipeline").version

    # -- stream interface ------------------------------------------------------

    def classify(self, text: str) -> Category:
        """Classify one message, watching for drift along the way."""
        result = self._pipeline.classify(text)
        self._window_buf.append(text)
        report = self._monitor.observe(text, result.category, result.confidence)
        self.n_processed += 1
        if report is not None:
            self._on_window(report)
        return result.category

    def _on_window(self, report: DriftReport) -> None:
        window_texts = self._window_buf
        self._window_buf = []
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        if not report.drifted:
            return
        sample = window_texts[: self.label_budget]
        labels = list(self.labeler(sample))
        if len(labels) != len(sample):
            raise RuntimeError(
                f"labeler returned {len(labels)} labels for {len(sample)} texts"
            )
        self._extra_texts.extend(sample)
        self._extra_labels.extend(labels)
        version = self._fit_active()
        self._cooldown = self.cooldown_windows
        self.events.append(RetrainEvent(
            at_message=self.n_processed,
            trigger=report,
            labels_requested=len(sample),
            model_version=version,
        ))

    @property
    def total_labels_requested(self) -> int:
        """Cumulative administrator-labelling effort."""
        return sum(e.labels_requested for e in self.events)
