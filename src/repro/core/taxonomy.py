"""The actionable issue taxonomy (§4.1).

The paper deliberately classifies at a coarse, *actionable* level — the
level at which a system administrator can take a next step (run memory
diagnostics, check the cold aisle, inspect an SSH session) — rather
than at root-cause specificity.  The eight categories below are the
paper's initial classification scheme verbatim; each carries a human
description (used by the zero-shot classifier as its entailment
hypothesis and by prompt construction) and a suggested action.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Category", "CategorySpec", "TAXONOMY", "CATEGORIES", "ACTIONABLE_CATEGORIES"]


class Category(str, enum.Enum):
    """The eight syslog issue categories of §4.1."""

    HARDWARE = "Hardware Issue"
    INTRUSION = "Intrusion Detection"
    MEMORY = "Memory Issue"
    SSH = "SSH-Connection"
    SLURM = "Slurm Issues"
    THERMAL = "Thermal Issue"
    USB = "USB-Device"
    UNIMPORTANT = "Unimportant"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "Category":
        """Resolve a category from its display name (case-insensitive).

        Raises
        ------
        KeyError
            If ``name`` matches no category — the caller decides whether
            that is an invented-category alignment failure (§5.2) or a
            configuration error.
        """
        folded = name.strip().lower()
        for cat in cls:
            if cat.value.lower() == folded or cat.name.lower() == folded:
                return cat
        # tolerate minor morphological variants ("thermal issues",
        # "memory", "ssh connection")
        squashed = folded.replace("-", " ").rstrip("s")
        for cat in cls:
            cv = cat.value.lower().replace("-", " ").rstrip("s")
            if cv == squashed or cv.split()[0] == squashed:
                return cat
        raise KeyError(name)


@dataclass(frozen=True)
class CategorySpec:
    """Metadata for one taxonomy category.

    Attributes
    ----------
    category:
        The category enum member.
    description:
        One-sentence definition, phrased so it can serve as a zero-shot
        entailment hypothesis ("This message is about ...").
    action:
        The administrator's actionable next step (§4.1's rationale for
        the coarse granularity).
    alert_default:
        Whether a new message in this category should raise a
        notification by default (everything except Unimportant).
    """

    category: Category
    description: str
    action: str
    alert_default: bool = True


TAXONOMY: dict[Category, CategorySpec] = {
    Category.HARDWARE: CategorySpec(
        Category.HARDWARE,
        "a hardware fault or degradation that is not memory, thermal, or "
        "USB specific: clock/timestamp sync faults, power supply, fan, "
        "PCIe, disk, or sensor failures",
        "schedule hardware diagnostics on the affected node and check "
        "vendor error counters",
    ),
    Category.INTRUSION: CategorySpec(
        Category.INTRUSION,
        "an event useful for intrusion detection: privilege escalation, "
        "new root sessions, unexpected logins, audit events",
        "review the session against access-control records and notify "
        "security if unexplained",
    ),
    Category.MEMORY: CategorySpec(
        Category.MEMORY,
        "a memory problem: ECC/correctable errors, allocation failures, "
        "out-of-memory kills, DIMM faults, low real memory",
        "run memory diagnostics and consider replacing the DIMM",
    ),
    Category.SSH: CategorySpec(
        Category.SSH,
        "SSH connection activity: connections opened or closed, preauth "
        "disconnects, failed or accepted authentication on a port",
        "correlate with expected user activity; repeated failures may "
        "feed intrusion detection",
    ),
    Category.SLURM: CategorySpec(
        Category.SLURM,
        "a Slurm workload-manager issue: node registration, version "
        "mismatches, scheduler errors, job cancellations by the system",
        "check slurmctld/slurmd state and node registration for the "
        "affected node",
    ),
    Category.THERMAL: CategorySpec(
        Category.THERMAL,
        "a thermal problem: CPU or sensor temperature above threshold, "
        "thermal throttling, overheating shutdowns",
        "check rack cooling / cold-aisle containment and the node's fan "
        "and sensor readings",
    ),
    Category.USB: CategorySpec(
        Category.USB,
        "USB device activity: a device or hub attached, enumerated, or "
        "disconnected",
        "verify the device plug-in was expected (data-center access "
        "logs); unexpected devices are a security concern",
    ),
    Category.UNIMPORTANT: CategorySpec(
        Category.UNIMPORTANT,
        "unimportant noise or routine application-specific information "
        "with no administrative action required",
        "no action; retain for audit only",
        alert_default=False,
    ),
}

#: Categories in canonical (enum-definition) order.
CATEGORIES: tuple[Category, ...] = tuple(Category)

#: Categories an administrator acts on — everything but noise.
ACTIONABLE_CATEGORIES: tuple[Category, ...] = tuple(
    c for c in Category if c is not Category.UNIMPORTANT
)
