"""Per-category alert routing.

§3: "The issue categories could be set to trigger a notification email
when a new message within that category has been identified."  The
router fires a rule's sink when a classified message lands in its
category, with per-rule rate limiting (a thermal runaway produces
thousands of messages — the admin needs one email, not thousands) and
severity gating.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.message import Severity
from repro.core.taxonomy import TAXONOMY, Category

__all__ = ["Alert", "AlertRule", "AlertRouter", "EmailSink", "MemorySink"]


@dataclass(frozen=True)
class Alert:
    """One raised notification."""

    timestamp: float
    category: Category
    hostname: str
    text: str
    action_hint: str


class MemorySink:
    """Collects alerts in memory (test/inspection sink)."""

    def __init__(self) -> None:
        self.alerts: list[Alert] = []

    def __call__(self, alert: Alert) -> None:
        self.alerts.append(alert)


class EmailSink:
    """Simulated notification-email sink.

    Renders each alert as an RFC-822-ish text blob appended to an
    outbox list — the shape the production system hands to sendmail.
    """

    def __init__(self, to_addr: str = "hpc-admins@example.gov") -> None:
        self.to_addr = to_addr
        self.outbox: list[str] = []

    def __call__(self, alert: Alert) -> None:
        self.outbox.append(
            f"To: {self.to_addr}\n"
            f"Subject: [{alert.category.value}] on {alert.hostname}\n\n"
            f"At t={alert.timestamp:.1f}s node {alert.hostname} reported:\n"
            f"    {alert.text}\n\n"
            f"Suggested action: {alert.action_hint}\n"
        )


@dataclass
class AlertRule:
    """Routing rule for one category.

    Parameters
    ----------
    category:
        The category this rule watches.
    sink:
        Callable receiving :class:`Alert` objects.
    min_severity:
        Only messages at this severity or more urgent fire (note
        syslog severities are *lower* numbers for *more* urgent).
    cooldown_s:
        Minimum simulated-time gap between alerts per hostname.
    """

    category: Category
    sink: Callable[[Alert], None]
    min_severity: Severity = Severity.DEBUG
    cooldown_s: float = 300.0

    _last_fired: dict[str, float] = field(default_factory=dict, init=False, repr=False)
    n_fired: int = field(default=0, init=False)
    n_suppressed: int = field(default=0, init=False)

    def consider(
        self, *, timestamp: float, hostname: str, text: str, severity: Severity
    ) -> bool:
        """Fire the sink if severity and cooldown allow; returns fired?"""
        if severity > self.min_severity:
            return False
        last = self._last_fired.get(hostname)
        if last is not None and timestamp - last < self.cooldown_s:
            self.n_suppressed += 1
            return False
        self._last_fired[hostname] = timestamp
        self.n_fired += 1
        self.sink(
            Alert(
                timestamp=timestamp,
                category=self.category,
                hostname=hostname,
                text=text,
                action_hint=TAXONOMY[self.category].action,
            )
        )
        return True


class AlertRouter:
    """Dispatches classified messages to category rules."""

    def __init__(self) -> None:
        self._rules: dict[Category, list[AlertRule]] = {}

    def add_rule(self, rule: AlertRule) -> None:
        """Register a rule for its category."""
        self._rules.setdefault(rule.category, []).append(rule)

    @classmethod
    def with_defaults(cls, sink: Callable[[Alert], None]) -> "AlertRouter":
        """Router alerting on every actionable category (not Unimportant)."""
        router = cls()
        for cat, spec in TAXONOMY.items():
            if spec.alert_default:
                router.add_rule(AlertRule(category=cat, sink=sink))
        return router

    def route(
        self,
        category: Category,
        *,
        timestamp: float,
        hostname: str,
        text: str,
        severity: Severity = Severity.INFO,
    ) -> int:
        """Offer one classified message; returns number of rules fired."""
        fired = 0
        for rule in self._rules.get(category, ()):
            if rule.consider(
                timestamp=timestamp, hostname=hostname, text=text, severity=severity
            ):
                fired += 1
        return fired
