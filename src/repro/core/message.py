"""Syslog message model and wire-format parsing.

The Darwin test-bed forwards its nodes' syslog streams (RFC 3164 "BSD
syslog" and RFC 5424 formats, depending on vendor and firmware age) to
a central relay (§4.2).  This module models a parsed message and parses
both wire formats, because the heterogeneity of framing is itself part
of what makes the corpus heterogeneous.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

__all__ = ["Severity", "Facility", "SyslogMessage", "parse_syslog_line"]


class Severity(enum.IntEnum):
    """RFC 5424 severity levels."""

    EMERGENCY = 0
    ALERT = 1
    CRITICAL = 2
    ERROR = 3
    WARNING = 4
    NOTICE = 5
    INFO = 6
    DEBUG = 7


class Facility(enum.IntEnum):
    """RFC 5424 facility codes (the subset seen on compute nodes)."""

    KERN = 0
    USER = 1
    DAEMON = 3
    AUTH = 4
    SYSLOG = 5
    CRON = 9
    AUTHPRIV = 10
    LOCAL0 = 16
    LOCAL1 = 17
    LOCAL2 = 18
    LOCAL3 = 19
    LOCAL4 = 20
    LOCAL5 = 21
    LOCAL6 = 22
    LOCAL7 = 23


@dataclass(frozen=True, slots=True)
class SyslogMessage:
    """A parsed syslog record.

    Attributes
    ----------
    timestamp:
        Seconds since epoch (simulation time in the event-driven
        substrate; real time when parsing live logs).
    hostname:
        Originating node name (e.g. ``cn042``).
    app:
        Application / tag (``kernel``, ``sshd``, ``slurmd`` ...).
    text:
        The free-form message body — the classification input.
    severity, facility:
        Decoded from the PRI field when present.
    pid:
        Process id from the tag, if present.
    """

    timestamp: float
    hostname: str
    app: str
    text: str
    severity: Severity = Severity.INFO
    facility: Facility = Facility.USER
    pid: int | None = None

    @property
    def pri(self) -> int:
        """RFC 5424 PRI value (facility*8 + severity)."""
        return int(self.facility) * 8 + int(self.severity)

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`.

        The durability layer (WAL records, checkpoints, dead-letter
        files) persists messages in this shape.
        """
        return {
            "ts": self.timestamp,
            "host": self.hostname,
            "app": self.app,
            "text": self.text,
            "sev": int(self.severity),
            "fac": int(self.facility),
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SyslogMessage":
        """Rebuild a message from :meth:`to_dict` output.

        Raises
        ------
        KeyError
            A required field is missing.
        ValueError
            A severity/facility code is out of range.
        """
        return cls(
            timestamp=float(data["ts"]),
            hostname=str(data["host"]),
            app=str(data["app"]),
            text=str(data["text"]),
            severity=Severity(int(data.get("sev", Severity.INFO))),
            facility=Facility(int(data.get("fac", Facility.USER))),
            pid=data.get("pid"),
        )

    def to_rfc3164(self) -> str:
        """Render in BSD-syslog framing (no year, local timestamp)."""
        tag = f"{self.app}[{self.pid}]" if self.pid is not None else self.app
        ts = _format_bsd_time(self.timestamp)
        return f"<{self.pri}>{ts} {self.hostname} {tag}: {self.text}"

    def to_rfc5424(self) -> str:
        """Render in RFC 5424 framing."""
        pid = str(self.pid) if self.pid is not None else "-"
        ts = _format_iso_time(self.timestamp)
        return (
            f"<{self.pri}>1 {ts} {self.hostname} {self.app} {pid} - - {self.text}"
        )


_MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
_MONTH_INDEX = {m: i + 1 for i, m in enumerate(_MONTHS)}

_SECONDS_PER_DAY = 86400.0
# Simulation epoch: days roll over every 86400 s; month length fixed at
# 30 days — good enough for rendering/parsing round trips in the
# simulator, which never crosses real calendar boundaries.
_DAYS_PER_MONTH = 30


def _format_bsd_time(ts: float) -> str:
    day_total = int(ts // _SECONDS_PER_DAY)
    month = _MONTHS[(day_total // _DAYS_PER_MONTH) % 12]
    day = day_total % _DAYS_PER_MONTH + 1
    rem = int(ts % _SECONDS_PER_DAY)
    return f"{month} {day:2d} {rem // 3600:02d}:{rem % 3600 // 60:02d}:{rem % 60:02d}"


def _format_iso_time(ts: float) -> str:
    day_total = int(ts // _SECONDS_PER_DAY)
    year = 2023 + day_total // 360
    month = (day_total // _DAYS_PER_MONTH) % 12 + 1
    day = day_total % _DAYS_PER_MONTH + 1
    rem = int(ts % _SECONDS_PER_DAY)
    return (
        f"{year:04d}-{month:02d}-{day:02d}T"
        f"{rem // 3600:02d}:{rem % 3600 // 60:02d}:{rem % 60:02d}Z"
    )


_PRI_RE = re.compile(r"^<(\d{1,3})>")
_BSD_RE = re.compile(
    r"^(?P<mon>[A-Z][a-z]{2})\s+(?P<day>\d{1,2})\s"
    r"(?P<h>\d{2}):(?P<m>\d{2}):(?P<s>\d{2})\s"
    r"(?P<host>\S+)\s(?P<tag>[^:\[]+)(?:\[(?P<pid>\d+)\])?:\s?(?P<text>.*)$"
)
_5424_RE = re.compile(
    r"^1\s(?P<ts>\S+)\s(?P<host>\S+)\s(?P<app>\S+)\s(?P<pid>\S+)\s\S+\s(?:-|\[.*?\])\s?"
    r"(?P<text>.*)$"
)
_ISO_RE = re.compile(
    r"^(?P<Y>\d{4})-(?P<M>\d{2})-(?P<D>\d{2})T(?P<h>\d{2}):(?P<m>\d{2}):(?P<s>\d{2})"
)


def parse_syslog_line(line: str) -> SyslogMessage:
    """Parse an RFC 3164 or RFC 5424 syslog line.

    Severity/facility default to INFO/USER when no PRI field is
    present (some vendors omit it when writing to local files).

    Raises
    ------
    ValueError
        If the line matches neither format.
    """
    severity, facility = Severity.INFO, Facility.USER
    m = _PRI_RE.match(line)
    if m:
        pri = int(m.group(1))
        if pri > 191:
            raise ValueError(f"invalid PRI value {pri} in syslog line: {line!r}")
        severity = Severity(pri % 8)
        facility = Facility(pri // 8) if pri // 8 in Facility._value2member_map_ else Facility.USER
        line = line[m.end():]

    m5 = _5424_RE.match(line)
    if m5:
        ts = _parse_iso_time(m5.group("ts"))
        pid_s = m5.group("pid")
        return SyslogMessage(
            timestamp=ts,
            hostname=m5.group("host"),
            app=m5.group("app"),
            text=m5.group("text"),
            severity=severity,
            facility=facility,
            pid=int(pid_s) if pid_s.isdigit() else None,
        )

    mb = _BSD_RE.match(line)
    if mb:
        mon = _MONTH_INDEX.get(mb.group("mon"))
        if mon is None:
            raise ValueError(f"unrecognized month in syslog line: {line!r}")
        day_total = (mon - 1) * _DAYS_PER_MONTH + int(mb.group("day")) - 1
        ts = (
            day_total * _SECONDS_PER_DAY
            + int(mb.group("h")) * 3600
            + int(mb.group("m")) * 60
            + int(mb.group("s"))
        )
        pid_s = mb.group("pid")
        return SyslogMessage(
            timestamp=float(ts),
            hostname=mb.group("host"),
            app=mb.group("tag").strip(),
            text=mb.group("text"),
            severity=severity,
            facility=facility,
            pid=int(pid_s) if pid_s else None,
        )
    raise ValueError(f"unparseable syslog line: {line!r}")


def _parse_iso_time(ts: str) -> float:
    m = _ISO_RE.match(ts)
    if not m:
        raise ValueError(f"unparseable RFC5424 timestamp: {ts!r}")
    day_total = (
        (int(m.group("Y")) - 2023) * 360
        + (int(m.group("M")) - 1) * _DAYS_PER_MONTH
        + int(m.group("D")) - 1
    )
    return (
        day_total * _SECONDS_PER_DAY
        + int(m.group("h")) * 3600
        + int(m.group("m")) * 60
        + int(m.group("s"))
    )
