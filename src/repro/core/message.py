"""Syslog message model and wire-format parsing.

The Darwin test-bed forwards its nodes' syslog streams (RFC 3164 "BSD
syslog" and RFC 5424 formats, depending on vendor and firmware age) to
a central relay (§4.2).  This module models a parsed message and parses
both wire formats, because the heterogeneity of framing is itself part
of what makes the corpus heterogeneous.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Facility", "SyslogMessage", "parse_syslog_line"]


class Severity(enum.IntEnum):
    """RFC 5424 severity levels."""

    EMERGENCY = 0
    ALERT = 1
    CRITICAL = 2
    ERROR = 3
    WARNING = 4
    NOTICE = 5
    INFO = 6
    DEBUG = 7


class Facility(enum.IntEnum):
    """RFC 5424 facility codes (the subset seen on compute nodes)."""

    KERN = 0
    USER = 1
    DAEMON = 3
    AUTH = 4
    SYSLOG = 5
    CRON = 9
    AUTHPRIV = 10
    LOCAL0 = 16
    LOCAL1 = 17
    LOCAL2 = 18
    LOCAL3 = 19
    LOCAL4 = 20
    LOCAL5 = 21
    LOCAL6 = 22
    LOCAL7 = 23


@dataclass(frozen=True, slots=True)
class SyslogMessage:
    """A parsed syslog record.

    Attributes
    ----------
    timestamp:
        Seconds since epoch (simulation time in the event-driven
        substrate; real time when parsing live logs).
    hostname:
        Originating node name (e.g. ``cn042``).
    app:
        Application / tag (``kernel``, ``sshd``, ``slurmd`` ...).
    text:
        The free-form message body — the classification input.
    severity, facility:
        Decoded from the PRI field when present.
    pid:
        Process id from the tag, if present.
    """

    timestamp: float
    hostname: str
    app: str
    text: str
    severity: Severity = Severity.INFO
    facility: Facility = Facility.USER
    pid: int | None = None

    @property
    def pri(self) -> int:
        """RFC 5424 PRI value (facility*8 + severity)."""
        return int(self.facility) * 8 + int(self.severity)

    def to_dict(self) -> dict:
        """JSON-ready form; inverse of :meth:`from_dict`.

        The durability layer (WAL records, checkpoints, dead-letter
        files) persists messages in this shape.
        """
        return {
            "ts": self.timestamp,
            "host": self.hostname,
            "app": self.app,
            "text": self.text,
            "sev": int(self.severity),
            "fac": int(self.facility),
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SyslogMessage":
        """Rebuild a message from :meth:`to_dict` output.

        Raises
        ------
        KeyError
            A required field is missing.
        ValueError
            A severity/facility code is out of range.
        """
        return cls(
            timestamp=float(data["ts"]),
            hostname=str(data["host"]),
            app=str(data["app"]),
            text=str(data["text"]),
            severity=Severity(int(data.get("sev", Severity.INFO))),
            facility=Facility(int(data.get("fac", Facility.USER))),
            pid=data.get("pid"),
        )

    def to_rfc3164(self) -> str:
        """Render in BSD-syslog framing (no year, local timestamp)."""
        from repro.stream.rfc import format_rfc3164

        return format_rfc3164(self)

    def to_rfc5424(self) -> str:
        """Render in RFC 5424 framing."""
        from repro.stream.rfc import format_rfc5424

        return format_rfc5424(self)


def parse_syslog_line(line: str) -> SyslogMessage:
    """Parse an RFC 3164 or RFC 5424 syslog line.

    Kept as the historical entry point; the canonical wire-format
    implementation (both directions) lives in :mod:`repro.stream.rfc`,
    shared by the datagen senders and the ingest listener.  Imported
    lazily because ``repro.stream.rfc`` imports this module's types.

    Raises
    ------
    ValueError
        If the line matches neither format.
    """
    from repro.stream.rfc import parse_line

    return parse_line(line)
