"""ASCII dashboards (the Grafana stand-in).

The paper's Grafana front-end shows message-rate panels, top-N
groupings, and category overviews; these renderers produce the same
panels as fixed-width text for terminals, logs, and test assertions.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.stream.opensearch import LogStore

__all__ = [
    "render_rate_panel",
    "render_top_panel",
    "render_overview",
    "render_confusion",
    "render_metrics_panel",
]

_BARS = " ▁▂▃▄▅▆▇█"


def _sparkline(counts: Sequence[float]) -> str:
    arr = np.asarray(counts, dtype=np.float64)
    if arr.size == 0:
        return ""
    hi = arr.max()
    if hi <= 0:
        return _BARS[0] * arr.size
    idx = np.minimum((arr / hi * (len(_BARS) - 1)).astype(int), len(_BARS) - 1)
    return "".join(_BARS[i] for i in idx)


def render_rate_panel(
    times: Sequence[float],
    counts: Sequence[int],
    *,
    title: str = "messages / interval",
    width: int = 60,
) -> str:
    """Sparkline rate panel with min/max annotations."""
    counts = list(counts)
    if len(counts) > width:
        # down-sample by max within equal chunks (peaks must survive)
        chunks = np.array_split(np.asarray(counts, dtype=np.float64), width)
        counts = [float(c.max()) for c in chunks]
    line = _sparkline(counts)
    lo = min(counts) if counts else 0
    hi = max(counts) if counts else 0
    span = ""
    if len(times) >= 2:
        span = f"  t=[{times[0]:.0f}..{times[-1]:.0f}]s"
    return f"{title}{span}\n[{line}] min={lo:.0f} max={hi:.0f}"


def render_top_panel(
    pairs: Sequence[tuple[str, int]], *, title: str = "top", width: int = 40
) -> str:
    """Horizontal bar chart of (name, count) pairs."""
    lines = [title]
    if not pairs:
        return title + "\n(no data)"
    hi = max(c for _n, c in pairs) or 1
    name_w = max(len(n) for n, _c in pairs)
    for name, count in pairs:
        bar = "#" * max(1, int(count / hi * width))
        lines.append(f"{name:<{name_w}} {bar} {count}")
    return "\n".join(lines)


def render_confusion(
    cm, labels: Sequence[str], *, max_label: int = 12
) -> str:
    """ASCII heatmap of a confusion matrix (the Figure 2 panel).

    Cells are shaded by their row-normalized value; exact counts are
    printed for the diagonal and any non-zero off-diagonal cell.
    """
    cm = np.asarray(cm)
    if cm.ndim != 2 or cm.shape[0] != cm.shape[1] or cm.shape[0] != len(labels):
        raise ValueError(
            f"confusion matrix shape {cm.shape} does not match {len(labels)} labels"
        )
    short = [str(l)[:max_label] for l in labels]
    w = max(max(len(s) for s in short), 6)
    header = " " * (w + 1) + " ".join(s.rjust(w) for s in short)
    lines = [header]
    row_sums = cm.sum(axis=1, keepdims=True).astype(float)
    row_sums[row_sums == 0] = 1.0
    shade = cm / row_sums
    for i, name in enumerate(short):
        cells = []
        for j in range(len(short)):
            v = cm[i, j]
            if v == 0:
                cells.append("·".rjust(w))
            else:
                mark = _BARS[min(int(shade[i, j] * (len(_BARS) - 1)), len(_BARS) - 1)]
                cells.append(f"{v}{mark}".rjust(w))
        lines.append(name.rjust(w) + " " + " ".join(cells))
    return "\n".join(lines)


def _fmt_metric_value(v: float) -> str:
    if float(v).is_integer() and abs(v) < 1e15:
        return str(int(v))
    return f"{v:.6g}"


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


#: panel section -> wellknown family-name prefixes, in display order
_PANEL_SECTIONS = (
    ("pipeline", ("repro_pipeline_", "repro_shard_")),
    ("stream", ("repro_stream_",)),
    ("ingest", ("repro_ingest_",)),
    ("broker", ("repro_broker_",)),
    ("store", ("repro_store_",)),
    ("durability", ("repro_wal_", "repro_checkpoint_")),
    ("control", ("repro_control_",)),
    ("faults", ("repro_faults_",)),
    ("e2e + slo", ("repro_e2e_", "repro_trace_", "repro_slo_")),
)


def _panel_section(name: str) -> str:
    for section, prefixes in _PANEL_SECTIONS:
        if name.startswith(prefixes):
            return section
    return "other"


def render_metrics_panel(source, *, title: str = "metrics") -> str:
    """Live registry state as a terminal panel (the Grafana stand-in).

    ``source`` is a :class:`repro.obs.MetricsRegistry` or a snapshot
    dict (:meth:`MetricsRegistry.snapshot`, or a file loaded with
    :func:`repro.obs.load_snapshot`).  Counters show cumulative value
    plus a per-second rate over the registry's uptime when known;
    histograms render a sparkline over their log-scale buckets with
    count/mean and interpolated p50/p95/p99.

    Families are grouped into subsystem sections (pipeline, stream,
    ingest, broker, store, durability, control, faults, e2e + slo) by
    their
    wellknown name prefix; names outside the scheme land in ``other``.
    Section headers are omitted when everything is unprefixed, so
    ad-hoc registries render as a flat panel.
    """
    from repro.obs.metrics import histogram_quantile

    snapshot = source.snapshot() if hasattr(source, "snapshot") else source
    uptime = snapshot.get("uptime_seconds")
    header = title
    if uptime is not None:
        header += f"  (uptime {uptime:.1f}s)"
    lines = [header]
    name_rows: list[tuple[str, str, str]] = []
    for metric in snapshot["metrics"]:
        kind = metric["type"]
        section = _panel_section(metric["name"])
        for sample in metric["samples"]:
            label = f"{metric['name']}{_fmt_labels(sample.get('labels', {}))}"
            if kind == "histogram":
                count = sample.get("count", 0)
                if not count:
                    name_rows.append((section, label, "(no observations)"))
                    continue
                # cumulative -> per-bucket counts for the sparkline,
                # trimmed to the occupied range so shape is visible
                buckets = [
                    (float("inf") if edge == "+Inf" else float(edge), n)
                    for edge, n in sample["buckets"]
                ]
                per_bucket = [
                    n - (buckets[i - 1][1] if i else 0)
                    for i, (_e, n) in enumerate(buckets)
                ]
                occupied = [i for i, n in enumerate(per_bucket) if n > 0]
                lo, hi = occupied[0], occupied[-1]
                spark = _sparkline(per_bucket[lo:hi + 1])
                mean = sample["sum"] / count
                p50, p95, p99 = (histogram_quantile(buckets, q)
                                 for q in (0.5, 0.95, 0.99))
                name_rows.append((
                    section,
                    label,
                    f"[{spark}] n={count} mean={mean:.3g} "
                    f"p50={p50:.3g} p95={p95:.3g} p99={p99:.3g}",
                ))
            else:
                value = sample["value"]
                text = _fmt_metric_value(value)
                if kind == "counter" and uptime:
                    text += f"  ({value / uptime:.2f}/s)"
                name_rows.append((section, label, text))
    if not name_rows:
        return header + "\n(no metrics)"
    name_w = max(len(n) for _s, n, _ in name_rows)
    order = [s for s, _p in _PANEL_SECTIONS] + ["other"]
    grouped = {s: [r for r in name_rows if r[0] == s] for s in order}
    flat = all(s == "other" for s, _n, _b in name_rows)
    for section in order:
        rows = grouped[section]
        if not rows:
            continue
        if not flat:
            lines.append(f"-- {section} --")
        lines += [f"{name:<{name_w}}  {body}" for _s, name, body in rows]
    return "\n".join(lines)


def render_overview(store: LogStore, *, interval_s: float = 60.0) -> str:
    """Cluster overview: rate panel + top hosts/apps/categories."""
    buckets = store.date_histogram(interval_s=interval_s)
    times = [b.start for b in buckets]
    counts = [b.count for b in buckets]
    sev = store.severity_histogram()
    sev_pairs = [(s.name.lower(), n) for s, n in sorted(sev.items())]
    sections = [
        f"=== Tivan overview: {len(store)} documents ===",
        render_rate_panel(times, counts, title=f"rate per {interval_s:.0f}s"),
        render_top_panel(store.terms_aggregation("hostname", top=5), title="top hosts"),
        render_top_panel(store.terms_aggregation("app", top=5), title="top services"),
        render_top_panel(sev_pairs, title="severity"),
    ]
    cats = store.terms_aggregation("category", top=8)
    if cats:
        sections.append(render_top_panel(cats, title="categories"))
    return "\n\n".join(sections)
