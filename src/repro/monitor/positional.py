"""Positional analysis: rack topology and incident localisation (§4.5.2).

"All nodes within a single rack are typically connected to the same
edge switch ... Nodes within a rack share a similar micro-climate" —
so a thermal event hitting many nodes of one rack at once points at the
rack (cooling, containment door), not at the nodes.

:class:`RackTopology` models the data-center as a networkx graph
(core switch — edge switch per rack — nodes); :func:`localize_bursts`
scores racks by how many of their nodes surge simultaneously.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import networkx as nx

from repro.monitor.frequency import Burst

__all__ = ["RackTopology", "RackIncident", "localize_bursts"]


class RackTopology:
    """Physical placement of compute nodes.

    The graph has a ``core`` switch, one edge switch per rack, and one
    vertex per node, so network-sharing questions ("same edge switch?")
    are graph queries.
    """

    def __init__(self, racks: Mapping[str, Sequence[str]]) -> None:
        """``racks`` maps rack name → node hostnames.

        Raises
        ------
        ValueError
            If a hostname appears in two racks.
        """
        self.graph = nx.Graph()
        self.graph.add_node("core", kind="switch")
        self._rack_of: dict[str, str] = {}
        for rack, hosts in racks.items():
            switch = f"switch-{rack}"
            self.graph.add_node(switch, kind="switch")
            self.graph.add_edge("core", switch)
            for h in hosts:
                if h in self._rack_of:
                    raise ValueError(
                        f"host {h!r} placed in both {self._rack_of[h]!r} and {rack!r}"
                    )
                self._rack_of[h] = rack
                self.graph.add_node(h, kind="node", rack=rack)
                self.graph.add_edge(switch, h)

    @classmethod
    def grid(cls, hostnames: Sequence[str], nodes_per_rack: int = 8) -> "RackTopology":
        """Pack hostnames into racks of fixed size, in sorted order."""
        if nodes_per_rack < 1:
            raise ValueError(f"nodes_per_rack must be >= 1, got {nodes_per_rack}")
        hosts = sorted(hostnames)
        racks: dict[str, list[str]] = {}
        for i, h in enumerate(hosts):
            racks.setdefault(f"r{i // nodes_per_rack:02d}", []).append(h)
        return cls(racks)

    def rack_of(self, hostname: str) -> str:
        """Rack containing ``hostname``.

        Raises
        ------
        KeyError
            Unknown host.
        """
        return self._rack_of[hostname]

    def nodes_in(self, rack: str) -> tuple[str, ...]:
        """Hostnames in ``rack``."""
        return tuple(sorted(h for h, r in self._rack_of.items() if r == rack))

    def racks(self) -> tuple[str, ...]:
        """All rack names, sorted."""
        return tuple(sorted(set(self._rack_of.values())))

    def share_edge_switch(self, a: str, b: str) -> bool:
        """True when two nodes hang off the same edge switch."""
        return self.rack_of(a) == self.rack_of(b)

    def network_distance(self, a: str, b: str) -> int:
        """Hop count between two hosts through the switch fabric."""
        return nx.shortest_path_length(self.graph, a, b)


@dataclass(frozen=True)
class RackIncident:
    """A rack-level localisation verdict."""

    rack: str
    affected_nodes: tuple[str, ...]
    fraction_affected: float
    window: tuple[float, float]


def localize_bursts(
    topology: RackTopology,
    bursts_by_host: Mapping[str, Sequence[Burst]],
    *,
    min_fraction: float = 0.5,
    min_nodes: int = 2,
) -> list[RackIncident]:
    """Fold per-node bursts into rack-level incidents.

    A rack is implicated when at least ``min_fraction`` of its nodes
    (and at least ``min_nodes``) burst with overlapping windows — the
    signature of a shared micro-climate or shared-switch problem rather
    than a single bad node.
    """
    if not 0.0 < min_fraction <= 1.0:
        raise ValueError(f"min_fraction must be in (0, 1], got {min_fraction}")
    per_rack: dict[str, list[tuple[str, Burst]]] = defaultdict(list)
    for host, bursts in bursts_by_host.items():
        try:
            rack = topology.rack_of(host)
        except KeyError:
            continue  # host outside the managed topology
        for b in bursts:
            per_rack[rack].append((host, b))
    incidents: list[RackIncident] = []
    for rack, items in per_rack.items():
        rack_nodes = topology.nodes_in(rack)
        # Sweep burst boundaries to find the instant with the most
        # distinct hosts bursting concurrently (a spurious early burst
        # on one node must not mask the real rack-wide window).
        boundaries: list[tuple[float, int, str]] = []
        for h, b in items:
            boundaries.append((b.start, +1, h))
            boundaries.append((b.end, -1, h))
        boundaries.sort(key=lambda e: (e[0], e[1]))
        active: dict[str, int] = defaultdict(int)
        best_hosts: set[str] = set()
        best_t = None
        for t, delta, h in boundaries:
            active[h] += delta
            if active[h] <= 0:
                del active[h]
            if len(active) > len(best_hosts):
                best_hosts = set(active)
                best_t = t
        frac = len(best_hosts) / len(rack_nodes)
        if len(best_hosts) >= min_nodes and frac >= min_fraction:
            concurrent = [
                b for h, b in items
                if h in best_hosts and b.start <= best_t < b.end
            ]
            lo = min(b.start for b in concurrent)
            hi = max(b.end for b in concurrent)
            incidents.append(
                RackIncident(
                    rack=rack,
                    affected_nodes=tuple(sorted(best_hosts)),
                    fraction_affected=frac,
                    window=(lo, hi),
                )
            )
    incidents.sort(key=lambda i: -i.fraction_affected)
    return incidents
