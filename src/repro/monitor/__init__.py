"""Monitoring and diagnosis analyses (§4.5).

Four techniques the paper recommends for finding and diagnosing
test-bed issues, implemented over the :class:`repro.stream.opensearch.
LogStore`:

- :mod:`repro.monitor.frequency` — frequency/temporal analysis: detect
  surges of messages (per cluster, node, or service) against a rolling
  baseline (§4.5.1),
- :mod:`repro.monitor.positional` — positional analysis: the data-
  center rack/switch topology (networkx) and localisation of incidents
  to racks (§4.5.2; the cold-aisle-door scenario),
- :mod:`repro.monitor.perarch` — per-architecture analysis: cross-
  check a node's anomalous readings against its architecture peers to
  filter false sensor indications (§4.5.3),
- :mod:`repro.monitor.dashboard` — ASCII dashboards standing in for the
  Grafana front-end.
"""

from repro.monitor.frequency import BurstDetector, Burst, message_rate_series
from repro.monitor.positional import RackTopology, RackIncident, localize_bursts
from repro.monitor.perarch import ArchPeerComparator, PeerVerdict
from repro.monitor.sensors import SensorSweepAnalyzer, SensorFinding
from repro.monitor.correlate import EventCorrelator, CorrelationResult, CorrelatedPair
from repro.monitor.dashboard import (
    render_rate_panel,
    render_top_panel,
    render_overview,
    render_confusion,
    render_metrics_panel,
)

__all__ = [
    "BurstDetector",
    "Burst",
    "message_rate_series",
    "RackTopology",
    "RackIncident",
    "localize_bursts",
    "ArchPeerComparator",
    "PeerVerdict",
    "SensorSweepAnalyzer",
    "SensorFinding",
    "EventCorrelator",
    "CorrelationResult",
    "CorrelatedPair",
    "render_rate_panel",
    "render_top_panel",
    "render_overview",
    "render_confusion",
    "render_metrics_panel",
]
