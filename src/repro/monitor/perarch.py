"""Per-architecture analysis (§4.5.3).

"Occasionally if a node is experiencing an issue that appears to be
interesting or relevant it may be a false indication.  It's worth
checking to see if the same message or data is appearing on other
compute nodes with the same architecture ... Fans or thermal sensors
will occasionally report through IPMI that they are not functioning or
the reading ... [is] unusually high or low, however when comparing
readings from other nodes from the same architecture the readings are
exactly the same."

:class:`ArchPeerComparator` implements both checks:

- **message check**: does the same masked message shape appear on most
  architecture peers?  If so it is a family-wide quirk, not a node
  anomaly;
- **reading check**: is a sensor reading an outlier against the peer
  distribution (robust z-score), or within family norms?
"""

from __future__ import annotations

import enum
from collections import defaultdict
from collections.abc import Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.textproc.normalize import MaskingNormalizer

__all__ = ["PeerVerdict", "ArchPeerComparator"]


class PeerVerdict(enum.Enum):
    """Outcome of a peer comparison."""

    ANOMALOUS = "anomalous"  # unique to this node → investigate
    FAMILY_WIDE = "family_wide"  # peers show the same → likely benign quirk
    NO_PEERS = "no_peers"  # nothing to compare against


@dataclass
class ArchPeerComparator:
    """Cross-node comparison within architecture families.

    Parameters
    ----------
    arch_of:
        hostname → architecture string (from the vendor profiles).
    peer_fraction:
        Fraction of peers that must show a message shape for it to
        count as family-wide.
    z_threshold:
        Robust z-score beyond which a reading is anomalous vs peers.
    """

    arch_of: Mapping[str, str]
    peer_fraction: float = 0.5
    z_threshold: float = 3.5

    _shapes: dict[str, dict[str, set[str]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(set)),
        init=False, repr=False,
    )
    _readings: dict[tuple[str, str], dict[str, list[float]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(list)),
        init=False, repr=False,
    )

    def __post_init__(self) -> None:
        if not 0.0 < self.peer_fraction <= 1.0:
            raise ValueError(
                f"peer_fraction must be in (0, 1], got {self.peer_fraction}"
            )
        self._normalizer = MaskingNormalizer()

    def _arch(self, hostname: str) -> str:
        arch = self.arch_of.get(hostname)
        if arch is None:
            raise KeyError(f"unknown host {hostname!r} (no architecture mapping)")
        return arch

    # -- message shapes ----------------------------------------------------

    def observe_message(self, hostname: str, text: str) -> None:
        """Record that ``hostname`` emitted the (masked) shape of ``text``."""
        arch = self._arch(hostname)
        shape = self._normalizer.normalize(text)
        self._shapes[arch][shape].add(hostname)

    def check_message(self, hostname: str, text: str) -> PeerVerdict:
        """Is this message shape unique to the node, or family-wide?"""
        arch = self._arch(hostname)
        peers = {h for h, a in self.arch_of.items() if a == arch and h != hostname}
        if not peers:
            return PeerVerdict.NO_PEERS
        shape = self._normalizer.normalize(text)
        reporters = self._shapes[arch].get(shape, set()) - {hostname}
        if len(reporters) / len(peers) >= self.peer_fraction:
            return PeerVerdict.FAMILY_WIDE
        return PeerVerdict.ANOMALOUS

    # -- sensor readings ------------------------------------------------------

    def observe_reading(self, hostname: str, sensor: str, value: float) -> None:
        """Record one sensor sample (e.g. an IPMI temperature)."""
        arch = self._arch(hostname)
        self._readings[(arch, sensor)][hostname].append(float(value))

    def check_reading(self, hostname: str, sensor: str, value: float) -> PeerVerdict:
        """Compare a reading against same-architecture peers' samples."""
        arch = self._arch(hostname)
        per_host = self._readings.get((arch, sensor), {})
        peer_vals = [
            v for h, vals in per_host.items() if h != hostname for v in vals
        ]
        if len(peer_vals) < 3:
            return PeerVerdict.NO_PEERS
        arr = np.asarray(peer_vals)
        med = float(np.median(arr))
        mad = float(np.median(np.abs(arr - med)))
        scale = 1.4826 * mad if mad > 0 else max(float(arr.std()), 1e-9)
        z = abs(value - med) / scale
        return PeerVerdict.ANOMALOUS if z > self.z_threshold else PeerVerdict.FAMILY_WIDE
