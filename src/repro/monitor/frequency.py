"""Frequency and temporal analysis (§4.5.1).

"A sudden influx of a large quantity of new syslog messages can be
indicative of an issue.  By visualizing syslog data as a graph that
shows number of messages on one axis, and time in the other axis, you
can identify points in time where something may have been going wrong."

:class:`BurstDetector` formalizes the eyeball test: message counts per
interval are compared against a rolling median/MAD baseline; intervals
whose robust z-score exceeds a threshold open a burst, which closes
when the rate normalizes.  Grouping by node or service narrows the
surge to "which machines specifically are suddenly being much more
noisy".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stream.opensearch import LogStore

__all__ = ["Burst", "BurstDetector", "message_rate_series"]


def message_rate_series(
    store: LogStore,
    *,
    interval_s: float,
    term: str | None = None,
    t0: float | None = None,
    t1: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(bucket start times, counts) from a date-histogram query.

    ``term`` narrows to one node/service/token (the §4.5.1 grouping).
    """
    buckets = store.date_histogram(interval_s=interval_s, term=term, t0=t0, t1=t1)
    if not buckets:
        return np.empty(0), np.empty(0, dtype=np.int64)
    times = np.asarray([b.start for b in buckets])
    counts = np.asarray([b.count for b in buckets], dtype=np.int64)
    return times, counts


@dataclass(frozen=True)
class Burst:
    """One detected surge."""

    start: float
    end: float
    peak_rate: float  # messages per interval at the peak
    peak_z: float
    total_messages: int


@dataclass
class BurstDetector:
    """Rolling robust-z-score burst detection.

    Parameters
    ----------
    z_threshold:
        Robust z-score that opens a burst.
    close_threshold:
        Score below which an open burst closes.
    baseline_window:
        Trailing intervals used for the median/MAD baseline.
    min_rate:
        Absolute counts floor — tiny fluctuations on a silent stream
        are never bursts.
    """

    z_threshold: float = 4.0
    close_threshold: float = 1.5
    baseline_window: int = 12
    min_rate: float = 5.0

    def detect(self, times: np.ndarray, counts: np.ndarray) -> list[Burst]:
        """Find bursts in an evenly-spaced rate series.

        Raises
        ------
        ValueError
            On mismatched series lengths.
        """
        times = np.asarray(times, dtype=np.float64)
        counts = np.asarray(counts, dtype=np.float64)
        if times.shape != counts.shape:
            raise ValueError(
                f"times and counts lengths differ: {times.shape} vs {counts.shape}"
            )
        n = len(times)
        if n == 0:
            return []
        interval = float(times[1] - times[0]) if n > 1 else 1.0
        bursts: list[Burst] = []
        open_start: float | None = None
        peak = peak_z = total = 0.0
        for i in range(n):
            lo = max(0, i - self.baseline_window)
            base = counts[lo:i]
            if base.size >= 3:
                med = float(np.median(base))
                mad = float(np.median(np.abs(base - med)))
                scale = 1.4826 * mad if mad > 0 else max(np.std(base), 1.0)
                z = (counts[i] - med) / scale
            else:
                z = 0.0
            surging = z > self.z_threshold and counts[i] >= self.min_rate
            if open_start is None:
                if surging:
                    open_start = float(times[i])
                    peak, peak_z, total = counts[i], z, counts[i]
            else:
                if z > self.close_threshold and counts[i] >= self.min_rate:
                    total += counts[i]
                    if counts[i] > peak:
                        peak, peak_z = counts[i], max(peak_z, z)
                else:
                    bursts.append(
                        Burst(
                            start=open_start,
                            end=float(times[i]),
                            peak_rate=float(peak),
                            peak_z=float(peak_z),
                            total_messages=int(total),
                        )
                    )
                    open_start = None
        if open_start is not None:
            bursts.append(
                Burst(
                    start=open_start,
                    end=float(times[-1]) + interval,
                    peak_rate=float(peak),
                    peak_z=float(peak_z),
                    total_messages=int(total),
                )
            )
        return bursts

    def detect_in_store(
        self,
        store: LogStore,
        *,
        interval_s: float,
        term: str | None = None,
    ) -> list[Burst]:
        """Convenience: histogram the store then detect."""
        times, counts = message_rate_series(store, interval_s=interval_s, term=term)
        return self.detect(times, counts)
