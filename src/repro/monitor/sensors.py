"""Sensor-sweep analysis: per-architecture verification of telemetry.

Turns raw :class:`~repro.datagen.telemetry.TelemetrySample` streams into
the §4.5.3 triage an administrator needs:

- **node anomalies** — a node whose recent readings are outliers
  against its architecture peers (real problem, or faulty sensor on
  that node: either way, someone should look);
- **suppressed family quirks** — readings that look alarming in
  absolute terms but are identical across the architecture family
  ("in reality the system is operating nominally");
- **rack escalation** — node anomalies concentrated in one rack are
  folded into a positional incident (the cooling story), not N node
  tickets.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.datagen.telemetry import TelemetrySample
from repro.monitor.positional import RackTopology

__all__ = ["SensorFinding", "SensorSweepAnalyzer"]


@dataclass(frozen=True)
class SensorFinding:
    """One flagged (host, sensor) pair."""

    hostname: str
    sensor: str
    observed: float
    peer_median: float
    z: float


@dataclass
class SensorSweepAnalyzer:
    """Peer-verified telemetry analysis.

    Parameters
    ----------
    arch_of:
        hostname → architecture mapping.
    z_threshold:
        Robust z-score against peers above which a node is anomalous.
    quirk_span:
        If the peer distribution's own spread (MAD) is below this
        fraction of the global sensor spread, identical-looking peers
        are treated as a family-wide quirk and per-node checks are
        suppressed for that (arch, sensor).
    """

    arch_of: Mapping[str, str]
    z_threshold: float = 4.0
    window_samples: int = 5

    _readings: dict[tuple[str, str], dict[str, list[float]]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(list)),
        init=False, repr=False,
    )

    def ingest(self, samples: Iterable[TelemetrySample]) -> None:
        """Add sweep samples (keeps the trailing window per host/sensor)."""
        for s in samples:
            arch = self.arch_of.get(s.hostname)
            if arch is None:
                continue  # unmanaged host
            buf = self._readings[(arch, s.sensor)][s.hostname]
            buf.append(s.value)
            if len(buf) > self.window_samples:
                del buf[: len(buf) - self.window_samples]

    def node_anomalies(self) -> list[SensorFinding]:
        """Hosts whose recent readings are outliers vs their peers."""
        findings: list[SensorFinding] = []
        for (arch, sensor), per_host in self._readings.items():
            if len(per_host) < 3:
                continue  # too few peers to judge (§4.5.3 needs a family)
            medians = {h: float(np.median(v)) for h, v in per_host.items()}
            # Medians of short windows collapse the sampling noise, so
            # the peer MAD alone understates normal variation; floor the
            # scale with the raw per-sample spread of the family.
            all_samples = np.concatenate([np.asarray(v) for v in per_host.values()])
            sample_scale = 1.4826 * float(
                np.median(np.abs(all_samples - np.median(all_samples)))
            )
            for host, observed in medians.items():
                peers = np.asarray([m for h, m in medians.items() if h != host])
                med = float(np.median(peers))
                mad = float(np.median(np.abs(peers - med)))
                scale = 1.4826 * mad if mad > 0 else max(float(peers.std()), 1e-9)
                scale = max(scale, 0.5 * sample_scale, 1e-9)
                z = abs(observed - med) / scale
                if z > self.z_threshold:
                    findings.append(SensorFinding(
                        hostname=host, sensor=sensor,
                        observed=observed, peer_median=med, z=float(z),
                    ))
        findings.sort(key=lambda f: -f.z)
        return findings

    def family_quirks(self, *, alarm_bands: Mapping[str, tuple[float, float]]) -> list[tuple[str, str, float]]:
        """(arch, sensor, value) families whose *shared* reading is out
        of the plausible band — alarming in absolute terms, identical
        across peers, hence a reporting quirk to suppress.

        Parameters
        ----------
        alarm_bands:
            sensor → (low, high) plausible range; a family median
            outside it with near-zero peer spread is a quirk.
        """
        quirks: list[tuple[str, str, float]] = []
        for (arch, sensor), per_host in self._readings.items():
            band = alarm_bands.get(sensor)
            if band is None or len(per_host) < 3:
                continue
            medians = np.asarray([float(np.median(v)) for v in per_host.values()])
            family_median = float(np.median(medians))
            spread = float(np.median(np.abs(medians - family_median)))
            lo, hi = band
            if (family_median < lo or family_median > hi) and spread < 1e-6:
                quirks.append((arch, sensor, family_median))
        return quirks

    def rack_incidents(
        self, topology: RackTopology, *, min_fraction: float = 0.5
    ) -> list[tuple[str, str, tuple[str, ...]]]:
        """(rack, sensor, hosts) where anomalies concentrate in one rack."""
        by_rack_sensor: dict[tuple[str, str], set[str]] = defaultdict(set)
        for f in self.node_anomalies():
            try:
                rack = topology.rack_of(f.hostname)
            except KeyError:
                continue
            by_rack_sensor[(rack, f.sensor)].add(f.hostname)
        out = []
        for (rack, sensor), hosts in by_rack_sensor.items():
            frac = len(hosts) / len(topology.nodes_in(rack))
            if frac >= min_fraction:
                out.append((rack, sensor, tuple(sorted(hosts))))
        out.sort(key=lambda rsh: -len(rsh[2]))
        return out
