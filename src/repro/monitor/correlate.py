"""Temporal correlation of log events with facility events (§4.5.1).

The paper's frequency-analysis section suggests correlating log events
with out-of-band facility data: "you could correlate someones access
control to the data center room with a log that is identified as a
security event, such as someone plugging in a USB device", or a
cold-aisle door-open event with subsequent thermal shutdowns.

:class:`EventCorrelator` implements that join: given a *candidate*
event stream (badge swipes, door sensors) and a *target* stream
(classified log events), it finds candidate events followed by target
events within a lag window, and scores the overall association against
a permutation baseline (shifting the candidate stream cyclically) so
that coincidental alignment on busy streams does not masquerade as
correlation.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["CorrelatedPair", "CorrelationResult", "EventCorrelator"]


@dataclass(frozen=True)
class CorrelatedPair:
    """One candidate event and the target events that followed it."""

    candidate_time: float
    candidate_label: str
    target_times: tuple[float, ...]
    lag_s: float  # lag to the first following target event


@dataclass(frozen=True)
class CorrelationResult:
    """Association between the two streams.

    Attributes
    ----------
    pairs:
        Candidate events with ≥1 target event inside the window.
    hit_rate:
        Fraction of candidate events followed by a target event.
    baseline_rate:
        Mean hit rate under cyclic time shifts of the candidates.
    lift:
        ``hit_rate / baseline_rate`` (1.0 = no association).
    p_value:
        Fraction of shifts with hit rate ≥ the observed one.
    """

    pairs: tuple[CorrelatedPair, ...]
    hit_rate: float
    baseline_rate: float
    lift: float
    p_value: float


@dataclass
class EventCorrelator:
    """Lagged-window correlation between two event streams.

    Parameters
    ----------
    max_lag_s:
        Targets count when they occur within this many seconds *after*
        a candidate event.
    n_shifts:
        Cyclic shifts for the permutation baseline.
    seed:
        Shift-sampling seed.
    """

    max_lag_s: float = 120.0
    n_shifts: int = 200
    seed: int = 0

    def correlate(
        self,
        candidate_times: Sequence[float],
        target_times: Sequence[float],
        *,
        candidate_labels: Sequence[str] | None = None,
        horizon: float | None = None,
    ) -> CorrelationResult:
        """Correlate two sorted-or-unsorted time sequences.

        Raises
        ------
        ValueError
            On empty streams or mismatched label length.
        """
        if self.max_lag_s <= 0:
            raise ValueError(f"max_lag_s must be positive, got {self.max_lag_s}")
        cand = np.sort(np.asarray(candidate_times, dtype=np.float64))
        targ = np.sort(np.asarray(target_times, dtype=np.float64))
        if cand.size == 0 or targ.size == 0:
            raise ValueError("both event streams must be non-empty")
        if candidate_labels is not None and len(candidate_labels) != cand.size:
            raise ValueError("candidate_labels length mismatch")
        labels = list(candidate_labels) if candidate_labels is not None else [
            "event"
        ] * cand.size

        pairs: list[CorrelatedPair] = []
        hits = 0
        targ_list = targ.tolist()
        for t, lab in zip(cand.tolist(), labels):
            lo = bisect_left(targ_list, t)
            hi = bisect_right(targ_list, t + self.max_lag_s)
            if hi > lo:
                hits += 1
                followers = tuple(targ_list[lo:hi])
                pairs.append(CorrelatedPair(
                    candidate_time=t,
                    candidate_label=lab,
                    target_times=followers,
                    lag_s=followers[0] - t,
                ))
        hit_rate = hits / cand.size

        span = horizon if horizon is not None else max(cand[-1], targ[-1]) + 1.0
        rng = np.random.default_rng(self.seed)
        base_rates = []
        for _ in range(self.n_shifts):
            shift = float(rng.uniform(self.max_lag_s, span - self.max_lag_s)) \
                if span > 2 * self.max_lag_s else float(rng.uniform(0, span))
            shifted = np.sort((cand + shift) % span)
            s_hits = 0
            for t in shifted.tolist():
                lo = bisect_left(targ_list, t)
                hi = bisect_right(targ_list, t + self.max_lag_s)
                if hi > lo:
                    s_hits += 1
            base_rates.append(s_hits / cand.size)
        baseline = float(np.mean(base_rates)) if base_rates else 0.0
        p_value = float(np.mean([r >= hit_rate for r in base_rates])) \
            if base_rates else 1.0
        lift = hit_rate / baseline if baseline > 0 else float("inf")
        return CorrelationResult(
            pairs=tuple(pairs),
            hit_rate=hit_rate,
            baseline_rate=baseline,
            lift=lift,
            p_value=p_value,
        )
