"""Partitioned log broker: the spine between senders and consumers.

The paper's Tivan pipeline (§4: syslog → Fluentd → OpenSearch) couples
ingest to classification — the forwarder hands messages straight to
the classifier stage, so neither side can scale or fail independently.
This module decouples them the way production log pipelines do
(IBM 2025 makes the same move): noisy senders publish into an
append-only, partitioned log; an elastic consumer fleet polls at its
own pace; progress is an *offset*, not an ack per message.

Design
------
- **Partitions** are append-only record sequences.  The default
  partitioner keys by hostname, so one node's messages stay totally
  ordered — and, critically for the durability layer, a partition's
  contents are a pure function of the trace (a host's messages in
  trace order), which makes offsets stable identities across crash
  and resume.  A hashed partitioner (``n_partitions``) models the
  per-tenant layout instead.
- **Segments**: each partition stores records in fixed-size segments;
  a full segment is sealed (tuple, immutable) and a fresh one opened.
  This mirrors on-disk log brokers and bounds the cost of any future
  retention work to whole segments.
- **Consumer groups** own a committed offset per partition.
  Partition assignment is round-robin over the sorted partition keys
  among the sorted member names, recomputed on the fly so partitions
  created after subscription are picked up without a rebalance
  protocol.  ``poll`` advances a member's *position*; ``commit``
  advances the group's *committed* offset.  Positions reset to the
  committed offset on :meth:`reset_to_committed` — exactly what a
  restarted consumer does — giving at-least-once delivery.
- **Sparse offsets**: ``publish`` accepts an explicit offset so the
  durable path can replay a *subset* of a trace (only not-yet-settled
  events) while keeping every record's offset identical to its first
  life.  Consumers tolerate gaps; a committed offset means "everything
  below this is settled", never "this many records exist".

Fault sites (armed via :class:`repro.faults.FaultPlan`):

- ``broker.partition_stall`` — the target partition refuses appends
  and fetches until the site fires again (stall/heal churn); refused
  publishes return ``None`` so callers count, never lose silently.
- ``broker.commit_lost`` — an offset commit vanishes in flight; the
  group's committed offset stays behind, so replay re-delivers
  (at-least-once, never lost).
"""

from __future__ import annotations

import threading
import time
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.message import SyslogMessage
from repro.faults.plan import (
    SITE_COMMIT_LOST,
    SITE_PARTITION_STALL,
    FaultInjector,
)
from repro.obs import wellknown
from repro.obs.propagation import TraceContext, record_hop

__all__ = [
    "BrokerRecord",
    "BrokerStats",
    "ConsumerGroup",
    "LogBroker",
    "Partition",
    "hash_partitioner",
    "host_partitioner",
]

DEFAULT_SEGMENT_RECORDS = 4096

#: publish-side registry syncs are batched; any poll flushes the
#: remainder, so scrapes lag a publish burst by at most one poll cycle
_PUBLISH_SYNC_EVERY = 1024


@dataclass(frozen=True, slots=True)
class BrokerRecord:
    """One record in a partition.

    ``ident`` carries the durable identity of the message (its trace
    position) when the publisher is journal-backed; consumers hand it
    to the journal so accept records survive the broker hop.
    ``ctx`` is the cross-hop trace context for head-sampled messages
    (chained past the publish hop); ``pub_s`` is the broker-clock
    publish time every record carries, the base of queue-age and
    lag-age signals.
    """

    partition: str
    offset: int
    message: SyslogMessage
    ident: int | None = None
    ctx: TraceContext | None = None
    pub_s: float | None = None


class Partition:
    """An append-only sequence of records, stored in sealed segments."""

    __slots__ = ("key", "segment_records", "_sealed", "_active", "next_offset")

    def __init__(self, key: str, *, segment_records: int = DEFAULT_SEGMENT_RECORDS) -> None:
        self.key = key
        self.segment_records = segment_records
        self._sealed: list[tuple[BrokerRecord, ...]] = []
        self._active: list[BrokerRecord] = []
        #: the offset the next blind append receives (last offset + 1;
        #: sparse replays can leave gaps below it)
        self.next_offset = 0

    def append(self, record: BrokerRecord) -> None:
        """Append one record; offsets must be monotonic (gaps allowed)."""
        if record.offset < self.next_offset:
            raise ValueError(
                f"partition {self.key!r}: non-monotonic append at offset "
                f"{record.offset} (next is {self.next_offset})"
            )
        self._active.append(record)
        self.next_offset = record.offset + 1
        if len(self._active) >= self.segment_records:
            self._sealed.append(tuple(self._active))
            self._active.clear()

    def read_from(self, offset: int, max_records: int) -> list[BrokerRecord]:
        """Records with ``offset >= offset``, oldest first, up to the cap."""
        out: list[BrokerRecord] = []
        for segment in self._sealed:
            # segments are offset-ordered; skip ones entirely below the cursor
            if segment[-1].offset < offset:
                continue
            for rec in segment:
                if rec.offset >= offset:
                    out.append(rec)
                    if len(out) >= max_records:
                        return out
        for rec in self._active:
            if rec.offset >= offset:
                out.append(rec)
                if len(out) >= max_records:
                    break
        return out

    def __len__(self) -> int:
        return sum(len(s) for s in self._sealed) + len(self._active)

    @property
    def n_segments(self) -> int:
        return len(self._sealed) + (1 if self._active or not self._sealed else 0)


@dataclass
class ConsumerGroup:
    """Progress of one named group: committed offsets plus live cursors."""

    name: str
    members: list[str] = field(default_factory=list)
    committed: dict[str, int] = field(default_factory=dict)
    positions: dict[str, int] = field(default_factory=dict)
    #: round-robin cursor so poll spreads fairly over assigned partitions
    rr_cursor: int = 0


@dataclass
class BrokerStats:
    """Broker-lifetime counts (the reconciliation view)."""

    published: int = 0
    publish_refused: int = 0
    polled: int = 0
    commits: int = 0
    commits_lost: int = 0
    stall_events: int = 0


def host_partitioner(message: SyslogMessage) -> str:
    """Per-host layout: one partition per originating node."""
    return message.hostname


def hash_partitioner(n_partitions: int) -> Callable[[SyslogMessage], str]:
    """Per-tenant layout: hostname hashed onto ``n_partitions`` buckets.

    Uses CRC32, not ``hash()``, so the layout is stable across
    processes (``PYTHONHASHSEED`` randomizes ``str.__hash__``).
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")

    def _partition(message: SyslogMessage) -> str:
        bucket = zlib.crc32(message.hostname.encode()) % n_partitions
        return f"p{bucket:03d}"

    return _partition


class LogBroker:
    """In-process partitioned log with consumer groups.

    Thread-safe: the asyncio listener publishes from the event-loop
    thread while consumers may poll from another (the benchmark does
    exactly this); one lock guards partition and group state.
    """

    def __init__(
        self,
        *,
        partitioner: Callable[[SyslogMessage], str] | None = None,
        n_partitions: int | None = None,
        segment_records: int = DEFAULT_SEGMENT_RECORDS,
        fault_injector: FaultInjector | None = None,
        registry=None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if partitioner is not None and n_partitions is not None:
            raise ValueError("pass either partitioner or n_partitions, not both")
        if n_partitions is not None:
            partitioner = hash_partitioner(n_partitions)
        self.partitioner = partitioner or host_partitioner
        self.segment_records = segment_records
        self.injector = fault_injector
        self.partitions: dict[str, Partition] = {}
        self.groups: dict[str, ConsumerGroup] = {}
        self.stats = BrokerStats()
        self._stalled: str | None = None
        self._lock = threading.Lock()
        self._clock = clock
        # publish runs per message: bind the unlabeled children once,
        # and batch the published counter (listener-style) — a registry
        # increment per record would dominate the telemetry budget
        self._pub_unsynced = 0
        self._m_published = wellknown.broker_published(registry).labels()
        self._m_refused = wellknown.broker_publish_refused(registry).labels()
        self._m_polled = wellknown.broker_polled(registry)
        self._m_commits = wellknown.broker_commits(registry)
        self._m_commits_lost = wellknown.broker_commits_lost(registry).labels()
        self._m_lag = wellknown.broker_lag(registry)
        self._m_lag_age = wellknown.broker_lag_age_seconds(registry)
        self._m_partitions = wellknown.broker_partitions(registry).labels()
        self._m_stalls = wellknown.broker_partition_stalls(registry).labels()
        self._m_queue_age = wellknown.broker_queue_age_seconds(registry).labels()

    # -- publishing ----------------------------------------------------

    def publish(
        self,
        message: SyslogMessage,
        *,
        key: str | None = None,
        ident: int | None = None,
        offset: int | None = None,
        ctx: TraceContext | None = None,
    ) -> BrokerRecord | None:
        """Append ``message`` to its partition.

        Returns the stored record, or ``None`` when the partition is
        stalled (the caller must count the refusal — nothing here is
        silent).  ``offset`` pins an explicit (sparse) offset for
        durable replay; omitted, the partition's next dense offset is
        used.  ``ctx`` attaches a sampled trace context: the publish
        hop is recorded and the stored record carries the chained
        context for the consumer side.
        """
        key = key if key is not None else self.partitioner(message)
        with self._lock:
            if self.injector is not None and self.injector.should_fire(
                SITE_PARTITION_STALL
            ):
                if self._stalled is None:
                    self._stalled = key
                    self.stats.stall_events += 1
                    self._m_stalls.inc()
                else:
                    self._stalled = None
            if self._stalled == key:
                self.stats.publish_refused += 1
                self._m_refused.inc()
                return None
            part = self.partitions.get(key)
            if part is None:
                part = self.partitions[key] = Partition(
                    key, segment_records=self.segment_records
                )
                self._m_partitions.set(len(self.partitions))
            pub_s = self._clock()
            if ctx is not None:
                ctx = record_hop(
                    ctx, "broker.publish", pub_s, partition=key
                )
            record = BrokerRecord(
                partition=key,
                offset=offset if offset is not None else part.next_offset,
                message=message,
                ident=ident,
                ctx=ctx,
                pub_s=pub_s,
            )
            part.append(record)
            self.stats.published += 1
            self._pub_unsynced += 1
            if self._pub_unsynced >= _PUBLISH_SYNC_EVERY:
                self._m_published.inc(self._pub_unsynced)
                self._pub_unsynced = 0
            return record

    # -- consumer groups -----------------------------------------------

    def _group(self, name: str) -> ConsumerGroup:
        group = self.groups.get(name)
        if group is None:
            group = self.groups[name] = ConsumerGroup(name=name)
        return group

    def subscribe(self, group: str, member: str) -> None:
        """Add ``member`` to ``group`` (idempotent)."""
        with self._lock:
            g = self._group(group)
            if member not in g.members:
                g.members.append(member)
                g.members.sort()

    def assignment(self, group: str, member: str) -> list[str]:
        """Partitions ``member`` currently owns (round-robin layout).

        Recomputed against the live partition set, so partitions that
        appear after subscription are owned without a rebalance.
        """
        with self._lock:
            return self._assignment(group, member)

    def _assignment(self, group: str, member: str) -> list[str]:
        g = self._group(group)
        if member not in g.members:
            raise ValueError(f"member {member!r} is not subscribed to {group!r}")
        rank = g.members.index(member)
        n = len(g.members)
        return [
            key
            for i, key in enumerate(sorted(self.partitions))
            if i % n == rank
        ]

    def poll(
        self, group: str, member: str = "member-0", *, max_records: int = 256
    ) -> list[BrokerRecord]:
        """Fetch up to ``max_records`` from the member's partitions.

        Starts each partition at the group's live position (initially
        the committed offset) and advances it past what is returned.
        Stalled partitions are skipped — their lag simply grows.
        """
        with self._lock:
            g = self._group(group)
            if member not in g.members:
                g.members.append(member)
                g.members.sort()
            if self._pub_unsynced:
                self._m_published.inc(self._pub_unsynced)
                self._pub_unsynced = 0
            assigned = self._assignment(group, member)
            if not assigned:
                return []
            out: list[BrokerRecord] = []
            n = len(assigned)
            for i in range(n):
                key = assigned[(g.rr_cursor + i) % n]
                if key == self._stalled:
                    continue
                pos = g.positions.get(key)
                if pos is None:
                    pos = g.positions[key] = g.committed.get(key, 0)
                recs = self.partitions[key].read_from(pos, max_records - len(out))
                if recs:
                    out.extend(recs)
                    g.positions[key] = recs[-1].offset + 1
                if len(out) >= max_records:
                    break
            g.rr_cursor = (g.rr_cursor + 1) % max(n, 1)
            if out:
                self.stats.polled += len(out)
                self._m_polled.inc(len(out), group=group)
                # queue-age dwell: sampled (traced) records only, so the
                # histogram costs nothing on the untraced hot path
                now: float | None = None
                for rec in out:
                    if rec.ctx is not None and rec.pub_s is not None:
                        if now is None:
                            now = self._clock()
                        self._m_queue_age.observe(now - rec.pub_s)
            # the lag gauges scan every partition, so they refresh once
            # per poll — not on each per-partition commit — and only
            # when a live registry will actually keep the value
            if self._m_lag.live:
                self._m_lag.set(self._lag(g), group=group)
                self._m_lag_age.set(self._lag_age(g), group=group)
            return out

    def commit(self, group: str, partition: str, offset: int) -> bool:
        """Commit ``offset`` (the next offset to read) for one partition.

        Commits are max-wins — a stale commit never rewinds progress.
        Returns False when the ``broker.commit_lost`` site eats the
        commit; the journal remains the durable source of truth and
        replay after a crash re-delivers from the stale offset
        (at-least-once).
        """
        with self._lock:
            if self.injector is not None and self.injector.should_fire(
                SITE_COMMIT_LOST
            ):
                self.stats.commits_lost += 1
                self._m_commits_lost.inc()
                return False
            g = self._group(group)
            if offset > g.committed.get(partition, 0):
                g.committed[partition] = offset
            self.stats.commits += 1
            self._m_commits.inc(group=group)
            return True

    def committed(self, group: str, partition: str) -> int:
        """The group's committed offset for ``partition`` (0 if none)."""
        with self._lock:
            return self._group(group).committed.get(partition, 0)

    def restore_offsets(self, group: str, offsets: dict[str, int]) -> None:
        """Seed committed offsets (and cursors) from the durable journal.

        Called on crash recovery *before* consumers poll: the journal's
        flush records — not the broker's lost in-memory state — define
        where consumption resumes.
        """
        with self._lock:
            g = self._group(group)
            for partition, offset in offsets.items():
                if offset > g.committed.get(partition, 0):
                    g.committed[partition] = offset
                g.positions.pop(partition, None)

    def reset_to_committed(self, group: str) -> None:
        """Drop live cursors; the next poll re-reads from committed."""
        with self._lock:
            self._group(group).positions.clear()

    # -- introspection -------------------------------------------------

    def _lag(self, g: ConsumerGroup) -> int:
        return sum(
            max(0, p.next_offset - g.committed.get(key, 0))
            for key, p in self.partitions.items()
        )

    def _lag_age(self, g: ConsumerGroup) -> float:
        """Age of the group's oldest uncommitted record, in clock seconds.

        Lag in *records* says how much is queued; lag in *seconds* says
        how stale the consumer is — the signal an autoscaler actually
        wants.  0.0 when fully caught up.
        """
        now = self._clock()
        oldest: float | None = None
        for key, p in self.partitions.items():
            committed = g.committed.get(key, 0)
            if p.next_offset <= committed:
                continue
            head = p.read_from(committed, 1)
            if head and head[0].pub_s is not None:
                if oldest is None or head[0].pub_s < oldest:
                    oldest = head[0].pub_s
        return 0.0 if oldest is None else max(0.0, now - oldest)

    def lag_age(self, group: str) -> float:
        """Public wrapper: oldest-uncommitted-record age for ``group``."""
        with self._lock:
            return self._lag_age(self._group(group))

    def lag(self, group: str) -> int:
        """Records published but not yet committed by ``group``.

        Computed against ``next_offset``, so sparse replays (gaps from
        already-settled events) do not inflate it.
        """
        with self._lock:
            return self._lag(self._group(group))

    def total_records(self) -> int:
        """Records currently held across every partition."""
        with self._lock:
            return sum(len(p) for p in self.partitions.values())

    @property
    def stalled_partition(self) -> str | None:
        return self._stalled

    def describe(self) -> dict:
        """A JSON-ready snapshot for summaries and debugging."""
        with self._lock:
            return {
                "partitions": {
                    key: {"records": len(p), "next_offset": p.next_offset,
                          "segments": p.n_segments}
                    for key, p in sorted(self.partitions.items())
                },
                "groups": {
                    name: {"members": list(g.members),
                           "committed": dict(sorted(g.committed.items())),
                           "lag": self._lag(g)}
                    for name, g in sorted(self.groups.items())
                },
                "stats": vars(self.stats).copy(),
                "stalled": self._stalled,
            }
