"""Per-tenant fair-share admission: a deficit-round-robin quota.

The listener's original token bucket is a single global valve: one
abusive sender draining it starves every compliant tenant behind the
same socket.  :class:`DeficitRoundRobin` replaces it with max-min
fairness over tenants (the host/app key of each parsed message):

- tokens accrue into one global pool at ``rate`` per second (capped at
  ``burst``), exactly like the bucket — the *aggregate* admit rate is
  unchanged;
- the pool is dealt to tenants round-robin, one ``quantum`` per visit,
  so every active tenant draws an equal share of the refill;
- each tenant spends its own deficit to admit lines, and a tenant's
  deficit is capped at its fair share of the burst — an idle tenant
  cannot hoard, and whatever it declines flows to the others
  (work-conserving: a lone tenant still gets the full rate).

A tenant sending under its fair share therefore keeps a positive
deficit and admits everything; a saturating tenant exhausts its own
deficit and is shed without touching anyone else's.  The structure is
the classic DRR scheduler (Shreedhar & Varghese) applied to admission
instead of dequeueing.

Like :class:`~repro.ingest.listener.TokenBucket` the clock is injected
and all state transitions happen under one lock, so tests drive it
deterministically and the listener's event loop and the controller's
``set_rate`` actuations can race safely.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["DeficitRoundRobin"]


class DeficitRoundRobin:
    """Fair-share admission quota over dynamically discovered tenants.

    Parameters
    ----------
    rate:
        Aggregate admit rate across all tenants, tokens (lines) per
        second.
    burst:
        Token capacity of the global pool (default: ``rate``); also
        sets the per-tenant deficit cap at ``burst / n_tenants``
        (never below ``quantum``).
    quantum:
        Tokens dealt per tenant per round-robin visit.  One line costs
        one token, so the default of 1.0 keeps the deal granular.
    max_tenants:
        Tracked-tenant bound; admitting a new tenant beyond it evicts
        the least-recently-seen one (its unspent deficit returns to
        the pool).
    clock:
        Monotonic time source (injected in tests and simulations).
    """

    __slots__ = (
        "rate",
        "burst",
        "quantum",
        "max_tenants",
        "_pool",
        "_last",
        "_clock",
        "_lock",
        "_deficits",
        "_ring",
        "_last_seen",
    )

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        *,
        quantum: float = 1.0,
        max_tenants: int = 1024,
        clock=time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        if max_tenants < 1:
            raise ValueError(f"max_tenants must be >= 1, got {max_tenants}")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self.quantum = float(quantum)
        self.max_tenants = int(max_tenants)
        self._pool = self.burst
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()
        self._deficits: dict[str, float] = {}
        self._ring: deque[str] = deque()
        self._last_seen: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._deficits)

    def allow(self, tenant: str) -> bool:
        """True to admit one line for ``tenant``, False to shed it."""
        with self._lock:
            now = self._clock()
            self._settle(now)
            self._last_seen[tenant] = now
            if tenant not in self._deficits:
                self._admit_tenant(tenant)
            if self._deficits[tenant] < 1.0 and self._pool >= self.quantum:
                self._distribute()
            if self._deficits[tenant] >= 1.0:
                self._deficits[tenant] -= 1.0
                return True
            return False

    def set_rate(self, rate: float, burst: float | None = None) -> None:
        """Retarget the aggregate rate; unspent tokens are preserved.

        Mirrors ``TokenBucket.set_rate`` so the controller's
        ``listener_rate`` lever drives either admission mechanism: the
        pool settles at the old rate up to now, then refills at the new
        one (clamped into the possibly-changed burst).
        """
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        with self._lock:
            self._settle(self._clock())
            self.rate = float(rate)
            if burst is not None:
                if burst <= 0:
                    raise ValueError(f"burst must be positive, got {burst}")
                self.burst = float(burst)
            self._pool = min(self._pool, self.burst)

    def snapshot(self) -> dict[str, float]:
        """Current per-tenant deficits (for the ops surface)."""
        with self._lock:
            return dict(self._deficits)

    # -- internals (call with the lock held) ----------------------------

    def _settle(self, now: float) -> None:
        elapsed = now - self._last
        if elapsed > 0:
            self._pool = min(self.burst, self._pool + elapsed * self.rate)
        self._last = now

    def _admit_tenant(self, tenant: str) -> None:
        if len(self._deficits) >= self.max_tenants:
            stale = min(self._ring, key=lambda t: self._last_seen.get(t, 0.0))
            self._pool = min(
                self.burst, self._pool + self._deficits.pop(stale)
            )
            self._ring.remove(stale)
            self._last_seen.pop(stale, None)
        self._deficits[tenant] = 0.0
        self._ring.append(tenant)

    def _distribute(self) -> None:
        """Deal the pool round-robin, one quantum per tenant per visit.

        Stops when the pool cannot fund another quantum or a full pass
        grants nothing (every tenant at its fair-share cap).
        """
        n = len(self._ring)
        if n == 0:
            return
        cap = max(self.quantum, self.burst / n)
        stalled = 0
        while self._pool >= self.quantum and stalled < n:
            tenant = self._ring[0]
            self._ring.rotate(-1)
            take = min(self.quantum, cap - self._deficits[tenant], self._pool)
            if take <= 0:
                stalled += 1
                continue
            stalled = 0
            self._deficits[tenant] += take
            self._pool -= take
