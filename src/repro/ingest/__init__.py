"""Network ingest: syslog listener + partitioned log broker.

The spine between noisy senders and the elastic consumer fleet:

- :mod:`repro.ingest.listener` — :class:`SyslogListener`, an asyncio
  UDP/TCP front door parsing RFC 3164/5424 wire lines with accept-time
  rate limiting, load shedding, and DLQ quarantine for hostile input;
- :mod:`repro.ingest.broker` — :class:`LogBroker`, per-host/per-tenant
  partitions of append-only segments with consumer groups and
  committed offsets.  Offsets ride the :mod:`repro.durability`
  journal, so a crashed consumer resumes with zero acked-message loss.

Fault sites ``ingest.accept_drop``, ``broker.partition_stall`` and
``broker.commit_lost`` (see :mod:`repro.faults`) exercise the layer's
failure modes; everything is counted through ``repro_ingest_*`` /
``repro_broker_*`` metric families.
"""

from repro.ingest.broker import (
    BrokerRecord,
    BrokerStats,
    ConsumerGroup,
    LogBroker,
    Partition,
    hash_partitioner,
    host_partitioner,
)
from repro.ingest.listener import ListenerStats, SyslogListener, TokenBucket
from repro.ingest.quota import DeficitRoundRobin

__all__ = [
    "BrokerRecord",
    "BrokerStats",
    "ConsumerGroup",
    "DeficitRoundRobin",
    "ListenerStats",
    "LogBroker",
    "Partition",
    "SyslogListener",
    "TokenBucket",
    "hash_partitioner",
    "host_partitioner",
]
