"""Asyncio syslog listener: UDP datagrams and newline-framed TCP.

The real Tivan front door (§4.2) is a syslog relay accepting RFC 3164
and RFC 5424 wire lines from every node on the cluster.  This listener
is that front door: an :mod:`asyncio` UDP endpoint plus a TCP server,
parsing each line through :func:`repro.stream.rfc.safe_parse_line`
(total — hostile input is quarantined, never raised) and publishing
accepted messages into a :class:`~repro.ingest.broker.LogBroker`.

The accept path, in order, is:

1. ``ingest.accept_drop`` fault site — a simulated NIC-queue drop,
   counted into ``accept_dropped``;
2. token-bucket **rate limiting** — accept-time load shedding: over
   the budget, the line is shed and counted, the sender is never
   blocked (syslog's fire-and-forget contract);
3. **size cap** — oversize lines are quarantined to the DLQ;
4. **parse** — unparseable lines are quarantined to the DLQ with the
   parser's reason string;
5. per-tenant **fair-share quota** — when a
   :class:`~repro.ingest.quota.DeficitRoundRobin` is attached, the
   parsed message's host/app key draws from its tenant's deficit; a
   saturating tenant is shed (``tenant_shed``, reason ``fair_share``)
   without starving compliant ones (the key needs a parsed message,
   which is why this gate sits after parse);
6. **publish** — a stalled-partition refusal is quarantined too.

No branch is silent: every received line ends in exactly one of
``accepted``, ``shed``, ``tenant_shed``, ``accept_dropped``,
``oversize``, ``parse_errors`` or ``publish_refused`` (see
:meth:`ListenerStats.accounted`).

Metrics are synchronised to the registry in batches (every
``_SYNC_EVERY`` lines and on ``stop``): at the ≥50k msgs/s rates the
benchmark holds this path to, per-line registry increments would be
the bottleneck.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass

from repro.faults.dlq import DeadLetterQueue
from repro.faults.plan import SITE_ACCEPT_DROP, FaultInjector
from repro.ingest.broker import LogBroker
from repro.ingest.quota import DeficitRoundRobin
from repro.obs import wellknown
from repro.stream.rfc import MAX_LINE_BYTES, safe_parse_line

__all__ = ["ListenerStats", "SyslogListener", "TokenBucket"]

#: where parse/oversize/publish quarantines land in the DLQ
SITE_INGEST_PARSE = "ingest.parse"
SITE_INGEST_PUBLISH = "ingest.publish"

_SYNC_EVERY = 1024


class TokenBucket:
    """Accept-time rate limiter: ``rate`` tokens/s, burst of ``burst``.

    Monotonic-clock based and allocation-free on the hot path.  The
    clock is injectable so tests can drive it deterministically.
    :meth:`set_rate` retunes the bucket in place (the control plane's
    admission lever) without forfeiting tokens already accumulated.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_clock", "_lock")

    def __init__(self, rate: float, burst: float | None = None, *, clock=time.monotonic):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        self._tokens = self.burst
        self._clock = clock
        self._last = clock()
        self._lock = threading.Lock()

    def allow(self) -> bool:
        """Take one token; False when the budget is exhausted."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def set_rate(self, rate: float, burst: float | None = None) -> None:
        """Retune the bucket to ``rate`` tokens/s (and optionally ``burst``).

        Tokens accrued so far are first settled at the *old* rate up to
        the current clock, then carried over (clamped to the new burst),
        so a retune never manufactures or forfeits admission budget.
        Thread-safe against a concurrent :meth:`allow`.
        """
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            self.rate = float(rate)
            if burst is not None:
                self.burst = float(burst)
            else:
                self.burst = max(self.burst, 1.0)
            self._tokens = min(self.burst, self._tokens)


@dataclass
class ListenerStats:
    """Per-listener counts; every received line lands in exactly one bin."""

    received_udp: int = 0
    received_tcp: int = 0
    accepted: int = 0
    shed: int = 0
    tenant_shed: int = 0
    accept_dropped: int = 0
    oversize: int = 0
    parse_errors: int = 0
    publish_refused: int = 0

    @property
    def received(self) -> int:
        return self.received_udp + self.received_tcp

    def accounted(self) -> bool:
        """The no-silent-loss check: bins sum back to received."""
        return self.received == (
            self.accepted + self.shed + self.tenant_shed
            + self.accept_dropped + self.oversize
            + self.parse_errors + self.publish_refused
        )


class _UdpProtocol(asyncio.DatagramProtocol):
    def __init__(self, listener: "SyslogListener") -> None:
        self._listener = listener

    def datagram_received(self, data: bytes, addr) -> None:
        self._listener._handle_line(data, udp=True)


class SyslogListener:
    """UDP + TCP syslog intake feeding a partitioned log broker.

    Parameters
    ----------
    broker:
        Accepted messages are published here.  ``None`` is allowed for
        parse-only use (the benchmark's listener-alone lane).
    udp_port, tcp_port:
        Port to bind (0 = ephemeral, ``None`` = transport disabled).
    rate_limit, burst:
        Accept-time token-bucket budget in messages/second; ``None``
        disables shedding.
    tenant_quota:
        Optional :class:`~repro.ingest.quota.DeficitRoundRobin`: parsed
        messages draw admission from their tenant's (host/app) fair
        share instead of a first-come free-for-all; over-quota lines
        land in ``tenant_shed`` with per-tenant reason-labelled
        counters.  Composes with (or replaces) the global bucket.
    max_line_bytes:
        Size cap; longer input is quarantined, not truncated.
    on_message:
        Optional tap called with each accepted :class:`SyslogMessage`.
    trace_sampler:
        Optional :class:`~repro.obs.propagation.TraceSampler`; sampled
        accepts start a cross-hop trace (keyed by the accept ordinal)
        whose context rides the broker record downstream.
    """

    def __init__(
        self,
        broker: LogBroker | None = None,
        *,
        host: str = "127.0.0.1",
        udp_port: int | None = 0,
        tcp_port: int | None = 0,
        rate_limit: float | None = None,
        burst: float | None = None,
        tenant_quota: DeficitRoundRobin | None = None,
        max_line_bytes: int = MAX_LINE_BYTES,
        fault_injector: FaultInjector | None = None,
        dead_letters: DeadLetterQueue | None = None,
        on_message=None,
        clock=time.monotonic,
        registry=None,
        trace_sampler=None,
    ) -> None:
        self.broker = broker
        self.host = host
        self.udp_port = udp_port
        self.tcp_port = tcp_port
        self.max_line_bytes = max_line_bytes
        self.injector = fault_injector
        self.dead_letters = dead_letters if dead_letters is not None else DeadLetterQueue()
        self.on_message = on_message
        self.trace_sampler = trace_sampler
        # the next accept ordinal the sampler will trace (inf: never):
        # the untraced majority costs one int comparison on accept
        self._next_traced = (
            trace_sampler.next_sampled_after(0)
            if trace_sampler is not None else float("inf")
        )
        self.bucket = TokenBucket(rate_limit, burst, clock=clock) if rate_limit else None
        self.quota = tenant_quota
        self.stats = ListenerStats()
        self.udp_address: tuple[str, int] | None = None
        self.tcp_address: tuple[str, int] | None = None
        self._udp_transport = None
        self._tcp_server: asyncio.Server | None = None
        self._tcp_tasks: set[asyncio.Task] = set()
        self._since_sync = 0
        self._synced = ListenerStats()
        self._m_received = wellknown.ingest_received(registry)
        self._m_accepted = wellknown.ingest_accepted(registry)
        self._m_shed = wellknown.ingest_shed(registry)
        self._m_accept_dropped = wellknown.ingest_accept_dropped(registry)
        self._m_parse_errors = wellknown.ingest_parse_errors(registry)
        self._m_oversize = wellknown.ingest_oversize(registry)
        self._m_publish_refused = wellknown.ingest_publish_refused(registry)
        self._m_tenant_received = wellknown.ingest_tenant_received(registry)
        self._m_tenant_accepted = wellknown.ingest_tenant_accepted(registry)
        self._m_tenant_shed = wellknown.ingest_tenant_shed(registry)
        self._m_tenants_active = wellknown.ingest_tenants_active(registry)
        # per-tenant [received, accepted, shed] deltas, flushed with the
        # batched sync — per-line labelled increments would be the
        # hot-path bottleneck the batching exists to avoid
        self._tenant_pending: dict[str, list[int]] = {}

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind the enabled transports; addresses land in
        :attr:`udp_address` / :attr:`tcp_address`."""
        loop = asyncio.get_running_loop()
        if self.udp_port is not None:
            self._udp_transport, _ = await loop.create_datagram_endpoint(
                lambda: _UdpProtocol(self), local_addr=(self.host, self.udp_port)
            )
            sock = self._udp_transport.get_extra_info("sockname")
            self.udp_address = (sock[0], sock[1])
        if self.tcp_port is not None:
            self._tcp_server = await asyncio.start_server(
                self._serve_tcp, self.host, self.tcp_port
            )
            sock = self._tcp_server.sockets[0].getsockname()
            self.tcp_address = (sock[0], sock[1])

    async def stop(self) -> None:
        """Close transports, drain TCP connections, flush metrics."""
        if self._udp_transport is not None:
            self._udp_transport.close()
            self._udp_transport = None
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
            self._tcp_server = None
        for task in list(self._tcp_tasks):
            task.cancel()
        if self._tcp_tasks:
            await asyncio.gather(*self._tcp_tasks, return_exceptions=True)
        self._sync_metrics()

    # -- transports ----------------------------------------------------

    async def _serve_tcp(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.current_task()
        if task is not None:
            self._tcp_tasks.add(task)
            task.add_done_callback(self._tcp_tasks.discard)
        buf = b""
        # a line that outgrows the cap is quarantined once, then bytes
        # are discarded until its newline finally arrives
        skipping = False
        try:
            while True:
                chunk = await reader.read(1 << 16)
                if not chunk:
                    break
                buf += chunk
                while True:
                    nl = buf.find(b"\n")
                    if nl < 0:
                        if skipping:
                            buf = b""
                        elif len(buf) > self.max_line_bytes:
                            self._handle_line(buf, udp=False)  # counted oversize
                            buf = b""
                            skipping = True
                        break
                    line, buf = buf[:nl], buf[nl + 1:]
                    if skipping:
                        skipping = False
                        continue
                    if line:
                        self._handle_line(line, udp=False)
            if buf and not skipping:
                self._handle_line(buf, udp=False)
        except (asyncio.CancelledError, ConnectionError):
            pass
        finally:
            writer.close()

    # -- the accept path -----------------------------------------------

    def _handle_line(self, raw: bytes, *, udp: bool) -> None:
        stats = self.stats
        if udp:
            stats.received_udp += 1
        else:
            stats.received_tcp += 1
        self._since_sync += 1
        if self._since_sync >= _SYNC_EVERY:
            self._sync_metrics()
        if self.injector is not None and self.injector.should_fire(SITE_ACCEPT_DROP):
            stats.accept_dropped += 1
            return
        if self.bucket is not None and not self.bucket.allow():
            stats.shed += 1
            return
        if len(raw) > self.max_line_bytes:
            stats.oversize += 1
            self.dead_letters.push(
                SITE_INGEST_PARSE,
                raw[:256].decode("utf-8", errors="replace"),
                f"oversize: {len(raw)} bytes > {self.max_line_bytes}",
                transport="udp" if udp else "tcp",
            )
            return
        message, error = safe_parse_line(raw, max_bytes=self.max_line_bytes)
        if message is None:
            stats.parse_errors += 1
            self.dead_letters.push(
                SITE_INGEST_PARSE,
                raw[:256].decode("utf-8", errors="replace"),
                error or "unparseable",
                transport="udp" if udp else "tcp",
            )
            return
        if self.quota is not None:
            tenant = f"{message.hostname}/{message.app}"
            pending = self._tenant_pending.get(tenant)
            if pending is None:
                pending = self._tenant_pending[tenant] = [0, 0, 0]
            pending[0] += 1
            if not self.quota.allow(tenant):
                stats.tenant_shed += 1
                pending[2] += 1
                return
            pending[1] += 1
        stats.accepted += 1
        ctx = None
        # keyed by the accept ordinal: deterministic under a fixed
        # seed, so replays re-trace the same messages
        if stats.accepted >= self._next_traced:
            sampler = self.trace_sampler
            ctx = sampler.begin(
                stats.accepted,
                proto="udp" if udp else "tcp",
                host=message.hostname,
            )
            self._next_traced = sampler.next_sampled_after(stats.accepted)
        if self.broker is not None:
            record = self.broker.publish(message, ctx=ctx)
            if record is None:
                stats.publish_refused += 1
                self.dead_letters.push(
                    SITE_INGEST_PUBLISH, message, "broker partition stalled",
                    transport="udp" if udp else "tcp",
                )
                return
        if self.on_message is not None:
            self.on_message(message)

    # -- metrics -------------------------------------------------------

    def sync_metrics(self) -> None:
        """Flush pending stat deltas to the registry now.

        The accept path batches registry writes every ``_SYNC_EVERY``
        lines; a serving loop with a live ``/metrics`` endpoint calls
        this periodically so scrapes see trickle traffic too.
        """
        self._sync_metrics()

    def _sync_metrics(self) -> None:
        """Publish the delta since the last sync into the registry."""
        s, prev = self.stats, self._synced
        if s.received_udp > prev.received_udp:
            self._m_received.inc(s.received_udp - prev.received_udp, proto="udp")
        if s.received_tcp > prev.received_tcp:
            self._m_received.inc(s.received_tcp - prev.received_tcp, proto="tcp")
        for attr, metric in (
            ("accepted", self._m_accepted),
            ("shed", self._m_shed),
            ("accept_dropped", self._m_accept_dropped),
            ("oversize", self._m_oversize),
            ("parse_errors", self._m_parse_errors),
            ("publish_refused", self._m_publish_refused),
        ):
            delta = getattr(s, attr) - getattr(prev, attr)
            if delta:
                metric.inc(delta)
        if self._tenant_pending:
            for tenant, (received, accepted, shed) in self._tenant_pending.items():
                if received:
                    self._m_tenant_received.inc(received, tenant=tenant)
                if accepted:
                    self._m_tenant_accepted.inc(accepted, tenant=tenant)
                if shed:
                    self._m_tenant_shed.inc(
                        shed, tenant=tenant, reason="fair_share"
                    )
            self._tenant_pending.clear()
        if self.quota is not None:
            self._m_tenants_active.set(len(self.quota))
        self._synced = ListenerStats(**vars(s))
        self._since_sync = 0
