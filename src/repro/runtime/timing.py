"""Per-stage timing for the classification hot path.

The paper's feasibility argument (§5/§6) is quantitative — a classifier
either keeps up with the stream or it does not — yet knowing *that* a
pipeline is slow says nothing about *where* the time goes.
:class:`StageTimer` instruments the batch path (normalize → vectorize →
predict → route) with ``perf_counter`` accumulators per stage so the
CLI (``repro-syslog classify --timing``) and
:meth:`~repro.core.pipeline.ClassificationPipeline.timing_report` can
show a breakdown without any measurable overhead on the hot path
(one clock read per stage per batch, not per message).

Since the :mod:`repro.obs` metrics registry landed, ``StageTimer`` is a
thin adapter over it: every :meth:`StageTimer.add` both updates the
local accumulators (so ``timing_report()`` keeps its historical
behaviour) and mirrors the interval into the well-known
``repro_pipeline_stage_seconds`` histogram and
``repro_pipeline_stage_items_total`` counter, so live exposition
(``--metrics-out``) and the one-shot report always agree.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StageTimer", "StageStat", "StageReport"]


@dataclass
class StageStat:
    """Accumulated cost of one pipeline stage.

    Attributes
    ----------
    seconds:
        Total wall-clock seconds spent in the stage.
    calls:
        Number of timed entries (≈ batches processed).
    items:
        Number of items (messages) the stage processed.
    """

    seconds: float = 0.0
    calls: int = 0
    items: int = 0

    def add(self, seconds: float, items: int = 0) -> None:
        """Fold one timed interval into the accumulator."""
        self.seconds += seconds
        self.calls += 1
        self.items += items

    @property
    def items_per_second(self) -> float:
        """Throughput of this stage in isolation (0 when untimed)."""
        return self.items / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class StageReport:
    """Immutable snapshot of a :class:`StageTimer`.

    Attributes
    ----------
    stages:
        Stage name → :class:`StageStat`, in first-seen order.
    total_seconds:
        Wall-clock seconds across all stages (the stages are sequential
        on the hot path, so this is ≈ total batch service time).
    """

    stages: dict[str, StageStat]
    total_seconds: float

    def as_dict(self) -> dict:
        """JSON-serializable form (for ``--timing`` machine output)."""
        return {
            "total_seconds": self.total_seconds,
            "stages": {
                name: {
                    "seconds": s.seconds,
                    "calls": s.calls,
                    "items": s.items,
                }
                for name, s in self.stages.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageReport":
        """Rebuild a report serialized with :meth:`as_dict`.

        This is how shard workers return their per-chunk stage
        accounting to the parent process.
        """
        return cls(
            stages={
                name: StageStat(d["seconds"], d["calls"], d["items"])
                for name, d in data["stages"].items()
            },
            total_seconds=data["total_seconds"],
        )

    def render(self) -> str:
        """Human-readable table of the per-stage breakdown.

        Stages timed with ``items=0`` show ``-`` for throughput — an
        untimed column, not a measured zero.
        """
        if not self.stages:
            return "no stages timed"
        name_w = max(max(len(n) for n in self.stages), len("total")) + 2
        lines = [f"{'stage':<{name_w}}{'seconds':>10}  {'%':>6}  "
                 f"{'items':>9}  {'items/s':>12}"]
        total = self.total_seconds or 1.0
        for name, s in self.stages.items():
            rate = f"{s.items_per_second:.1f}" if s.items > 0 else "-"
            lines.append(
                f"{name:<{name_w}}{s.seconds:>10.4f}  "
                f"{100.0 * s.seconds / total:>6.1f}  {s.items:>9}  "
                f"{rate:>12}"
            )
        lines.append(f"{'total':<{name_w}}{self.total_seconds:>10.4f}  "
                     f"{100.0:>6.1f}")
        return "\n".join(lines)


@dataclass
class StageTimer:
    """Accumulates per-stage wall-clock time across batches.

    Use :meth:`stage` as a context manager around each stage of the
    batch path::

        timer = StageTimer()
        with timer.stage("vectorize", items=len(batch)):
            X = vec.transform(batch.texts)
        print(timer.report().render())

    Timers are cheap enough to leave permanently attached (two
    ``perf_counter`` calls per stage per *batch*).

    Every recorded interval is also mirrored into the metrics registry
    (``registry``, or the process default when ``None``) as a
    ``repro_pipeline_stage_seconds`` observation and a
    ``repro_pipeline_stage_items_total`` increment, making this class
    the adapter between the historical report API and live exposition.
    """

    _stats: dict[str, StageStat] = field(default_factory=dict, repr=False)
    #: metrics registry to mirror into; ``None`` = process default
    registry: object = field(default=None, repr=False)

    @contextmanager
    def stage(self, name: str, items: int = 0):
        """Time one stage execution covering ``items`` messages."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0, items)

    def add(self, name: str, seconds: float, items: int = 0) -> None:
        """Record an externally-timed interval (e.g. from a worker)."""
        self._stats.setdefault(name, StageStat()).add(seconds, items)
        self._mirror(name, seconds, items)

    def _mirror(self, name: str, seconds: float, items: int) -> None:
        from repro.obs import wellknown

        wellknown.stage_seconds(self.registry).observe(seconds, stage=name)
        if items:
            wellknown.stage_items(self.registry).inc(items, stage=name)

    def merge(self, report: StageReport) -> None:
        """Fold another timer's report in (used to absorb shard timings).

        Each merged stage lands in the registry as one histogram
        observation of its summed seconds — coarser than the per-batch
        observations the originating process made, but item counters
        stay exactly equivalent to having run the stages locally.
        """
        for name, s in report.stages.items():
            stat = self._stats.setdefault(name, StageStat())
            stat.seconds += s.seconds
            stat.calls += s.calls
            stat.items += s.items
            self._mirror(name, s.seconds, s.items)

    def reset(self) -> None:
        """Drop all accumulated stats."""
        self._stats.clear()

    def report(self) -> StageReport:
        """Snapshot the accumulators into a :class:`StageReport`."""
        stages = {
            name: StageStat(s.seconds, s.calls, s.items)
            for name, s in self._stats.items()
        }
        return StageReport(
            stages=stages,
            total_seconds=sum(s.seconds for s in stages.values()),
        )
