"""Per-stage timing for the classification hot path.

The paper's feasibility argument (§5/§6) is quantitative — a classifier
either keeps up with the stream or it does not — yet knowing *that* a
pipeline is slow says nothing about *where* the time goes.
:class:`StageTimer` instruments the batch path (normalize → vectorize →
predict → route) with ``perf_counter`` accumulators per stage so the
CLI (``repro-syslog classify --timing``) and
:meth:`~repro.core.pipeline.ClassificationPipeline.timing_report` can
show a breakdown without any measurable overhead on the hot path
(one clock read per stage per batch, not per message).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["StageTimer", "StageStat", "StageReport"]


@dataclass
class StageStat:
    """Accumulated cost of one pipeline stage.

    Attributes
    ----------
    seconds:
        Total wall-clock seconds spent in the stage.
    calls:
        Number of timed entries (≈ batches processed).
    items:
        Number of items (messages) the stage processed.
    """

    seconds: float = 0.0
    calls: int = 0
    items: int = 0

    def add(self, seconds: float, items: int = 0) -> None:
        """Fold one timed interval into the accumulator."""
        self.seconds += seconds
        self.calls += 1
        self.items += items

    @property
    def items_per_second(self) -> float:
        """Throughput of this stage in isolation (0 when untimed)."""
        return self.items / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class StageReport:
    """Immutable snapshot of a :class:`StageTimer`.

    Attributes
    ----------
    stages:
        Stage name → :class:`StageStat`, in first-seen order.
    total_seconds:
        Wall-clock seconds across all stages (the stages are sequential
        on the hot path, so this is ≈ total batch service time).
    """

    stages: dict[str, StageStat]
    total_seconds: float

    def as_dict(self) -> dict:
        """JSON-serializable form (for ``--timing`` machine output)."""
        return {
            "total_seconds": self.total_seconds,
            "stages": {
                name: {
                    "seconds": s.seconds,
                    "calls": s.calls,
                    "items": s.items,
                }
                for name, s in self.stages.items()
            },
        }

    def render(self) -> str:
        """Human-readable table of the per-stage breakdown."""
        if not self.stages:
            return "no stages timed"
        name_w = max(len(n) for n in self.stages) + 2
        lines = [f"{'stage':<{name_w}}{'seconds':>10}  {'%':>5}  "
                 f"{'items':>9}  {'items/s':>12}"]
        total = self.total_seconds or 1.0
        for name, s in self.stages.items():
            lines.append(
                f"{name:<{name_w}}{s.seconds:>10.4f}  "
                f"{100.0 * s.seconds / total:>5.1f}  {s.items:>9}  "
                f"{s.items_per_second:>12.1f}"
            )
        lines.append(f"{'total':<{name_w}}{self.total_seconds:>10.4f}")
        return "\n".join(lines)


@dataclass
class StageTimer:
    """Accumulates per-stage wall-clock time across batches.

    Use :meth:`stage` as a context manager around each stage of the
    batch path::

        timer = StageTimer()
        with timer.stage("vectorize", items=len(batch)):
            X = vec.transform(batch.texts)
        print(timer.report().render())

    Timers are cheap enough to leave permanently attached (two
    ``perf_counter`` calls per stage per *batch*).
    """

    _stats: dict[str, StageStat] = field(default_factory=dict, repr=False)

    @contextmanager
    def stage(self, name: str, items: int = 0):
        """Time one stage execution covering ``items`` messages."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0, items)

    def add(self, name: str, seconds: float, items: int = 0) -> None:
        """Record an externally-timed interval (e.g. from a worker)."""
        self._stats.setdefault(name, StageStat()).add(seconds, items)

    def merge(self, report: StageReport) -> None:
        """Fold another timer's report in (used to absorb shard timings)."""
        for name, s in report.stages.items():
            stat = self._stats.setdefault(name, StageStat())
            stat.seconds += s.seconds
            stat.calls += s.calls
            stat.items += s.items

    def reset(self) -> None:
        """Drop all accumulated stats."""
        self._stats.clear()

    def report(self) -> StageReport:
        """Snapshot the accumulators into a :class:`StageReport`."""
        stages = {
            name: StageStat(s.seconds, s.calls, s.items)
            for name, s in self._stats.items()
        }
        return StageReport(
            stages=stages,
            total_seconds=sum(s.seconds for s in stages.values()),
        )
