"""Batch-first runtime layer for the classification hot path.

The paper's feasibility argument (§5) needs classification to keep up
with >1M messages/hour; this package is the machinery that gets the
repo there:

- :mod:`repro.runtime.batch` — :class:`MessageBatch`, the columnar
  unit of work that flows through normalize → tokenize → vectorize as
  one batch instead of per-message calls,
- :mod:`repro.runtime.executor` — :class:`ShardedExecutor`, chunked
  multi-process ``classify_batch`` with one-shot worker initialization
  and a serial fallback for small batches,
- :mod:`repro.runtime.timing` — :class:`StageTimer`, per-stage
  ``perf_counter`` accounting (normalize / vectorize / predict /
  route) surfaced via ``repro-syslog classify --timing`` and
  :meth:`ClassificationPipeline.timing_report`.
"""

from repro.runtime.batch import MessageBatch
from repro.runtime.executor import ShardedExecutor
from repro.runtime.timing import StageReport, StageStat, StageTimer

__all__ = [
    "MessageBatch",
    "ShardedExecutor",
    "StageTimer",
    "StageStat",
    "StageReport",
]
