"""Sharded parallel classification over process workers.

§5's feasibility bar is >1M messages/hour; one Python process tops out
well below the hardware's capacity because the preprocessing chain is
pure-Python and GIL-bound.  :class:`ShardedExecutor` scatters a
:class:`~repro.runtime.batch.MessageBatch` into order-preserving chunks
across a ``ProcessPoolExecutor`` whose workers hold their own copy of
the fitted pipeline (initialized exactly once per worker, not per
chunk), then gathers the per-chunk results back in order.

Small batches are not worth a round-trip through pickle: below
``min_parallel`` messages — or with ``n_workers=1`` — the executor
degrades to the plain serial batch path, so callers can route *every*
batch through one object and let it pick the strategy.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from time import perf_counter

from repro.runtime.batch import MessageBatch

__all__ = ["ShardedExecutor"]

# Per-worker singleton: the fitted pipeline each process classifies
# with.  Set once by the pool initializer; fork start methods inherit
# the parent's object for free, spawn start methods receive it pickled.
_WORKER_PIPELINE = None


def _init_worker(pipeline, model_dir) -> None:
    global _WORKER_PIPELINE
    if pipeline is not None:
        _WORKER_PIPELINE = pipeline
    else:
        from repro.core.serialize import load_pipeline

        _WORKER_PIPELINE = load_pipeline(model_dir)


def _classify_chunk(texts: tuple[str, ...]):
    assert _WORKER_PIPELINE is not None, "worker used before initialization"
    return _WORKER_PIPELINE.classify_batch(MessageBatch(texts=texts))


class ShardedExecutor:
    """Chunked multi-process ``classify_batch`` with serial fallback.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.core.pipeline.ClassificationPipeline`.
        With a ``fork`` start method the workers inherit it without
        serialization; otherwise it must pickle (all supported
        estimators do).
    model_dir:
        Alternative to ``pipeline``: a :func:`save_pipeline` directory
        each worker loads on initialization.  Exactly one of
        ``pipeline`` / ``model_dir`` is required.
    n_workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``1``
        disables the pool entirely (pure serial).
    chunk_size:
        Messages per scattered work item.
    min_parallel:
        Batches smaller than this run serially — scatter/gather
        overhead (pickling texts out, results back) dominates below a
        few thousand messages.

    The pool is created lazily on the first large-enough batch and
    workers are initialized exactly once; use as a context manager (or
    call :meth:`close`) to release the processes.
    """

    def __init__(
        self,
        pipeline=None,
        *,
        model_dir: str | Path | None = None,
        n_workers: int | None = None,
        chunk_size: int = 2000,
        min_parallel: int = 4000,
    ) -> None:
        if (pipeline is None) == (model_dir is None):
            raise ValueError("provide exactly one of pipeline / model_dir")
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._pipeline = pipeline
        self._model_dir = model_dir
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.min_parallel = min_parallel
        self._pool: ProcessPoolExecutor | None = None
        #: batches that went through the pool vs the serial path
        self.n_sharded_batches = 0
        self.n_serial_batches = 0

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    @property
    def pipeline(self):
        """The parent-side pipeline (lazy-loaded from ``model_dir``)."""
        if self._pipeline is None:
            from repro.core.serialize import load_pipeline

            self._pipeline = load_pipeline(self._model_dir)
        return self._pipeline

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(self._pipeline, self._model_dir),
            )
        return self._pool

    # -- classification ------------------------------------------------

    def classify_batch(self, batch: MessageBatch | Sequence[str]):
        """Classify a batch, sharding across workers when it pays off.

        Returns the same ``list[PipelineResult]`` as
        :meth:`ClassificationPipeline.classify_batch`, in input order.
        Service-time accounting (``service_seconds``/``n_classified``
        and the ``shard`` timer stage) lands on the parent pipeline
        either way, so ``messages_per_hour()`` reflects the strategy
        actually used.
        """
        batch = MessageBatch.coerce(batch)
        if self.n_workers == 1 or len(batch) < self.min_parallel:
            self.n_serial_batches += 1
            return self.pipeline.classify_batch(batch)
        self.n_sharded_batches += 1
        t0 = perf_counter()
        pool = self._ensure_pool()
        chunks = [c.texts for c in batch.chunks(self.chunk_size)]
        results = [r for chunk in pool.map(_classify_chunk, chunks)
                   for r in chunk]
        elapsed = perf_counter() - t0
        pipe = self.pipeline
        pipe.service_seconds += elapsed
        pipe.n_classified += len(batch)
        pipe.timer.add("shard", elapsed, len(batch))
        return results
