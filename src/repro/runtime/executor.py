"""Sharded parallel classification over process workers.

§5's feasibility bar is >1M messages/hour; one Python process tops out
well below the hardware's capacity because the preprocessing chain is
pure-Python and GIL-bound.  :class:`ShardedExecutor` scatters a
:class:`~repro.runtime.batch.MessageBatch` into order-preserving chunks
across a ``ProcessPoolExecutor`` whose workers hold their own copy of
the fitted pipeline (initialized exactly once per worker, not per
chunk), then gathers the per-chunk results back in order.

Small batches are not worth a round-trip through pickle: below
``min_parallel`` messages — or with ``n_workers=1`` — the executor
degrades to the plain serial batch path, so callers can route *every*
batch through one object and let it pick the strategy.

Failure is the common case at scale, so the sharded path assumes
workers die: every chunk carries a deadline (``chunk_timeout_s``), a
dead worker is detected (``BrokenProcessPool``) and the pool respawned,
and the lost chunk is re-dispatched with exponential backoff plus
deterministic jitter.  A chunk that exhausts ``max_chunk_retries``
re-dispatches is routed through the parent pipeline's serial path
instead — degraded throughput, never a lost message.  All of it is
counted (``repro_faults_*`` families) and, with a
:class:`~repro.faults.FaultInjector` attached, reproducible on demand.
"""

from __future__ import annotations

import os
import random
import signal
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from time import perf_counter

from repro.faults.plan import SITE_CHUNK_TIMEOUT, SITE_WORKER_CRASH
from repro.runtime.batch import MessageBatch
from repro.runtime.timing import StageReport

__all__ = ["ShardedExecutor"]

# Per-worker singleton: the fitted pipeline each process classifies
# with.  Set once by the pool initializer; fork start methods inherit
# the parent's object for free, spawn start methods receive it pickled.
_WORKER_PIPELINE = None


def _init_worker(pipeline, model_dir) -> None:
    global _WORKER_PIPELINE
    if pipeline is not None:
        _WORKER_PIPELINE = pipeline
    else:
        from repro.core.serialize import load_pipeline

        _WORKER_PIPELINE = load_pipeline(model_dir)
    # injected faults are decided in the parent (per chunk, so chunk
    # scheduling cannot perturb the fire sequence); a worker-side
    # injector copy would draw from its own stream nondeterministically
    _WORKER_PIPELINE.fault_injector = None


def _classify_chunk(texts: tuple[str, ...], span_ctx: dict | None = None,
                    fault: dict | None = None):
    """Classify one chunk in a worker; returns results plus telemetry.

    The worker times itself, snapshots its pipeline's per-chunk stage
    report, and records a span parented on the context the dispatching
    process sent over — all of it returned by value so the parent can
    stitch the telemetry back together (worker-process registries are
    invisible to the parent).  Dead-letter entries captured while
    classifying are exported the same way, so the parent's queue stays
    the single source of truth.

    ``fault`` is the parent-armed injection payload: ``{"crash": True}``
    SIGKILLs this worker on receipt (a real abrupt death, not an
    exception), ``{"delay_s": x}`` stalls past the parent's chunk
    deadline.
    """
    from repro.obs.trace import Tracer

    assert _WORKER_PIPELINE is not None, "worker used before initialization"
    if fault:
        if fault.get("crash"):
            os.kill(os.getpid(), signal.SIGKILL)
        delay = fault.get("delay_s", 0.0)
        if delay:
            time.sleep(delay)
    tracer = Tracer()
    _WORKER_PIPELINE.reset_timing()
    dlq_mark = len(_WORKER_PIPELINE.dead_letters)
    cache = _WORKER_PIPELINE.template_cache
    cache_mark = cache.counters() if cache is not None else None
    t0 = perf_counter()
    with tracer.span(
        "shard.worker_chunk", parent=span_ctx,
        n_messages=len(texts), worker_pid=os.getpid(),
    ):
        results = _WORKER_PIPELINE.classify_batch(MessageBatch(texts=texts))
    busy_s = perf_counter() - t0
    cache_stats = None
    if cache is not None:
        after = cache.counters()
        cache_stats = {k: after[k] - cache_mark[k] for k in after}
        cache_stats["size"] = len(cache)
    return (
        results,
        _WORKER_PIPELINE.timing_report().as_dict(),
        tracer.export(),
        os.getpid(),
        busy_s,
        _WORKER_PIPELINE.dead_letters.since(dlq_mark),
        cache_stats,
    )


class ShardedExecutor:
    """Chunked multi-process ``classify_batch`` with serial fallback.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.core.pipeline.ClassificationPipeline`.
        With a ``fork`` start method the workers inherit it without
        serialization; otherwise it must pickle (all supported
        estimators do).
    model_dir:
        Alternative to ``pipeline``: a :func:`save_pipeline` directory
        each worker loads on initialization.  Exactly one of
        ``pipeline`` / ``model_dir`` is required.
    n_workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``1``
        disables the pool entirely (pure serial).
    chunk_size:
        Messages per scattered work item.
    min_parallel:
        Batches smaller than this run serially — scatter/gather
        overhead (pickling texts out, results back) dominates below a
        few thousand messages.
    chunk_timeout_s:
        Deadline for one chunk's submit-to-result round trip.  A chunk
        that misses it is treated as lost and re-dispatched; without a
        deadline a worker dying mid-chunk could stall the gather
        forever.  ``None`` disables the deadline (not recommended).
    max_chunk_retries:
        Re-dispatches granted to a chunk after its first failed attempt
        (crash, timeout, or worker-raised error) before it is routed
        through the serial fallback.
    retry_base_s, retry_max_s:
        Exponential-backoff bounds between re-dispatch rounds; the
        actual delay adds up to 25% deterministic jitter drawn from
        ``retry_seed``.
    retry_seed:
        Seed for the jitter stream (reproducible backoff schedules).
    fault_injector:
        Optional :class:`~repro.faults.FaultInjector`.  Armed sites
        ``shard.worker_crash`` and ``shard.chunk_timeout`` are checked
        once per chunk dispatch, in dispatch order, in this process —
        fully deterministic under a fixed plan and seed.
    tracer:
        Optional :class:`repro.obs.Tracer` for the sharded path's trace
        spans; ``None`` uses the process default.  Each sharded batch
        becomes one trace: a ``shard.classify_batch`` root in this
        process with every worker's ``shard.worker_chunk`` stitched in
        as children.

    The pool is created lazily on the first large-enough batch and
    workers are initialized exactly once; use as a context manager (or
    call :meth:`close`) to release the processes.
    """

    def __init__(
        self,
        pipeline=None,
        *,
        model_dir: str | Path | None = None,
        n_workers: int | None = None,
        chunk_size: int = 2000,
        min_parallel: int = 4000,
        chunk_timeout_s: float | None = 60.0,
        max_chunk_retries: int = 3,
        retry_base_s: float = 0.05,
        retry_max_s: float = 2.0,
        retry_seed: int = 0,
        fault_injector=None,
        tracer=None,
    ) -> None:
        if (pipeline is None) == (model_dir is None):
            raise ValueError("provide exactly one of pipeline / model_dir")
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        if chunk_timeout_s is not None and chunk_timeout_s <= 0:
            raise ValueError(
                f"chunk_timeout_s must be positive or None, got {chunk_timeout_s}"
            )
        if max_chunk_retries < 0:
            raise ValueError(
                f"max_chunk_retries must be >= 0, got {max_chunk_retries}"
            )
        self._pipeline = pipeline
        self._model_dir = model_dir
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.min_parallel = min_parallel
        self.chunk_timeout_s = chunk_timeout_s
        self.max_chunk_retries = max_chunk_retries
        self.retry_base_s = retry_base_s
        self.retry_max_s = retry_max_s
        self.fault_injector = fault_injector
        self.tracer = tracer
        self._retry_rng = random.Random(f"shard-retry:{retry_seed}")
        self._pool: ProcessPoolExecutor | None = None
        #: batches that went through the pool vs the serial path
        self.n_sharded_batches = 0
        self.n_serial_batches = 0
        #: resilience counters (mirrored into repro_faults_* metrics)
        self.n_worker_respawns = 0
        self.n_chunk_retries = 0
        self.n_serial_fallback_chunks = 0
        #: control-plane resizes applied via :meth:`resize`
        self.n_pool_resizes = 0

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def resize(self, n_workers: int, registry=None) -> None:
        """Retarget the pool to ``n_workers`` processes (control lever).

        A no-op when the size is unchanged.  Otherwise the current pool
        is shut down without waiting and the next dispatch lazily spawns
        a fresh pool at the new width — exactly the respawn path used
        after a worker death, so in-flight chunks are re-dispatched, not
        lost.  Counted into ``repro_executor_resizes_total`` by
        direction, with the new width published on
        ``repro_executor_workers``.
        """
        from repro.obs import wellknown

        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if registry is None and self._pipeline is not None:
            registry = self._pipeline.timer.registry
        if n_workers == self.n_workers:
            wellknown.executor_workers(registry).set(self.n_workers)
            return
        direction = "up" if n_workers > self.n_workers else "down"
        self.n_workers = n_workers
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self.n_pool_resizes += 1
        wellknown.executor_resizes(registry).inc(direction=direction)
        wellknown.executor_workers(registry).set(self.n_workers)

    @property
    def pipeline(self):
        """The parent-side pipeline (lazy-loaded from ``model_dir``)."""
        if self._pipeline is None:
            from repro.core.serialize import load_pipeline

            self._pipeline = load_pipeline(self._model_dir)
        return self._pipeline

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(self._pipeline, self._model_dir),
            )
        return self._pool

    def _respawn_pool(self, registry) -> None:
        """Replace a broken pool; the next dispatch gets fresh workers."""
        from repro.obs import wellknown

        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        self.n_worker_respawns += 1
        wellknown.faults_worker_respawns(registry).inc()
        wellknown.executor_respawns(registry).inc()

    # -- fault arming --------------------------------------------------

    def _arm_chunk_fault(self) -> dict | None:
        """Parent-side injection decision for one chunk dispatch."""
        inj = self.fault_injector
        if inj is None:
            return None
        if inj.should_fire(SITE_WORKER_CRASH):
            return {"crash": True}
        if inj.should_fire(SITE_CHUNK_TIMEOUT):
            stall = (self.chunk_timeout_s or 1.0) * 1.5 + 0.1
            return {"delay_s": stall}
        return None

    def _backoff_delay(self, round_no: int) -> float:
        base = min(self.retry_base_s * 2 ** (round_no - 1), self.retry_max_s)
        return base * (1.0 + 0.25 * self._retry_rng.random())

    # -- classification ------------------------------------------------

    def classify_batch(self, batch: MessageBatch | Sequence[str]):
        """Classify a batch, sharding across workers when it pays off.

        Returns the same ``list[PipelineResult]`` as
        :meth:`ClassificationPipeline.classify_batch`, in input order —
        under worker crashes and stalls too: lost chunks are retried on
        a respawned pool and, past the retry budget, classified
        serially in this process, so exactly one result per input comes
        back regardless of how the pool behaved.  Service-time
        accounting (``service_seconds``/``n_classified`` and the
        ``shard`` timer stage) lands on the parent pipeline either way,
        so ``messages_per_hour()`` reflects the strategy actually used.

        The sharded path is fully observable: workers return their
        per-chunk stage reports (merged into the parent pipeline's
        timer, and therefore into the metrics registry — per-stage item
        counts come out identical to a serial run), per-worker message
        counters, dispatch/queue-wait histograms, worker dead-letter
        entries (adopted into the parent queue), and child spans
        stitched under one ``shard.classify_batch`` trace.
        """
        from repro.obs.trace import default_tracer

        batch = MessageBatch.coerce(batch)
        if self.n_workers == 1 or len(batch) < self.min_parallel:
            self.n_serial_batches += 1
            return self.pipeline.classify_batch(batch)
        self.n_sharded_batches += 1
        tracer = self.tracer if self.tracer is not None else default_tracer()
        pipe = self.pipeline
        registry = pipe.timer.registry
        t0 = perf_counter()
        chunks = [c.texts for c in batch.chunks(self.chunk_size)]
        with tracer.span(
            "shard.classify_batch",
            n_messages=len(batch), n_chunks=len(chunks),
            n_workers=self.n_workers,
        ) as root:
            by_chunk, fallback_idx, fallback_s = self._gather_resilient(
                chunks, root.context(), registry, tracer
            )
        # chunks the pool classified are accounted here as one sharded
        # interval; serial-fallback chunks already accounted themselves
        # inside pipe.classify_batch, so they are excluded to keep
        # message counts exact
        n_fallback = sum(len(chunks[i]) for i in fallback_idx)
        n_gathered = len(batch) - n_fallback
        gathered_s = max(0.0, perf_counter() - t0 - fallback_s)
        if n_gathered:
            pipe.service_seconds += gathered_s
            pipe.n_classified += n_gathered
            pipe.timer.add("shard", gathered_s, n_gathered)
            fallback = set(fallback_idx)
            n_filtered = sum(
                1
                for i, chunk_results in enumerate(by_chunk)
                if i not in fallback
                for r in chunk_results
                if r.filtered
            )
            pipe._record_batch_metrics(n_gathered, n_filtered, gathered_s)
        results: list = []
        for chunk_results in by_chunk:
            results.extend(chunk_results)
        return results

    def _mirror_cache_stats(self, cache_stats, pid, registry) -> None:
        """Adopt one worker's template-cache counter deltas.

        Worker-process registries are invisible here, so the chunk
        result carries the deltas by value and the parent republishes
        them under the worker's pid label — the same families the
        serial path emits.
        """
        from repro.obs import wellknown

        worker = str(pid)
        for name, family in (
            ("hits", wellknown.template_cache_hits),
            ("misses", wellknown.template_cache_misses),
            ("evictions", wellknown.template_cache_evictions),
            ("invalidations", wellknown.template_cache_invalidations),
        ):
            delta = cache_stats.get(name, 0)
            if delta:
                family(registry).inc(delta, worker=worker)
        wellknown.template_cache_size(registry).set(
            cache_stats.get("size", 0), worker=worker
        )

    def _gather_resilient(self, chunks, ctx, registry, tracer):
        """Dispatch every chunk until classified; never loses a chunk.

        Returns ``(results_by_chunk, fallback_indices, fallback_seconds)``.
        Each round submits all still-pending chunks, collects results
        under the chunk deadline, respawns the pool if a worker died,
        and re-dispatches failures after a backoff — until every chunk
        either came back from a worker or burned its retry budget and
        went through the serial fallback.
        """
        from repro.obs import wellknown

        pipe = self.pipeline
        dispatch_hist = wellknown.shard_dispatch_seconds(registry)
        wait_hist = wellknown.shard_queue_wait_seconds(registry)
        msg_counter = wellknown.shard_messages(registry)
        chunk_counter = wellknown.shard_chunks(registry)
        retry_counter = wellknown.faults_chunk_retries(registry)

        by_chunk: list = [None] * len(chunks)
        attempts = [0] * len(chunks)
        pending = list(range(len(chunks)))
        fallback_idx: list[int] = []
        round_no = 0
        while pending:
            round_no += 1
            pool_broken = False
            futures: dict[int, tuple] = {}
            for idx in pending:
                fault = self._arm_chunk_fault()
                try:
                    fut = self._ensure_pool().submit(
                        _classify_chunk, chunks[idx], ctx, fault
                    )
                except Exception:
                    # pool died while submitting: everything not yet
                    # submitted fails this round and is re-dispatched
                    pool_broken = True
                    continue
                futures[idx] = (fut, perf_counter())
            failed: list[int] = []
            for idx in pending:
                entry = futures.get(idx)
                if entry is None:
                    failed.append(idx)
                    continue
                fut, t_submit = entry
                try:
                    (chunk_results, report_dict, spans, pid, busy_s,
                     dlq_entries, cache_stats) = fut.result(
                        timeout=self.chunk_timeout_s)
                except BrokenProcessPool:
                    pool_broken = True
                    failed.append(idx)
                    continue
                except Exception:
                    # deadline miss or a worker-raised error; the chunk
                    # is re-dispatched (a stale result arriving later is
                    # simply discarded with its future)
                    failed.append(idx)
                    continue
                roundtrip = perf_counter() - t_submit
                dispatch_hist.observe(roundtrip)
                wait_hist.observe(max(0.0, roundtrip - busy_s))
                msg_counter.inc(len(chunks[idx]), worker=str(pid))
                chunk_counter.inc(worker=str(pid))
                pipe.timer.merge(StageReport.from_dict(report_dict))
                tracer.adopt(spans)
                if dlq_entries:
                    pipe.dead_letters.extend(dlq_entries)
                    wellknown.faults_quarantined(registry).inc(len(dlq_entries))
                if cache_stats is not None:
                    self._mirror_cache_stats(cache_stats, pid, registry)
                by_chunk[idx] = chunk_results
            if pool_broken:
                self._respawn_pool(registry)
            still: list[int] = []
            for idx in failed:
                attempts[idx] += 1
                if attempts[idx] > self.max_chunk_retries:
                    fallback_idx.append(idx)
                else:
                    still.append(idx)
                    self.n_chunk_retries += 1
                    retry_counter.inc()
            pending = still
            if pending:
                time.sleep(self._backoff_delay(round_no))
        fallback_s = 0.0
        if fallback_idx:
            fallback_counter = wellknown.faults_serial_fallbacks(registry)
            exec_fallback_counter = wellknown.executor_serial_fallbacks(registry)
            for idx in sorted(fallback_idx):
                t0 = perf_counter()
                by_chunk[idx] = pipe.classify_batch(
                    MessageBatch(texts=chunks[idx])
                )
                fallback_s += perf_counter() - t0
                self.n_serial_fallback_chunks += 1
                fallback_counter.inc()
                exec_fallback_counter.inc()
        return by_chunk, fallback_idx, fallback_s
