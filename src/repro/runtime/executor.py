"""Sharded parallel classification over process workers.

§5's feasibility bar is >1M messages/hour; one Python process tops out
well below the hardware's capacity because the preprocessing chain is
pure-Python and GIL-bound.  :class:`ShardedExecutor` scatters a
:class:`~repro.runtime.batch.MessageBatch` into order-preserving chunks
across a ``ProcessPoolExecutor`` whose workers hold their own copy of
the fitted pipeline (initialized exactly once per worker, not per
chunk), then gathers the per-chunk results back in order.

Small batches are not worth a round-trip through pickle: below
``min_parallel`` messages — or with ``n_workers=1`` — the executor
degrades to the plain serial batch path, so callers can route *every*
batch through one object and let it pick the strategy.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from time import perf_counter

from repro.runtime.batch import MessageBatch
from repro.runtime.timing import StageReport

__all__ = ["ShardedExecutor"]

# Per-worker singleton: the fitted pipeline each process classifies
# with.  Set once by the pool initializer; fork start methods inherit
# the parent's object for free, spawn start methods receive it pickled.
_WORKER_PIPELINE = None


def _init_worker(pipeline, model_dir) -> None:
    global _WORKER_PIPELINE
    if pipeline is not None:
        _WORKER_PIPELINE = pipeline
    else:
        from repro.core.serialize import load_pipeline

        _WORKER_PIPELINE = load_pipeline(model_dir)


def _classify_chunk(texts: tuple[str, ...], span_ctx: dict | None = None):
    """Classify one chunk in a worker; returns results plus telemetry.

    The worker times itself, snapshots its pipeline's per-chunk stage
    report, and records a span parented on the context the dispatching
    process sent over — all of it returned by value so the parent can
    stitch the telemetry back together (worker-process registries are
    invisible to the parent).
    """
    from repro.obs.trace import Tracer

    assert _WORKER_PIPELINE is not None, "worker used before initialization"
    tracer = Tracer()
    _WORKER_PIPELINE.reset_timing()
    t0 = perf_counter()
    with tracer.span(
        "shard.worker_chunk", parent=span_ctx,
        n_messages=len(texts), worker_pid=os.getpid(),
    ):
        results = _WORKER_PIPELINE.classify_batch(MessageBatch(texts=texts))
    busy_s = perf_counter() - t0
    return (
        results,
        _WORKER_PIPELINE.timing_report().as_dict(),
        tracer.export(),
        os.getpid(),
        busy_s,
    )


class ShardedExecutor:
    """Chunked multi-process ``classify_batch`` with serial fallback.

    Parameters
    ----------
    pipeline:
        A fitted :class:`~repro.core.pipeline.ClassificationPipeline`.
        With a ``fork`` start method the workers inherit it without
        serialization; otherwise it must pickle (all supported
        estimators do).
    model_dir:
        Alternative to ``pipeline``: a :func:`save_pipeline` directory
        each worker loads on initialization.  Exactly one of
        ``pipeline`` / ``model_dir`` is required.
    n_workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``1``
        disables the pool entirely (pure serial).
    chunk_size:
        Messages per scattered work item.
    min_parallel:
        Batches smaller than this run serially — scatter/gather
        overhead (pickling texts out, results back) dominates below a
        few thousand messages.
    tracer:
        Optional :class:`repro.obs.Tracer` for the sharded path's trace
        spans; ``None`` uses the process default.  Each sharded batch
        becomes one trace: a ``shard.classify_batch`` root in this
        process with every worker's ``shard.worker_chunk`` stitched in
        as children.

    The pool is created lazily on the first large-enough batch and
    workers are initialized exactly once; use as a context manager (or
    call :meth:`close`) to release the processes.
    """

    def __init__(
        self,
        pipeline=None,
        *,
        model_dir: str | Path | None = None,
        n_workers: int | None = None,
        chunk_size: int = 2000,
        min_parallel: int = 4000,
        tracer=None,
    ) -> None:
        if (pipeline is None) == (model_dir is None):
            raise ValueError("provide exactly one of pipeline / model_dir")
        if n_workers is not None and n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._pipeline = pipeline
        self._model_dir = model_dir
        self.n_workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.min_parallel = min_parallel
        self.tracer = tracer
        self._pool: ProcessPoolExecutor | None = None
        #: batches that went through the pool vs the serial path
        self.n_sharded_batches = 0
        self.n_serial_batches = 0

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    @property
    def pipeline(self):
        """The parent-side pipeline (lazy-loaded from ``model_dir``)."""
        if self._pipeline is None:
            from repro.core.serialize import load_pipeline

            self._pipeline = load_pipeline(self._model_dir)
        return self._pipeline

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.n_workers,
                initializer=_init_worker,
                initargs=(self._pipeline, self._model_dir),
            )
        return self._pool

    # -- classification ------------------------------------------------

    def classify_batch(self, batch: MessageBatch | Sequence[str]):
        """Classify a batch, sharding across workers when it pays off.

        Returns the same ``list[PipelineResult]`` as
        :meth:`ClassificationPipeline.classify_batch`, in input order.
        Service-time accounting (``service_seconds``/``n_classified``
        and the ``shard`` timer stage) lands on the parent pipeline
        either way, so ``messages_per_hour()`` reflects the strategy
        actually used.

        The sharded path is fully observable: workers return their
        per-chunk stage reports (merged into the parent pipeline's
        timer, and therefore into the metrics registry — per-stage item
        counters come out identical to a serial run), per-worker
        message counters, dispatch/queue-wait histograms, and child
        spans stitched under one ``shard.classify_batch`` trace.
        """
        from repro.obs import wellknown
        from repro.obs.trace import default_tracer

        batch = MessageBatch.coerce(batch)
        if self.n_workers == 1 or len(batch) < self.min_parallel:
            self.n_serial_batches += 1
            return self.pipeline.classify_batch(batch)
        self.n_sharded_batches += 1
        tracer = self.tracer if self.tracer is not None else default_tracer()
        pipe = self.pipeline
        registry = pipe.timer.registry
        t0 = perf_counter()
        pool = self._ensure_pool()
        chunks = [c.texts for c in batch.chunks(self.chunk_size)]
        results: list = []
        with tracer.span(
            "shard.classify_batch",
            n_messages=len(batch), n_chunks=len(chunks),
            n_workers=self.n_workers,
        ) as root:
            ctx = root.context()
            futures = [
                (pool.submit(_classify_chunk, texts, ctx), perf_counter(),
                 len(texts))
                for texts in chunks
            ]
            dispatch_hist = wellknown.shard_dispatch_seconds(registry)
            wait_hist = wellknown.shard_queue_wait_seconds(registry)
            msg_counter = wellknown.shard_messages(registry)
            chunk_counter = wellknown.shard_chunks(registry)
            for future, t_submit, n_texts in futures:
                chunk_results, report_dict, spans, pid, busy_s = future.result()
                roundtrip = perf_counter() - t_submit
                dispatch_hist.observe(roundtrip)
                wait_hist.observe(max(0.0, roundtrip - busy_s))
                msg_counter.inc(n_texts, worker=str(pid))
                chunk_counter.inc(worker=str(pid))
                pipe.timer.merge(StageReport.from_dict(report_dict))
                tracer.adopt(spans)
                results.extend(chunk_results)
        elapsed = perf_counter() - t0
        pipe.service_seconds += elapsed
        pipe.n_classified += len(batch)
        pipe.timer.add("shard", elapsed, len(batch))
        n_filtered = sum(1 for r in results if r.filtered)
        pipe._record_batch_metrics(len(batch), n_filtered, elapsed)
        return results
