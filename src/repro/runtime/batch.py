"""Columnar message batches — the unit of work on the hot path.

§1 of the paper motivates scale ("in just an hour over a million
messages can be produced in a small scale test-bed"), and per-message
calls through normalize → tokenize → vectorize cannot reach it:
every layer pays its per-call overhead once *per message*.
:class:`MessageBatch` restructures the hot path around a column-major
view of the stream — parallel tuples of texts, and optional labels,
hosts, and timestamps — so each stage runs once per *batch* and the
vectorizer produces one sparse matrix per batch instead of one row at
a time.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import cycle: core.pipeline runs batch-first on us
    from repro.core.message import SyslogMessage
    from repro.core.taxonomy import Category

__all__ = ["MessageBatch"]


@dataclass(frozen=True)
class MessageBatch:
    """A column-major batch of syslog messages.

    Attributes
    ----------
    texts:
        Message bodies — the classification input, always present.
    labels:
        Optional parallel :class:`Category` labels (training /
        evaluation batches).
    hosts:
        Optional originating hostnames.
    timestamps:
        Optional float64 epoch-seconds array.

    All present columns must have the same length; batches are
    immutable, so slicing (:meth:`chunks`, :meth:`select`) creates
    views of the same column data.
    """

    texts: tuple[str, ...]
    labels: tuple[Category, ...] | None = None
    hosts: tuple[str, ...] | None = None
    timestamps: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.texts)
        for name in ("labels", "hosts", "timestamps"):
            col = getattr(self, name)
            if col is not None and len(col) != n:
                raise ValueError(
                    f"MessageBatch column {name!r} has length {len(col)}, "
                    f"expected {n}"
                )

    # -- construction --------------------------------------------------

    @classmethod
    def of_texts(cls, texts: Iterable[str]) -> "MessageBatch":
        """Batch of bare message bodies."""
        return cls(texts=tuple(texts))

    @classmethod
    def coerce(cls, batch: "MessageBatch | Sequence[str]") -> "MessageBatch":
        """Accept either a batch or a plain sequence of texts.

        This is what lets :meth:`ClassificationPipeline.classify_batch`
        keep its historical ``Sequence[str]`` signature while running
        batch-first internally.
        """
        if isinstance(batch, cls):
            return batch
        return cls(texts=tuple(batch))

    @classmethod
    def from_messages(
        cls,
        messages: Sequence[SyslogMessage],
        labels: Sequence[Category] | None = None,
    ) -> "MessageBatch":
        """Columnarize parsed :class:`SyslogMessage` records."""
        return cls(
            texts=tuple(m.text for m in messages),
            labels=tuple(labels) if labels is not None else None,
            hosts=tuple(m.hostname for m in messages),
            timestamps=np.asarray([m.timestamp for m in messages], dtype=np.float64),
        )

    @classmethod
    def read_lines(
        cls, stream: Iterable[str], batch_size: int
    ) -> Iterator["MessageBatch"]:
        """Read a line stream (file / stdin) in batches of ``batch_size``.

        Blank lines are skipped; the final batch may be short.  This is
        the CLI's chunked reader — the stream is never materialized in
        full, so classifying an arbitrarily large file holds at most
        one batch in memory.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        pending: list[str] = []
        for line in stream:
            text = line.rstrip("\n")
            if not text:
                continue
            pending.append(text)
            if len(pending) == batch_size:
                yield cls(texts=tuple(pending))
                pending = []
        if pending:
            yield cls(texts=tuple(pending))

    @classmethod
    def concat(cls, batches: Sequence["MessageBatch"]) -> "MessageBatch":
        """Concatenate batches column-wise.

        Optional columns are kept only when present on *every* input
        batch (a missing column in one shard would silently misalign
        the rest).
        """
        if not batches:
            return cls(texts=())
        texts: tuple[str, ...] = tuple(t for b in batches for t in b.texts)
        labels = hosts = timestamps = None
        if all(b.labels is not None for b in batches):
            labels = tuple(lab for b in batches for lab in b.labels)  # type: ignore[union-attr]
        if all(b.hosts is not None for b in batches):
            hosts = tuple(h for b in batches for h in b.hosts)  # type: ignore[union-attr]
        if all(b.timestamps is not None for b in batches):
            timestamps = np.concatenate([b.timestamps for b in batches])
        return cls(texts=texts, labels=labels, hosts=hosts, timestamps=timestamps)

    # -- slicing -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.texts)

    def __iter__(self) -> Iterator[str]:
        return iter(self.texts)

    def select(self, indices: Sequence[int]) -> "MessageBatch":
        """Row-subset batch (used for blacklist pass-through splits)."""
        idx = list(indices)
        return MessageBatch(
            texts=tuple(self.texts[i] for i in idx),
            labels=tuple(self.labels[i] for i in idx) if self.labels else None,
            hosts=tuple(self.hosts[i] for i in idx) if self.hosts else None,
            timestamps=self.timestamps[idx] if self.timestamps is not None else None,
        )

    def chunks(self, size: int) -> Iterator["MessageBatch"]:
        """Split into consecutive sub-batches of at most ``size`` rows.

        This is the scatter step for sharded execution: chunk
        boundaries preserve order, so concatenating per-chunk results
        reassembles the original batch order.
        """
        if size <= 0:
            raise ValueError(f"chunk size must be positive, got {size}")
        for start in range(0, len(self.texts), size):
            sl = slice(start, start + size)
            yield MessageBatch(
                texts=self.texts[sl],
                labels=self.labels[sl] if self.labels else None,
                hosts=self.hosts[sl] if self.hosts else None,
                timestamps=self.timestamps[sl] if self.timestamps is not None else None,
            )
