"""Corpus-trained word embeddings (PPMI + truncated SVD).

The LLM simulator needs a genuine notion of lexical semantics — enough
that "throttling" is near "temperature" and far from "preauth" — so
the simulated models actually *read* messages instead of cheating off
ground-truth labels.  We use the classic count-based recipe (Levy &
Goldberg 2014 showed it approximates word2vec): a positive pointwise
mutual information matrix over a ±``window`` token co-occurrence count,
factored with sparse truncated SVD.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.textproc.tfidf import TfidfVectorizer

__all__ = ["CorpusEmbeddings"]


@dataclass
class CorpusEmbeddings:
    """Word vectors learned from a message corpus.

    Parameters
    ----------
    dim:
        Embedding dimensionality (SVD rank).
    window:
        Co-occurrence half-window in tokens.
    min_count:
        Tokens rarer than this are dropped.
    seed:
        SVD restart seed (svds is deterministic given v0).
    """

    dim: int = 64
    window: int = 3
    min_count: int = 2
    seed: int = 0

    vocab_: dict[str, int] = field(default_factory=dict, init=False, repr=False)
    vectors_: np.ndarray | None = field(default=None, init=False, repr=False)
    _analyzer: TfidfVectorizer = field(
        default_factory=lambda: TfidfVectorizer(), init=False, repr=False
    )

    def fit(self, messages: Sequence[str]) -> "CorpusEmbeddings":
        """Learn embeddings from raw messages.

        Raises
        ------
        ValueError
            If the corpus yields fewer than ``dim + 1`` vocabulary
            tokens (SVD rank would exceed the matrix size).
        """
        docs = [self._analyzer.analyze(m) for m in messages]
        counts = Counter(t for doc in docs for t in doc)
        vocab = sorted(t for t, c in counts.items() if c >= self.min_count)
        if len(vocab) <= self.dim:
            raise ValueError(
                f"vocabulary of {len(vocab)} tokens cannot support "
                f"{self.dim}-dimensional embeddings; lower dim or min_count"
            )
        self.vocab_ = {t: i for i, t in enumerate(vocab)}
        n = len(vocab)
        cooc: Counter[tuple[int, int]] = Counter()
        for doc in docs:
            ids = [self.vocab_[t] for t in doc if t in self.vocab_]
            for i, a in enumerate(ids):
                for b in ids[max(0, i - self.window) : i]:
                    cooc[(a, b)] += 1
                    cooc[(b, a)] += 1
        if not cooc:
            raise ValueError("no co-occurrences found; corpus too small")
        rows, cols, vals = zip(*((a, b, v) for (a, b), v in cooc.items()))
        C = sp.coo_matrix(
            (np.asarray(vals, dtype=np.float64), (rows, cols)), shape=(n, n)
        ).tocsr()
        total = C.sum()
        row_sum = np.asarray(C.sum(axis=1)).ravel()
        col_sum = np.asarray(C.sum(axis=0)).ravel()
        # PPMI: log(p(a,b) / (p(a) p(b))), clipped at 0, computed only
        # on the nonzero entries.
        C = C.tocoo()
        pmi = np.log(
            (C.data * total) / (row_sum[C.row] * col_sum[C.col])
        )
        keep = pmi > 0
        P = sp.coo_matrix(
            (pmi[keep], (C.row[keep], C.col[keep])), shape=(n, n)
        ).tocsr()
        k = min(self.dim, min(P.shape) - 1)
        rng = np.random.default_rng(self.seed)
        u, s, _vt = scipy.sparse.linalg.svds(P, k=k, v0=rng.random(n))
        # svds returns ascending singular values; order is irrelevant
        # for the dot products we use, but weight by sqrt(s) as usual.
        vecs = u * np.sqrt(np.maximum(s, 0.0))[np.newaxis, :]
        norms = np.linalg.norm(vecs, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self.vectors_ = vecs / norms
        return self

    def __contains__(self, token: str) -> bool:
        return token in self.vocab_

    def vector(self, token: str) -> np.ndarray | None:
        """Unit vector for ``token``, or None if out of vocabulary."""
        if self.vectors_ is None:
            raise RuntimeError("CorpusEmbeddings used before fit")
        idx = self.vocab_.get(token)
        return None if idx is None else self.vectors_[idx]

    def embed_text(self, text: str) -> np.ndarray:
        """Mean-of-token-vectors embedding of a raw message (unit norm).

        Out-of-vocabulary tokens are skipped; an all-OOV text embeds to
        the zero vector.
        """
        if self.vectors_ is None:
            raise RuntimeError("CorpusEmbeddings used before fit")
        acc = np.zeros(self.vectors_.shape[1])
        hit = 0
        for tok in self._analyzer.analyze(text):
            idx = self.vocab_.get(tok)
            if idx is not None:
                acc += self.vectors_[idx]
                hit += 1
        if hit:
            norm = np.linalg.norm(acc)
            if norm > 0:
                acc /= norm
        return acc

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two texts' embeddings."""
        return float(self.embed_text(a) @ self.embed_text(b))
