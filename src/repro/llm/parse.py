"""Parsing generated classifications back into taxonomy categories.

§5.2's first observed failure: "we would frequently get a 'generated
classification' ... where the chosen classification ... was an entirely
new category that we hadn't previously defined, but that makes sense in
the context of the message" — which "makes the process of automating
the parsing of the result more difficult."  The parser distinguishes:

- a clean category hit (possibly after the ``Category:`` marker),
- an **invented category** — a plausible-looking label outside the
  taxonomy,
- unparseable output (role-play continuations, truncated text).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.core.taxonomy import Category

__all__ = ["ParseOutcome", "ParsedClassification", "parse_classification"]


class ParseOutcome(enum.Enum):
    """What the parser found in the model output."""

    OK = "ok"
    INVENTED_CATEGORY = "invented_category"
    UNPARSEABLE = "unparseable"


@dataclass(frozen=True)
class ParsedClassification:
    """Parser result.

    ``category`` is set only for :attr:`ParseOutcome.OK`;
    ``invented_label`` only for invented categories.
    """

    outcome: ParseOutcome
    category: Category | None = None
    invented_label: str | None = None


_MARKER_RE = re.compile(r"category\s*:\s*\"?([^\"\n.]+)", re.IGNORECASE)
# an invented label looks like a short Title-Case phrase
_LABELISH_RE = re.compile(r'^"?([A-Z][\w-]*(?:\s[A-Z][\w-]*){0,3})"?[.!]?$')


def parse_classification(response: str) -> ParsedClassification:
    """Extract a category from free-form model output.

    Strategy: prefer the first ``Category: X`` marker line; otherwise
    scan lines for an exact category name; otherwise, if the first line
    looks like a short label phrase, report it as an invented category;
    otherwise unparseable.
    """
    text = response.strip()
    if not text:
        return ParsedClassification(ParseOutcome.UNPARSEABLE)

    m = _MARKER_RE.search(text)
    if m:
        label = m.group(1).strip()
        try:
            return ParsedClassification(ParseOutcome.OK, Category.from_name(label))
        except KeyError:
            return ParsedClassification(
                ParseOutcome.INVENTED_CATEGORY, invented_label=label
            )

    lowered = text.lower()
    for cat in Category:
        if cat.value.lower() in lowered:
            return ParsedClassification(ParseOutcome.OK, cat)

    first_line = text.splitlines()[0].strip()
    lm = _LABELISH_RE.match(first_line)
    if lm:
        label = lm.group(1).strip()
        try:
            return ParsedClassification(ParseOutcome.OK, Category.from_name(label))
        except KeyError:
            return ParsedClassification(
                ParseOutcome.INVENTED_CATEGORY, invented_label=label
            )
    return ParsedClassification(ParseOutcome.UNPARSEABLE)
