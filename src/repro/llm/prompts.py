"""Classification-prompt construction (§5.2).

The paper's most successful prompt "contained the following elements:
an introduction of the problem, a list of the potential categories, a
list of the most commonly used words generated via TF-IDF for each
category, a specification of the output format, and finally ... an
example syslog message with its corresponding classification in the
output format expected."  :class:`PromptConfig` switches each element
independently so the prompt ablation (EXP-PROMPT) can measure what each
one buys.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.taxonomy import Category

__all__ = ["PromptConfig", "build_prompt", "ONE_SHOT_EXAMPLE"]

#: The worked example embedded in one-shot prompts (from Figure 1's
#: style of message).
ONE_SHOT_EXAMPLE: tuple[str, Category] = (
    "Warning: Socket 2 - CPU 23 throttling",
    Category.THERMAL,
)


@dataclass(frozen=True)
class PromptConfig:
    """Which §5.2 prompt elements to include.

    Attributes
    ----------
    intro:
        Problem introduction sentence.
    category_list:
        Enumerate the allowed categories.
    tfidf_hints:
        Per-category top-token lists (requires ``hints`` at build time).
    format_spec:
        Output-format instruction ("respond with exactly one ...").
    one_shot_example:
        A worked example message + classification.
    """

    intro: bool = True
    category_list: bool = True
    tfidf_hints: bool = True
    format_spec: bool = True
    one_shot_example: bool = True

    @classmethod
    def minimal(cls) -> "PromptConfig":
        """Bare prompt: just the question and the categories."""
        return cls(intro=False, tfidf_hints=False, format_spec=False,
                   one_shot_example=False)

    @classmethod
    def full(cls) -> "PromptConfig":
        """The paper's most successful prompt."""
        return cls()


def build_prompt(
    message: str,
    *,
    config: PromptConfig = PromptConfig.full(),
    categories: Sequence[Category] = tuple(Category),
    hints: Mapping[Category, Sequence[str]] | None = None,
) -> str:
    """Render the classification prompt for ``message``.

    Parameters
    ----------
    message:
        The syslog message to classify.
    config:
        Element switches.
    categories:
        Allowed categories, in presentation order.
    hints:
        Per-category TF-IDF top tokens (from
        :func:`repro.textproc.tfidf.category_top_tokens`); required
        when ``config.tfidf_hints`` is set.

    Raises
    ------
    ValueError
        If TF-IDF hints are requested but not provided.
    """
    if config.tfidf_hints and hints is None:
        raise ValueError("config.tfidf_hints requires the hints mapping")
    parts: list[str] = []
    if config.intro:
        parts.append(
            "You are monitoring the system log of a heterogeneous HPC "
            "test-bed cluster. Classify each syslog message into the "
            "issue category a system administrator should act on."
        )
    if config.category_list:
        cat_names = ", ".join(f'"{c.value}"' for c in categories)
        parts.append(
            f"Classify the given syslog message into one of the following "
            f"categories: {cat_names}."
        )
    if config.tfidf_hints:
        lines = ["Words commonly associated with each category:"]
        for c in categories:
            toks = hints.get(c) if hints else None
            if toks:
                lines.append(f'- {c.value}: {", ".join(toks)}')
        parts.append("\n".join(lines))
    if config.format_spec:
        parts.append(
            "Respond with exactly one line of the form "
            '"Category: <category>" using one of the categories above, '
            "and nothing else."
        )
    if config.one_shot_example:
        ex_msg, ex_cat = ONE_SHOT_EXAMPLE
        parts.append(
            f'Example:\nMessage: "{ex_msg}"\nCategory: {ex_cat.value}'
        )
    parts.append(f'Message: "{message}"')
    return "\n\n".join(parts)
