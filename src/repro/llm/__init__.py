"""Simulated large-language-model classification (§5.2).

The paper evaluates generative LLMs (Falcon-7b/40b) and a zero-shot
entailment model (facebook/bart-large-mnli) as syslog classifiers on a
4×A100 node.  Offline we reproduce both the *behavioural* findings
(alignment failures: invented categories, excessive generation,
role-play continuation; fixed by capping ``max_new_tokens``) and the
*economic* finding (Table 3: per-message latency makes generative
classification infeasible at test-bed message rates) from first
principles:

- :mod:`repro.llm.hardware` / :mod:`repro.llm.costmodel` — a roofline
  latency model (compute-bound prefill, memory-bandwidth-bound decode,
  tensor-parallel efficiency) of the paper's inference node,
- :mod:`repro.llm.tokenizer` — deterministic subword token counting,
- :mod:`repro.llm.embeddings` — PPMI + truncated-SVD word embeddings
  trained on the syslog corpus (the simulator's "understanding"),
- :mod:`repro.llm.zeroshot` — a real entailment-style zero-shot
  classifier over those embeddings (the BART-MNLI analogue),
- :mod:`repro.llm.prompts` — the §5.2 prompt builder (intro, category
  list, TF-IDF hints, format spec, one-shot example),
- :mod:`repro.llm.generative` — the simulated generative model with
  capability- and prompt-dependent accuracy and failure modes,
- :mod:`repro.llm.parse` — response parsing / category alignment.
"""

from repro.llm.hardware import GPUSpec, InferenceNode, PAPER_NODE, A100_SXM4_40GB
from repro.llm.costmodel import ModelSpec, InferenceCostModel, GenerationTiming
from repro.llm.models import MODEL_CATALOG, model_spec
from repro.llm.tokenizer import count_tokens, tokenize_subwords
from repro.llm.embeddings import CorpusEmbeddings
from repro.llm.zeroshot import ZeroShotClassifier, ZeroShotResult
from repro.llm.prompts import PromptConfig, build_prompt, ONE_SHOT_EXAMPLE
from repro.llm.generative import SimulatedGenerativeLLM, GenerationResult
from repro.llm.parse import parse_classification, ParseOutcome
from repro.llm.assistant import AdminAssistant, AssistantReply

__all__ = [
    "GPUSpec",
    "InferenceNode",
    "PAPER_NODE",
    "A100_SXM4_40GB",
    "ModelSpec",
    "InferenceCostModel",
    "GenerationTiming",
    "MODEL_CATALOG",
    "model_spec",
    "count_tokens",
    "tokenize_subwords",
    "CorpusEmbeddings",
    "ZeroShotClassifier",
    "ZeroShotResult",
    "PromptConfig",
    "build_prompt",
    "ONE_SHOT_EXAMPLE",
    "SimulatedGenerativeLLM",
    "GenerationResult",
    "parse_classification",
    "ParseOutcome",
    "AdminAssistant",
    "AssistantReply",
]
