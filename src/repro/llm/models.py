"""Catalog of the models the paper discusses.

Parameter counts are the published sizes; ``capability`` follows the
leaderboard ordering the paper cites (Falcon-40b led the open leader-
board at evaluation time; llama2-70b-chat, used in Figure 1, is the
strongest).  llama2-70b-chat is catalogued at int8 — at fp16 its 140 GB
of weights exceed the paper node's 4×40 GB.
"""

from __future__ import annotations

from repro.llm.costmodel import ModelSpec

__all__ = ["MODEL_CATALOG", "model_spec"]

MODEL_CATALOG: dict[str, ModelSpec] = {
    "tiiuae/falcon-7b": ModelSpec(
        name="tiiuae/falcon-7b",
        n_params=7.0e9,
        bytes_per_param=2.0,
        architecture="causal",
        capability=0.45,
    ),
    "tiiuae/falcon-40b": ModelSpec(
        name="tiiuae/falcon-40b",
        n_params=40.0e9,
        bytes_per_param=2.0,
        architecture="causal",
        capability=0.62,
    ),
    "meta-llama/Llama-2-70b-chat-hf": ModelSpec(
        name="meta-llama/Llama-2-70b-chat-hf",
        n_params=70.0e9,
        bytes_per_param=1.0,  # int8 to fit the 4×A100-40GB node
        architecture="causal",
        capability=0.8,
    ),
    "facebook/bart-large-mnli": ModelSpec(
        name="facebook/bart-large-mnli",
        n_params=0.406e9,
        bytes_per_param=2.0,
        architecture="encoder",
        capability=0.5,
    ),
}


def model_spec(name: str) -> ModelSpec:
    """Catalog lookup tolerating the bare model name without org prefix.

    Raises
    ------
    KeyError
        Unknown model.
    """
    if name in MODEL_CATALOG:
        return MODEL_CATALOG[name]
    for key, spec in MODEL_CATALOG.items():
        if key.split("/")[-1].lower() == name.lower():
            return spec
    raise KeyError(name)
