"""Low-frequency LLM assistant tasks (§7, Future Work).

The paper concludes LLMs are too expensive for per-message
classification but "there still might be use-cases for these tools in
the context of a test-bed cluster.  Some examples could be summarizing
the system status, explanation of groups of syslog messages within a
given node, generating recommended responses to admin emails ... These
models excel in tasks that involve unstructured text."

:class:`AdminAssistant` implements those three tasks over the simulated
LLM stack.  The content is *grounded*: every statement is derived from
log-store aggregations or the taxonomy, then rendered through the
generative simulator's voice, with the cost model accounting for each
call — so the economics bench can show that a handful of daily
assistant calls cost a negligible fraction of per-message
classification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.taxonomy import TAXONOMY, Category
from repro.llm.costmodel import GenerationTiming, InferenceCostModel, ModelSpec
from repro.llm.tokenizer import count_tokens
from repro.monitor.frequency import BurstDetector
from repro.stream.opensearch import LogStore

__all__ = ["AssistantReply", "AdminAssistant"]


@dataclass(frozen=True)
class AssistantReply:
    """One assistant response plus its simulated cost."""

    text: str
    timing: GenerationTiming


@dataclass
class AdminAssistant:
    """Grounded LLM assistant for test-bed administration.

    Parameters
    ----------
    spec:
        The generative model used (cost and verbosity).
    cost_model:
        Latency model (defaults to the paper's node).
    interval_s:
        Histogram interval for status summaries.
    """

    spec: ModelSpec
    cost_model: InferenceCostModel = None  # type: ignore[assignment]
    interval_s: float = 300.0

    def __post_init__(self) -> None:
        if self.spec.architecture != "causal":
            raise ValueError(f"{self.spec.name} is not a generative model")
        if self.cost_model is None:
            self.cost_model = InferenceCostModel()

    def _cost(self, prompt: str, response: str) -> GenerationTiming:
        return self.cost_model.generation_timing(
            self.spec,
            prompt_tokens=count_tokens(prompt),
            gen_tokens=count_tokens(response),
        )

    # -- task 1: system status summary ----------------------------------

    def summarize_status(self, store: LogStore) -> AssistantReply:
        """Natural-language cluster status from store aggregations."""
        n = len(store)
        if n == 0:
            text = "The log store is empty; no activity to summarize."
            return AssistantReply(text, self._cost("summarize", text))
        cats = store.terms_aggregation("category", top=8)
        hosts = store.terms_aggregation("hostname", top=3)
        apps = store.terms_aggregation("app", top=3)
        bursts = BurstDetector(z_threshold=4.0).detect_in_store(
            store, interval_s=self.interval_s
        )
        lines = [f"Cluster status summary over {n} indexed messages."]
        if cats:
            actionable = [(c, k) for c, k in cats if c != Category.UNIMPORTANT.value]
            noise = dict(cats).get(Category.UNIMPORTANT.value, 0)
            lines.append(
                f"Noise accounts for {noise} messages"
                + (
                    "; the leading actionable categories are "
                    + ", ".join(f"{c} ({k})" for c, k in actionable[:3]) + "."
                    if actionable
                    else "; no actionable categories were recorded."
                )
            )
        if bursts:
            b = max(bursts, key=lambda b: b.peak_z)
            lines.append(
                f"A message surge peaked at t={b.start:.0f}s "
                f"(z={b.peak_z:.1f}, {b.total_messages} messages); "
                "correlate with facility events around that time."
            )
        else:
            lines.append("Message rates were stable; no surges detected.")
        lines.append(
            "The noisiest hosts were "
            + ", ".join(f"{h} ({k})" for h, k in hosts)
            + "; the busiest services were "
            + ", ".join(f"{a} ({k})" for a, k in apps)
            + "."
        )
        text = " ".join(lines)
        prompt = f"Summarize the system status of the test-bed from {n} syslog records."
        return AssistantReply(text, self._cost(prompt, text))

    # -- task 2: per-node explanation ------------------------------------------

    def explain_node(self, store: LogStore, hostname: str) -> AssistantReply:
        """Explain the groups of messages a node has been emitting."""
        docs = store.term_query(hostname).docs
        prompt = f"Explain the recent syslog activity of node {hostname}."
        if not docs:
            text = f"Node {hostname} has emitted no indexed messages."
            return AssistantReply(text, self._cost(prompt, text))
        from collections import Counter

        by_cat: Counter[Category] = Counter(
            d.category for d in docs if d.category is not None
        )
        by_app: Counter[str] = Counter(d.message.app for d in docs)
        lines = [
            f"Node {hostname} emitted {len(docs)} messages, mostly via "
            + ", ".join(f"{a} ({k})" for a, k in by_app.most_common(3)) + "."
        ]
        for cat, k in by_cat.most_common(3):
            if cat is Category.UNIMPORTANT:
                continue
            spec = TAXONOMY[cat]
            example = next(
                d.message.text for d in docs if d.category is cat
            )
            lines.append(
                f"{k} messages indicate {cat.value}: for example "
                f'"{example}". This suggests {spec.description}; '
                f"recommended action: {spec.action}."
            )
        if len(lines) == 1:
            lines.append("All of it is routine noise; no action is required.")
        text = " ".join(lines)
        return AssistantReply(text, self._cost(prompt, text))

    # -- task 3: admin email reply ---------------------------------------------

    def draft_admin_reply(
        self, question: str, store: LogStore, hostname: str | None = None
    ) -> AssistantReply:
        """Draft a reply to an administrator/user email, grounded in logs."""
        prompt = f"Draft a reply to: {question}"
        context = (
            self.explain_node(store, hostname).text
            if hostname
            else self.summarize_status(store).text
        )
        text = (
            f"Hello,\n\nThanks for reaching out. Regarding your question "
            f'("{question.strip()}"): {context} '
            "Please let us know if the behaviour persists after the "
            "suggested action.\n\nBest regards,\nTest-bed operations"
        )
        return AssistantReply(text, self._cost(prompt + context, text))
