"""Entailment-style zero-shot classification (the BART-MNLI analogue).

Zero-shot text classification (Yin et al. 2019, [23] in the paper)
scores how well a text entails the hypothesis "This message is about
<label>." for each candidate label, with no training on those labels.
Our implementation keeps that contract: the classifier sees only the
message, the label names/descriptions, and corpus-level lexical
semantics (:class:`~repro.llm.embeddings.CorpusEmbeddings`) — never the
ground-truth labels of any message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.taxonomy import TAXONOMY, Category
from repro.llm.embeddings import CorpusEmbeddings

__all__ = ["ZeroShotClassifier", "ZeroShotResult"]


@dataclass(frozen=True)
class ZeroShotResult:
    """Scores for one classified message."""

    category: Category
    scores: dict[Category, float]  # softmax over categories


@dataclass
class ZeroShotClassifier:
    """Score message-vs-hypothesis similarity over category hypotheses.

    Parameters
    ----------
    embeddings:
        Fitted corpus embeddings.
    categories:
        Candidate set (defaults to the full taxonomy).
    use_descriptions:
        Build each hypothesis from the category's one-line description
        as well as its name (richer hypotheses, like giving the NLI
        model a verbalizer template).
    temperature:
        Softmax temperature over cosine scores.
    """

    embeddings: CorpusEmbeddings
    categories: tuple[Category, ...] = tuple(Category)
    use_descriptions: bool = True
    temperature: float = 0.1

    _hyp_vecs: np.ndarray | None = field(default=None, init=False, repr=False)

    def _hypothesis(self, cat: Category) -> str:
        base = f"This message is about {cat.value}."
        if self.use_descriptions:
            base += " " + TAXONOMY[cat].description
        return base

    def _ensure_hypotheses(self) -> np.ndarray:
        if self._hyp_vecs is None:
            self._hyp_vecs = np.stack(
                [self.embeddings.embed_text(self._hypothesis(c)) for c in self.categories]
            )
        return self._hyp_vecs

    def scores(self, text: str) -> dict[Category, float]:
        """Softmax-normalized entailment scores per category."""
        if self.temperature <= 0:
            raise ValueError(f"temperature must be positive, got {self.temperature}")
        hyp = self._ensure_hypotheses()
        v = self.embeddings.embed_text(text)
        sims = hyp @ v
        z = sims / self.temperature
        z -= z.max()
        p = np.exp(z)
        p /= p.sum()
        return {c: float(pi) for c, pi in zip(self.categories, p)}

    def classify(self, text: str) -> ZeroShotResult:
        """Best-scoring category with the full score map."""
        scores = self.scores(text)
        best = max(scores, key=scores.get)
        return ZeroShotResult(category=best, scores=scores)

    def predict(self, texts) -> list[Category]:
        """Batch classification."""
        return [self.classify(t).category for t in texts]
