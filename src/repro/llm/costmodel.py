"""Roofline latency model for LLM inference.

Reproduces Table 3's per-message inference times from first principles
rather than by hard-coding them:

- **Prefill** (processing the prompt) is compute-bound: a forward pass
  costs ≈ 2·P FLOPs per token, served at the node's aggregate fp16
  throughput discounted by an achievable-efficiency factor.
- **Decode** (generating tokens one at a time at batch 1) is memory-
  bandwidth-bound: every generated token reads all P·bytes weights, so
  the floor is ``weights_bytes / effective_bandwidth`` per token.
- **Tensor parallelism** over g GPUs multiplies bandwidth by g but
  pays per-token communication, modelled as an efficiency penalty
  ``1 / (1 + comm_penalty·(g-1))`` — small models spread over many
  GPUs gain little, which is why Falcon-7b's latency is much more than
  1/5.7 of Falcon-40b's in the paper.
- **Encoder classifiers** (BART-MNLI zero-shot) run one entailment
  pass per candidate label; for sub-billion-parameter models the
  per-pass framework overhead (tokenization, kernel launches, Python)
  dominates the arithmetic, so it is modelled explicitly.

Default efficiency constants are calibrated once against Table 3 (see
EXPERIMENTS.md) and represent an unoptimized HuggingFace ``transformers``
deployment — the paper's setup — not a tuned serving stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.llm.hardware import InferenceNode, PAPER_NODE

__all__ = ["ModelSpec", "GenerationTiming", "InferenceCostModel"]


@dataclass(frozen=True)
class ModelSpec:
    """An LLM's cost- and behaviour-relevant parameters.

    Attributes
    ----------
    name:
        HuggingFace-style model id.
    n_params:
        Parameter count.
    bytes_per_param:
        2 for fp16, 1 for int8 quantization.
    architecture:
        ``"causal"`` (generative) or ``"encoder"`` (zero-shot NLI).
    capability:
        Simulator quality knob in [0, 1]: drives latent classification
        accuracy and alignment-failure rates in
        :mod:`repro.llm.generative`.  Calibrated loosely to leaderboard
        ordering (llama2-70b-chat > falcon-40b > falcon-7b).
    """

    name: str
    n_params: float
    bytes_per_param: float = 2.0
    architecture: str = "causal"
    capability: float = 0.5

    @property
    def weights_bytes(self) -> float:
        return self.n_params * self.bytes_per_param


@dataclass(frozen=True)
class GenerationTiming:
    """Latency breakdown for one inference call."""

    prefill_s: float
    decode_s: float
    overhead_s: float
    tokens_in: int
    tokens_out: int
    n_gpus: int

    @property
    def total_s(self) -> float:
        return self.prefill_s + self.decode_s + self.overhead_s

    @property
    def messages_per_hour(self) -> float:
        """Sustained single-stream throughput (Table 3's last column)."""
        return 3600.0 / self.total_s if self.total_s > 0 else float("inf")


@dataclass(frozen=True)
class InferenceCostModel:
    """Latency model for a given inference node.

    Parameters
    ----------
    node:
        The GPU server (defaults to the paper's 4×A100).
    decode_efficiency:
        Achieved fraction of peak HBM bandwidth during single-GPU
        batch-1 decode (HF transformers ≈ 0.28).
    prefill_efficiency:
        Achieved fraction of peak fp16 FLOPs during prefill.
    comm_penalty:
        Per-extra-GPU decode efficiency penalty of tensor parallelism.
    encoder_pass_overhead_s:
        Fixed per-forward-pass framework overhead (dominates small
        encoder models).
    """

    node: InferenceNode = PAPER_NODE
    decode_efficiency: float = 0.28
    prefill_efficiency: float = 0.35
    comm_penalty: float = 0.39
    encoder_pass_overhead_s: float = 0.016

    def gpus_for(self, model: ModelSpec) -> int:
        """GPUs the model occupies on this node."""
        return self.node.gpus_needed(model.weights_bytes)

    def decode_seconds_per_token(self, model: ModelSpec) -> float:
        """Memory-bound per-token decode latency at batch 1."""
        g = self.gpus_for(model)
        eff = self.decode_efficiency / (1.0 + self.comm_penalty * (g - 1))
        bw = g * self.node.gpu.hbm_bandwidth_gbs * 1e9 * eff
        return model.weights_bytes / bw

    def prefill_seconds(self, model: ModelSpec, prompt_tokens: int) -> float:
        """Compute-bound prompt-processing latency."""
        if prompt_tokens < 0:
            raise ValueError(f"prompt_tokens must be >= 0, got {prompt_tokens}")
        g = self.gpus_for(model)
        flops = 2.0 * model.n_params * prompt_tokens
        peak = g * self.node.gpu.fp16_tflops * 1e12 * self.prefill_efficiency
        return flops / peak

    def generation_timing(
        self, model: ModelSpec, *, prompt_tokens: int, gen_tokens: int
    ) -> GenerationTiming:
        """Latency of one generative classification call.

        Raises
        ------
        ValueError
            For an encoder model (use :meth:`zero_shot_timing`).
        """
        if model.architecture != "causal":
            raise ValueError(
                f"{model.name} is not generative; use zero_shot_timing"
            )
        if gen_tokens < 0:
            raise ValueError(f"gen_tokens must be >= 0, got {gen_tokens}")
        return GenerationTiming(
            prefill_s=self.prefill_seconds(model, prompt_tokens),
            decode_s=gen_tokens * self.decode_seconds_per_token(model),
            overhead_s=0.0,
            tokens_in=prompt_tokens,
            tokens_out=gen_tokens,
            n_gpus=self.gpus_for(model),
        )

    def batched_generation_throughput(
        self,
        model: ModelSpec,
        *,
        prompt_tokens: int,
        gen_tokens: int,
        batch_size: int,
    ) -> float:
        """Sustained messages/hour with batched decoding.

        Batch-1 decode is memory-bound (each step re-reads the weights
        for one token), so batching amortizes the weight reads across
        the batch until the step turns compute-bound at roughly
        ``bytes·FLOPs/(2·bandwidth)`` concurrent sequences.  This
        extends Table 3's single-stream analysis: the paper timed
        single messages, and an obvious objection is "just batch" —
        this method quantifies how far batching actually goes.

        Raises
        ------
        ValueError
            Non-positive batch size or an encoder model.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if model.architecture != "causal":
            raise ValueError(f"{model.name} is not generative")
        g = self.gpus_for(model)
        eff_mem = self.decode_efficiency / (1.0 + self.comm_penalty * (g - 1))
        bw = g * self.node.gpu.hbm_bandwidth_gbs * 1e9 * eff_mem
        flops = g * self.node.gpu.fp16_tflops * 1e12 * self.prefill_efficiency
        # one decode step for the whole batch:
        mem_time = model.weights_bytes / bw
        compute_time = 2.0 * model.n_params * batch_size / flops
        step = max(mem_time, compute_time)
        decode = gen_tokens * step
        prefill = 2.0 * model.n_params * prompt_tokens * batch_size / flops
        batch_time = prefill + decode
        return 3600.0 * batch_size / batch_time

    def zero_shot_timing(
        self, model: ModelSpec, *, text_tokens: int, n_labels: int,
        hypothesis_tokens: int = 10,
    ) -> GenerationTiming:
        """Latency of one zero-shot NLI classification call.

        The HF zero-shot pipeline scores each candidate label with a
        separate premise+hypothesis forward pass.
        """
        if model.architecture != "encoder":
            raise ValueError(f"{model.name} is not an encoder NLI model")
        if n_labels < 1:
            raise ValueError(f"n_labels must be >= 1, got {n_labels}")
        g = self.gpus_for(model)
        per_pass_tokens = text_tokens + hypothesis_tokens
        flops = 2.0 * model.n_params * per_pass_tokens * n_labels
        peak = g * self.node.gpu.fp16_tflops * 1e12 * self.prefill_efficiency
        return GenerationTiming(
            prefill_s=flops / peak,
            decode_s=0.0,
            overhead_s=self.encoder_pass_overhead_s * n_labels,
            tokens_in=per_pass_tokens * n_labels,
            tokens_out=0,
            n_gpus=g,
        )
