"""Deterministic subword tokenization for cost accounting.

The cost model needs token counts, not a trained vocabulary.  This
tokenizer mimics BPE statistics deterministically: words split into
chunks of at most ``_PIECE`` characters (BPE averages ~4 chars/token on
English; syslog text skews shorter because of identifiers), digits and
punctuation tokenize per character group — matching the empirical
~1.3–2 tokens/word of real tokenizers on log text.
"""

from __future__ import annotations

import re

__all__ = ["tokenize_subwords", "count_tokens"]

_PIECE = 4
_SPLIT_RE = re.compile(r"[A-Za-z]+|\d+|[^\sA-Za-z\d]")


def tokenize_subwords(text: str) -> list[str]:
    """Split ``text`` into deterministic subword pieces."""
    pieces: list[str] = []
    for m in _SPLIT_RE.finditer(text):
        tok = m.group(0)
        if tok.isalpha() and len(tok) > _PIECE:
            pieces.extend(tok[i : i + _PIECE] for i in range(0, len(tok), _PIECE))
        elif tok.isdigit() and len(tok) > 2:
            # numbers tokenize digit-pair-wise in most BPE vocabs
            pieces.extend(tok[i : i + 2] for i in range(0, len(tok), 2))
        else:
            pieces.append(tok)
    return pieces


def count_tokens(text: str) -> int:
    """Number of subword tokens in ``text``."""
    return len(tokenize_subwords(text))
