"""Inference hardware specifications.

§4.2.1: "Inference timings were collected from a single system
consisting of four A100 SXM4 Nvidia GPUs each with 40GB of VRAM
connected via NVLink with two AMD EPYC 7742 Rome processors." —
modelled here as :data:`PAPER_NODE`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUSpec", "InferenceNode", "A100_SXM4_40GB", "PAPER_NODE"]


@dataclass(frozen=True)
class GPUSpec:
    """One GPU's roofline-relevant specs.

    Attributes
    ----------
    name:
        Marketing name.
    vram_gb:
        Memory capacity (determines how many GPUs a model needs).
    hbm_bandwidth_gbs:
        Peak memory bandwidth in GB/s (bounds decode throughput).
    fp16_tflops:
        Peak dense fp16 tensor throughput (bounds prefill).
    """

    name: str
    vram_gb: float
    hbm_bandwidth_gbs: float
    fp16_tflops: float


A100_SXM4_40GB = GPUSpec(
    name="A100-SXM4-40GB",
    vram_gb=40.0,
    hbm_bandwidth_gbs=1555.0,
    fp16_tflops=312.0,
)


@dataclass(frozen=True)
class InferenceNode:
    """A multi-GPU inference server.

    Attributes
    ----------
    gpu:
        The GPU model installed.
    n_gpus:
        GPUs available for tensor parallelism.
    interconnect_gbs:
        Per-direction NVLink bandwidth between GPUs; lowers the
        parallel efficiency of small models (communication cost per
        token does not shrink with model size as fast as compute does).
    """

    name: str
    gpu: GPUSpec
    n_gpus: int
    interconnect_gbs: float = 300.0

    def gpus_needed(self, model_bytes: float, *, headroom: float = 1.2) -> int:
        """GPUs required to hold ``model_bytes`` (weights × headroom for
        KV-cache and activations), capped at the node's GPU count.

        Raises
        ------
        ValueError
            If the model doesn't fit on the node at all.
        """
        need_gb = model_bytes * headroom / 1e9
        n = max(1, int(-(-need_gb // self.gpu.vram_gb)))  # ceil division
        if n > self.n_gpus:
            raise ValueError(
                f"model needs {n} × {self.gpu.name} but node {self.name!r} "
                f"has only {self.n_gpus}"
            )
        return n


#: The paper's timing node (§4.2.1).
PAPER_NODE = InferenceNode(
    name="tivan-inference",
    gpu=A100_SXM4_40GB,
    n_gpus=4,
    interconnect_gbs=300.0,
)
