"""The simulated generative LLM classifier.

What the simulator must get right (because the paper's §5.2 findings
rest on it):

1. **Latent classification quality** scales with model capability and
   with prompt quality.  The latent decision is made by a real
   mechanism — entailment scoring over corpus embeddings, plus overlap
   with the per-category TF-IDF hint words when the prompt includes
   them — perturbed by capability-scaled noise.  No ground-truth labels
   are consulted.
2. **Alignment failure modes**:
   - *invented categories* (a plausible new label instead of one of the
     given choices), less frequent with a format spec and an example,
   - *excessive generation* (unsolicited justification), which the
     paper observed "despite the inclusion of instructions" — only the
     ``max_new_tokens`` cap fixes its cost,
   - *role-play continuation* (the §5.2 anecdote: the model invents a
     system-administrator character and a new artificial syslog
     message to classify).
3. **Latency** comes from the roofline cost model, so capping
   ``max_new_tokens`` visibly buys back throughput (Table 3 shape).

All randomness is derived deterministically from (model, message), so
classifying the same message with the same model always yields the
same behaviour — like greedy decoding does in practice.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.taxonomy import TAXONOMY, Category
from repro.llm.costmodel import GenerationTiming, InferenceCostModel, ModelSpec
from repro.llm.embeddings import CorpusEmbeddings
from repro.llm.parse import ParsedClassification, parse_classification
from repro.llm.prompts import PromptConfig, build_prompt
from repro.llm.tokenizer import count_tokens, tokenize_subwords
from repro.llm.zeroshot import ZeroShotClassifier
from repro.textproc.tokenize import tokenize as _word_tokenize

__all__ = ["SimulatedGenerativeLLM", "GenerationResult"]


@dataclass(frozen=True)
class GenerationResult:
    """Everything one generative classification call produced."""

    prompt: str
    response: str
    parsed: ParsedClassification
    timing: GenerationTiming
    truncated: bool
    #: the category the model latently decided on (before any
    #: alignment failure garbled the surface form)
    latent_category: Category

    @property
    def category(self) -> Category | None:
        return self.parsed.category


# Surface vocabulary for invented labels, keyed by the latent category
# the model had in mind (invented labels "make sense in the context of
# the message provided", §5.2).
_INVENTED_LABELS: dict[Category, tuple[str, ...]] = {
    Category.THERMAL: ("CPU Overheating", "Cooling Failure", "Thermal Throttling Event"),
    Category.MEMORY: ("DIMM Failure", "Memory Corruption", "Out-Of-Memory Condition"),
    Category.SSH: ("Remote Access", "Login Activity", "Authentication Event"),
    Category.INTRUSION: ("Security Breach", "Privilege Escalation", "Suspicious Activity"),
    Category.SLURM: ("Scheduler Error", "Job Failure", "Workload Manager Issue"),
    Category.USB: ("Peripheral Attach", "Removable Media", "Device Hotplug"),
    Category.HARDWARE: ("Component Degradation", "Power Anomaly", "System Fault"),
    Category.UNIMPORTANT: ("Routine Operation", "Informational", "Application Noise"),
}

_ROLEPLAY = (
    "\n\nNow consider the following scenario. You are Alex, a seasoned "
    "system administrator at a national laboratory. A new syslog "
    'message arrives: "kernel: watchdog: BUG: soft lockup - CPU#12 '
    'stuck for 22s!". Alex, please classify this message into one of '
    "the categories above and explain your reasoning step by step."
)


@dataclass
class SimulatedGenerativeLLM:
    """A behaviourally-faithful stand-in for a generative LLM.

    Parameters
    ----------
    spec:
        Model size/capability (drives latency and quality).
    embeddings:
        Corpus embeddings the latent classifier reads with.
    cost_model:
        Latency model (defaults to the paper's 4×A100 node).
    max_new_tokens:
        Generation cap; ``None`` reproduces the paper's initial
        uncapped runs (excessive generation at full cost).
    noise_scale:
        Base scale of the capability noise on latent scores.
    """

    spec: ModelSpec
    embeddings: CorpusEmbeddings
    cost_model: InferenceCostModel = field(default_factory=InferenceCostModel)
    max_new_tokens: int | None = None
    noise_scale: float = 0.35

    _zeroshot: ZeroShotClassifier = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.spec.architecture != "causal":
            raise ValueError(f"{self.spec.name} is not a generative model")
        self._zeroshot = ZeroShotClassifier(self.embeddings)

    # -- deterministic per-call randomness --------------------------------

    def _rng(self, message: str) -> np.random.Generator:
        digest = hashlib.sha256(
            (self.spec.name + "\x00" + message).encode()
        ).digest()
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    # -- latent decision ---------------------------------------------------

    def _latent_scores(
        self,
        message: str,
        categories: Sequence[Category],
        config: PromptConfig,
        hints: Mapping[Category, Sequence[str]] | None,
        rng: np.random.Generator,
    ) -> dict[Category, float]:
        scores = self._zeroshot.scores(message)
        out = {c: scores.get(c, 0.0) for c in categories}
        if config.tfidf_hints and hints:
            words = set(_word_tokenize(message))
            for c in categories:
                hint_words = set(hints.get(c, ()))
                if hint_words:
                    overlap = len(words & hint_words) / len(hint_words)
                    out[c] = out[c] + 0.35 * overlap
        sigma = self.noise_scale * (1.0 - self.spec.capability)
        if not config.intro:
            sigma *= 1.3  # no task framing: noisier reading
        for c in categories:
            out[c] += float(rng.normal(0.0, sigma))
        return out

    # -- response surface ---------------------------------------------------

    def _failure_probs(self, config: PromptConfig) -> tuple[float, float, float]:
        """(p_invent, p_excessive, p_roleplay) for this prompt shape."""
        bad = 1.0 - self.spec.capability
        p_invent = bad * 0.45
        if config.format_spec:
            p_invent *= 0.45
        if config.one_shot_example:
            p_invent *= 0.55
        # Excessive generation "persisted ... despite the inclusion of
        # instructions that stated to only respond with one of the
        # categories given" — instructions barely dent it.
        p_excessive = 0.35 + 0.4 * bad
        if config.format_spec:
            p_excessive *= 0.9
        p_roleplay = 0.12 * bad
        return p_invent, p_excessive, p_roleplay

    def _justification(self, message: str, cat: Category) -> str:
        spec = TAXONOMY[cat]
        salient = [w for w in _word_tokenize(message) if len(w) > 3][:3]
        cue = f" The phrase \"{' '.join(salient)}\" is the key indicator." if salient else ""
        return (
            f' The message "{message}" would fall under the category of '
            f'"{cat.value}". This is because it describes {spec.description}.'
            f"{cue} A reasonable next step would be to "
            f"{spec.action}."
        )

    def classify(
        self,
        message: str,
        *,
        config: PromptConfig = PromptConfig.full(),
        categories: Sequence[Category] = tuple(Category),
        hints: Mapping[Category, Sequence[str]] | None = None,
    ) -> GenerationResult:
        """Run one simulated generative classification call.

        When no ``hints`` mapping is supplied, the TF-IDF-hints prompt
        element is silently dropped from ``config`` (there is nothing
        to render).
        """
        if config.tfidf_hints and hints is None:
            config = PromptConfig(
                intro=config.intro,
                category_list=config.category_list,
                tfidf_hints=False,
                format_spec=config.format_spec,
                one_shot_example=config.one_shot_example,
            )
        prompt = build_prompt(
            message, config=config, categories=categories, hints=hints
        )
        rng = self._rng(message)
        scores = self._latent_scores(message, categories, config, hints, rng)
        latent = max(scores, key=scores.get)
        p_invent, p_excessive, p_roleplay = self._failure_probs(config)

        if rng.random() < p_invent:
            options = _INVENTED_LABELS[latent]
            label = options[int(rng.integers(0, len(options)))]
        else:
            label = latent.value

        response = f"Category: {label}"
        if not config.format_spec and rng.random() < 0.5:
            # without a format spec the model often answers in prose
            response = f'The category is "{label}".'
        if rng.random() < p_excessive:
            response += "\n" + self._justification(message, latent)
            if rng.random() < p_roleplay / max(p_excessive, 1e-9):
                response += _ROLEPLAY

        response, truncated = self._truncate(response)
        gen_tokens = count_tokens(response)
        timing = self.cost_model.generation_timing(
            self.spec,
            prompt_tokens=count_tokens(prompt),
            gen_tokens=gen_tokens,
        )
        return GenerationResult(
            prompt=prompt,
            response=response,
            parsed=parse_classification(response),
            timing=timing,
            truncated=truncated,
            latent_category=latent,
        )

    def _truncate(self, response: str) -> tuple[str, bool]:
        if self.max_new_tokens is None:
            return response, False
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        pieces = tokenize_subwords(response)
        if len(pieces) <= self.max_new_tokens:
            return response, False
        # Cut the string at the character position where the cap lands.
        import re

        spans = [
            m.span() for m in re.finditer(r"[A-Za-z]+|\d+|[^\sA-Za-z\d]", response)
        ]
        count = 0
        cut = 0
        for start, end in spans:
            seg = response[start:end]
            n = count_tokens(seg)
            if count + n > self.max_new_tokens:
                break
            count += n
            cut = end
        return response[:cut], True

    def explain(self, message: str) -> str:
        """Figure 1-style answer: classification plus an explanation.

        Always includes the justification (the behaviour Figure 1
        showcases for llama2-70b-chat-hf).
        """
        rng = self._rng(message)
        scores = self._latent_scores(
            message, tuple(Category), PromptConfig.full(), None, rng
        )
        latent = max(scores, key=scores.get)
        return self._justification(message, latent).strip()
