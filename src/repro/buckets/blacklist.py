"""Low-threshold edit-distance blacklist pre-filter (§5.1).

The paper's traditional classifiers confuse "Unimportant" with real
categories, and suggest "a preprocessing step that is able to filter
out this category of messages prior to classification ... with the
previously utilized minimum-edit distance techniques using a lower
value for the categorization threshold.  This could allow system
administrators to 'blacklist' specific kinds of messages while allowing
the remaining messages ... to use the more general classifier."

:class:`BlacklistFilter` implements exactly that: a
:class:`~repro.buckets.bucketer.BucketStore` of known-noise exemplars
matched with a *tighter* threshold than the general bucketing (default
3 vs 7), so only messages nearly identical to known noise are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.buckets.bucketer import BucketStore
from repro.textproc.normalize import MaskingNormalizer

__all__ = ["BlacklistFilter"]


@dataclass
class BlacklistFilter:
    """Pre-classification filter for administrator-blacklisted noise.

    Parameters
    ----------
    threshold:
        Edit-distance threshold for a blacklist hit; deliberately lower
        than the general bucketing threshold so the filter stays
        conservative (a false drop hides a real issue).
    premask:
        Mask volatile fields before matching.
    """

    threshold: int = 3
    premask: bool = True

    store: BucketStore = field(init=False, repr=False)
    n_filtered: int = field(default=0, init=False)
    n_passed: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.store = BucketStore(self.threshold)
        self._normalizer = MaskingNormalizer() if self.premask else None

    def shape(self, text: str) -> str:
        """The comparison key for ``text``: its masked *shape* when
        ``premask`` is on, the raw text otherwise.

        Two messages with the same shape hit the same blacklist bucket,
        so this is what administrators (and
        :meth:`ClassificationPipeline.fit`'s coverage budgeting) count
        when deciding which noise shapes to blacklist.
        """
        return self._normalizer.normalize(text) if self._normalizer else text

    def blacklist(self, exemplar: str) -> None:
        """Add one known-noise exemplar."""
        self.store.add(self.shape(exemplar))

    def blacklist_many(self, exemplars) -> None:
        """Add many exemplars (e.g. all masked shapes labelled Unimportant)."""
        seen: set[str] = set()
        for e in exemplars:
            key = self.shape(e)
            if key not in seen:
                seen.add(key)
                self.store.add(key)

    def matches(self, text: str) -> bool:
        """True when ``text`` matches a blacklisted shape (no counters)."""
        return self.store.find(self.shape(text)) is not None

    def is_noise(self, text: str) -> bool:
        """Like :meth:`matches`, but updates the filter counters."""
        hit = self.matches(text)
        if hit:
            self.n_filtered += 1
        else:
            self.n_passed += 1
        return hit

    def split(self, texts) -> tuple[list[int], list[int]]:
        """Partition indices of ``texts`` into (passed, filtered)."""
        passed, filtered = [], []
        for i, t in enumerate(texts):
            (filtered if self.is_noise(t) else passed).append(i)
        return passed, filtered
