"""The legacy Levenshtein-distance bucketing classifier (§3, §4.4.1).

Messages are grouped into buckets of strings within a minimum edit
distance of a bucket *exemplar* (the paper's threshold is 7).  An
administrator labels each bucket once; new messages inherit the label
of the bucket they fall into, and messages matching no bucket queue up
as new exemplars awaiting classification — the re-training burden the
paper set out to eliminate.

:mod:`repro.buckets.blacklist` implements the §5.1 suggestion of a
low-threshold edit-distance pre-filter that drops known-"Unimportant"
messages before the ML classifier runs.
"""

from repro.buckets.bucketer import (
    Bucket,
    BucketStore,
    LevenshteinBucketClassifier,
    UNCLASSIFIED,
)
from repro.buckets.blacklist import BlacklistFilter
from repro.buckets.drain_classifier import DrainTemplateClassifier

__all__ = [
    "Bucket",
    "BucketStore",
    "LevenshteinBucketClassifier",
    "UNCLASSIFIED",
    "BlacklistFilter",
    "DrainTemplateClassifier",
]
