"""Template-based classification via Drain mining.

A modern drop-in for the §3 bucketing workflow: instead of Levenshtein
buckets, messages group under Drain-mined templates, each labelled once
by an administrator.  It shares bucketing's *operational* model (label
a group, inherit the label) and therefore — as the drift experiment
shows — also shares its failure mode: firmware updates mint new
templates that queue for labels, whereas the TF-IDF+ML pipeline rides
out the same drift untouched.  Faster grouping does not fix the
re-labelling treadmill; that is the paper's underlying point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.taxonomy import Category
from repro.textproc.drain import DrainTemplateMiner

__all__ = ["DrainTemplateClassifier"]


@dataclass
class DrainTemplateClassifier:
    """Classify messages by the label of their Drain template.

    Parameters
    ----------
    similarity_threshold, depth:
        Passed through to the miner.
    """

    similarity_threshold: float = 0.5
    depth: int = 3

    miner: DrainTemplateMiner = field(init=False, repr=False)
    labels_: dict[int, Category] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.miner = DrainTemplateMiner(
            depth=self.depth, similarity_threshold=self.similarity_threshold
        )

    def fit(self, texts, labels) -> "DrainTemplateClassifier":
        """Mine templates and label each with its first member's label."""
        if len(texts) != len(labels):
            raise ValueError(
                f"texts and labels lengths differ: {len(texts)} vs {len(labels)}"
            )
        for text, label in zip(texts, labels):
            tpl = self.miner.add(text)
            self.labels_.setdefault(tpl.template_id, label)
        return self

    def predict_one(self, text: str) -> Category | None:
        """Label of the matching template, or None (unmatched = one unit
        of administrator labelling backlog)."""
        tpl = self.miner.match(text)
        if tpl is None:
            return None
        return self.labels_.get(tpl.template_id)

    def predict(self, texts) -> list[Category | None]:
        """Batch classification."""
        return [self.predict_one(t) for t in texts]

    @property
    def n_templates(self) -> int:
        return self.miner.n_templates

    def observe(self, text: str) -> tuple[Category | None, bool]:
        """Streaming form: (label or None, was a new template created?).

        New templates join the unlabelled queue exactly like new
        Levenshtein buckets do.
        """
        before = self.miner.n_templates
        tpl = self.miner.add(text)
        is_new = self.miner.n_templates > before
        return self.labels_.get(tpl.template_id), is_new
