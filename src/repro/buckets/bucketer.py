"""Exemplar-based Levenshtein bucketing.

The matching loop is the hot path: every incoming message is compared
against every exemplar until one matches.  Three optimizations keep it
tractable (and faithful — the production system had the same
structure):

1. messages are *masked* first (volatile fields → placeholders), so
   most duplicates collapse to an exact-match dictionary hit;
2. exemplars are binned by length — a candidate within distance k must
   be within k characters in length;
3. the banded ``levenshtein_within`` cuts off as soon as the threshold
   is provably exceeded.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.core.taxonomy import Category
from repro.textproc.distance import hamming, levenshtein_within
from repro.textproc.normalize import MaskingNormalizer

__all__ = ["Bucket", "BucketStore", "LevenshteinBucketClassifier", "UNCLASSIFIED"]

#: Sentinel label for buckets awaiting administrator classification.
UNCLASSIFIED = None


@dataclass
class Bucket:
    """A group of near-identical messages.

    Attributes
    ----------
    exemplar:
        The representative (masked) message new arrivals compare to.
    category:
        Administrator-assigned label, or :data:`UNCLASSIFIED`.
    count:
        Messages absorbed so far.
    """

    bucket_id: int
    exemplar: str
    category: Category | None = UNCLASSIFIED
    count: int = 0


class BucketStore:
    """Length-binned exemplar index for threshold matching.

    Parameters
    ----------
    threshold:
        Maximum distance to an exemplar for a match.
    metric:
        ``"levenshtein"`` (default) or ``"hamming"``.  §3 used both
        "minimum edit distance based metrics like Levenshtein distance
        and Hamming distance"; Hamming only ever matches equal-length
        strings (it is cheaper, and stricter on insertions/deletions).
    """

    def __init__(self, threshold: int, metric: str = "levenshtein") -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if metric not in ("levenshtein", "hamming"):
            raise ValueError(f"unknown metric {metric!r}")
        self.threshold = threshold
        self.metric = metric
        self.buckets: list[Bucket] = []
        self._by_length: dict[int, list[Bucket]] = defaultdict(list)
        self._exact: dict[str, Bucket] = {}

    def __len__(self) -> int:
        return len(self.buckets)

    def add(self, exemplar: str, category: Category | None = UNCLASSIFIED) -> Bucket:
        """Create a bucket with ``exemplar``."""
        b = Bucket(bucket_id=len(self.buckets), exemplar=exemplar, category=category)
        self.buckets.append(b)
        self._by_length[len(exemplar)].append(b)
        self._exact.setdefault(exemplar, b)
        return b

    def find(self, text: str) -> Bucket | None:
        """First bucket whose exemplar is within the threshold of ``text``."""
        hit = self._exact.get(text)
        if hit is not None:
            return hit
        n = len(text)
        if self.metric == "hamming":
            for b in self._by_length.get(n, ()):
                if hamming(text, b.exemplar) <= self.threshold:
                    return b
            return None
        for length in range(n - self.threshold, n + self.threshold + 1):
            for b in self._by_length.get(length, ()):
                if levenshtein_within(text, b.exemplar, self.threshold) is not None:
                    return b
        return None


@dataclass
class LevenshteinBucketClassifier:
    """The legacy bucketing classifier.

    Usage mirrors the production workflow: ``observe`` streams messages
    in, creating unclassified buckets for novel shapes; the
    administrator labels the queue via ``label_bucket`` (or in bulk via
    ``fit`` on a labelled corpus); ``predict`` then classifies new
    messages by bucket membership, returning :data:`UNCLASSIFIED` for
    messages that match no labelled bucket — each of which is exactly
    one unit of the administrator re-training burden the paper counts.

    Parameters
    ----------
    threshold:
        Maximum edit distance to an exemplar (paper: 7).
    premask:
        Apply masking normalization before distance computation.  The
        production pipeline masked obvious volatiles; disable to see
        the raw approach drown in identifier churn.
    metric:
        ``"levenshtein"`` or ``"hamming"`` (§3 used both).
    """

    threshold: int = 7
    premask: bool = True
    metric: str = "levenshtein"

    store: BucketStore = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.store = BucketStore(self.threshold, metric=self.metric)
        self._normalizer = MaskingNormalizer() if self.premask else None

    def _prep(self, text: str) -> str:
        return self._normalizer.normalize(text) if self._normalizer else text

    # -- training-time ---------------------------------------------------

    def observe(self, text: str) -> Bucket:
        """Route one message; creates an unclassified bucket if novel."""
        key = self._prep(text)
        bucket = self.store.find(key)
        if bucket is None:
            bucket = self.store.add(key)
        bucket.count += 1
        return bucket

    def label_bucket(self, bucket_id: int, category: Category) -> None:
        """Administrator labels one bucket (one unit of manual effort)."""
        self.store.buckets[bucket_id].category = category

    def fit(self, texts, labels) -> "LevenshteinBucketClassifier":
        """Bulk-build labelled buckets from a labelled corpus.

        Mirrors §4.4.1: ~196k messages collapse to ~3.4k exemplar
        buckets that actually need human labels.  A bucket's label is
        the label of the first message that created it.
        """
        if len(texts) != len(labels):
            raise ValueError(
                f"texts and labels lengths differ: {len(texts)} vs {len(labels)}"
            )
        for text, label in zip(texts, labels):
            bucket = self.observe(text)
            if bucket.category is UNCLASSIFIED:
                bucket.category = label
        return self

    # -- inference ---------------------------------------------------------

    def predict_one(self, text: str) -> Category | None:
        """Label of the matching bucket, or UNCLASSIFIED if none/unlabelled."""
        bucket = self.store.find(self._prep(text))
        if bucket is None:
            return UNCLASSIFIED
        return bucket.category

    def predict(self, texts) -> list[Category | None]:
        """Classify a batch; unmatched messages yield UNCLASSIFIED."""
        return [self.predict_one(t) for t in texts]

    # -- reporting -----------------------------------------------------------

    @property
    def n_buckets(self) -> int:
        return len(self.store)

    @property
    def unclassified_queue(self) -> list[Bucket]:
        """Buckets awaiting labels — the administrator's backlog."""
        return [b for b in self.store.buckets if b.category is UNCLASSIFIED]
