"""Stochastic gradient descent linear classifier (the paper's "Log-loss SGD").

Mini-batch SGD over a softmax (log-loss) or multiclass-hinge objective
with L2 penalty and an inverse-scaling learning rate.  SGD's single
cheap pass over the data is why it trains fast (0.47 s in Figure 3) at
a small accuracy cost relative to full-batch L-BFGS logistic
regression — a trade-off this implementation reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.base import check_X, check_Xy, safe_dot
from repro.ml.preprocessing import LabelEncoder

__all__ = ["SGDClassifier"]


@dataclass
class SGDClassifier:
    """Mini-batch SGD with log (softmax) or hinge loss.

    Parameters
    ----------
    loss:
        ``"log"`` (multinomial logistic) or ``"hinge"`` (Crammer-Singer
        style multiclass hinge).
    alpha:
        L2 penalty weight.
    epochs:
        Passes over the training data.
    batch_size:
        Mini-batch rows per update.
    eta0, power_t:
        Learning rate schedule ``eta0 / (1 + t)**power_t``.
    seed:
        Shuffling seed.
    """

    loss: str = "log"
    alpha: float = 1e-6
    epochs: int = 25
    batch_size: int = 16
    eta0: float = 4.0
    power_t: float = 0.4
    seed: int = 0

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    coef_: np.ndarray = field(default=None, init=False, repr=False)
    intercept_: np.ndarray = field(default=None, init=False, repr=False)

    def fit(self, X, y) -> "SGDClassifier":
        """Run ``epochs`` shuffled mini-batch passes."""
        if self.loss not in ("log", "hinge"):
            raise ValueError(f"unknown loss {self.loss!r}; use 'log' or 'hinge'")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        X, y, _ = check_Xy(X, y)
        enc = LabelEncoder()
        yi = enc.fit_transform(y)
        self.classes_ = enc.classes_
        n, d = X.shape
        k = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        W = np.zeros((d, k))
        b = np.zeros(k)
        t = 0
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                Xb = X[idx]
                yb = yi[idx]
                m = len(idx)
                z = safe_dot(Xb, W) + b
                if self.loss == "log":
                    z -= z.max(axis=1, keepdims=True)
                    p = np.exp(z)
                    p /= p.sum(axis=1, keepdims=True)
                    p[np.arange(m), yb] -= 1.0
                    gz = p / m
                else:  # multiclass hinge: margin violation vs best wrong class
                    correct = z[np.arange(m), yb].copy()
                    z[np.arange(m), yb] = -np.inf
                    wrong = z.argmax(axis=1)
                    margin = correct - z[np.arange(m), wrong]
                    viol = margin < 1.0
                    gz = np.zeros((m, k))
                    rows = np.flatnonzero(viol)
                    gz[rows, wrong[rows]] = 1.0 / m
                    gz[rows, yb[rows]] = -1.0 / m
                eta = self.eta0 / (1.0 + t) ** self.power_t
                grad_W = np.asarray(Xb.T @ gz) + self.alpha * W
                W -= eta * grad_W
                b -= eta * gz.sum(axis=0)
                t += 1
        self.coef_, self.intercept_ = W, b
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw class scores, shape (n, k)."""
        if self.coef_ is None:
            raise RuntimeError("SGDClassifier used before fit")
        X = check_X(X, self.coef_.shape[0])
        return safe_dot(X, self.coef_) + self.intercept_

    def predict(self, X) -> np.ndarray:
        """Highest-scoring class per row."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Softmax probabilities (only meaningful for ``loss='log'``)."""
        if self.loss != "log":
            raise RuntimeError("predict_proba requires loss='log'")
        z = self.decision_function(X)
        z -= z.max(axis=1, keepdims=True)
        p = np.exp(z)
        return p / p.sum(axis=1, keepdims=True)
