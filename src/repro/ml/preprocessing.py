"""Label encoding."""

from __future__ import annotations

import numpy as np

__all__ = ["LabelEncoder"]


class LabelEncoder:
    """Map arbitrary hashable labels to contiguous integer codes."""

    def __init__(self) -> None:
        self.classes_: np.ndarray | None = None
        self._index: dict = {}

    def fit(self, y) -> "LabelEncoder":
        """Learn the label set (sorted unique order)."""
        self.classes_ = np.unique(np.asarray(y))
        self._index = {lab: i for i, lab in enumerate(self.classes_.tolist())}
        return self

    def transform(self, y) -> np.ndarray:
        """Encode labels; raises ``ValueError`` on unseen labels."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder used before fit")
        try:
            return np.asarray([self._index[lab] for lab in np.asarray(y).tolist()],
                              dtype=np.int64)
        except KeyError as e:  # re-raise with context
            raise ValueError(f"unseen label during transform: {e.args[0]!r}") from e

    def fit_transform(self, y) -> np.ndarray:
        """Fit on ``y`` and return its codes."""
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> np.ndarray:
        """Decode integer codes back to original labels."""
        if self.classes_ is None:
            raise RuntimeError("LabelEncoder used before fit")
        codes = np.asarray(codes, dtype=np.int64)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("code outside fitted range")
        return self.classes_[codes]
