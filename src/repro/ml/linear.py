"""Linear classifiers: multinomial logistic regression and ridge.

Both operate directly on sparse TF-IDF matrices.

- :class:`LogisticRegression` fits a softmax model with L2 penalty by
  L-BFGS (scipy), the same optimizer family scikit-learn defaults to —
  so its accuracy and its position in the training-time ranking match
  the paper's Figure 3.
- :class:`RidgeClassifier` fits one damped least-squares problem per
  class against ±1 targets via LSQR, which is efficient for sparse,
  tall systems and reproduces sklearn's ``RidgeClassifier(solver=
  'lsqr')`` behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.optimize
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.ml.base import check_X, check_Xy, safe_dot
from repro.ml.preprocessing import LabelEncoder

__all__ = ["LogisticRegression", "RidgeClassifier"]


def _log_softmax(z: np.ndarray) -> np.ndarray:
    zmax = z.max(axis=1, keepdims=True)
    zs = z - zmax
    return zs - np.log(np.exp(zs).sum(axis=1, keepdims=True))


@dataclass
class LogisticRegression:
    """Multinomial (softmax) logistic regression with L2 penalty.

    Parameters
    ----------
    C:
        Inverse regularization strength (sklearn convention: the data
        term is scaled by ``C``; larger C = weaker penalty).
    max_iter:
        L-BFGS iteration cap.
    tol:
        L-BFGS gradient tolerance.
    fit_intercept:
        Learn a per-class bias term.
    """

    C: float = 1.0
    max_iter: int = 200
    tol: float = 1e-6
    fit_intercept: bool = True

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    coef_: np.ndarray = field(default=None, init=False, repr=False)
    intercept_: np.ndarray = field(default=None, init=False, repr=False)
    n_iter_: int = field(default=0, init=False, repr=False)

    def fit(self, X, y) -> "LogisticRegression":
        """Fit by minimizing L2-regularized multinomial NLL with L-BFGS."""
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}")
        X, y, _ = check_Xy(X, y)
        enc = LabelEncoder()
        yi = enc.fit_transform(y)
        self.classes_ = enc.classes_
        n, d = X.shape
        k = len(self.classes_)
        onehot = np.zeros((n, k))
        onehot[np.arange(n), yi] = 1.0

        dim = d + (1 if self.fit_intercept else 0)

        def objective(wflat: np.ndarray):
            W = wflat.reshape(dim, k)
            coefs, bias = (W[:d], W[d]) if self.fit_intercept else (W, 0.0)
            z = safe_dot(X, coefs) + bias
            logp = _log_softmax(z)
            nll = -self.C * float((onehot * logp).sum())
            reg = 0.5 * float((coefs * coefs).sum())
            p = np.exp(logp)
            gz = self.C * (p - onehot)  # (n, k)
            gcoef = (X.T @ gz) + coefs
            gcoef = np.asarray(gcoef)
            if self.fit_intercept:
                grad = np.vstack([gcoef, gz.sum(axis=0)[np.newaxis, :]])
            else:
                grad = gcoef
            return nll + reg, grad.ravel()

        w0 = np.zeros(dim * k)
        res = scipy.optimize.minimize(
            objective,
            w0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        W = res.x.reshape(dim, k)
        if self.fit_intercept:
            self.coef_, self.intercept_ = W[:d], W[d]
        else:
            self.coef_, self.intercept_ = W, np.zeros(k)
        self.n_iter_ = int(res.nit)
        return self

    def decision_function(self, X) -> np.ndarray:
        """Class scores (pre-softmax logits), shape (n, k)."""
        if self.coef_ is None:
            raise RuntimeError("LogisticRegression used before fit")
        X = check_X(X, self.coef_.shape[0])
        return safe_dot(X, self.coef_) + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Softmax class probabilities, rows summing to 1."""
        return np.exp(_log_softmax(self.decision_function(X)))

    def predict(self, X) -> np.ndarray:
        """Most probable class per row."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]


@dataclass
class RidgeClassifier:
    """One-vs-rest ridge regression classifier (±1 targets, LSQR).

    Parameters
    ----------
    alpha:
        L2 damping.
    max_iter:
        LSQR iteration cap per class.
    """

    alpha: float = 1.0
    max_iter: int = 1000

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    coef_: np.ndarray = field(default=None, init=False, repr=False)
    intercept_: np.ndarray = field(default=None, init=False, repr=False)

    def fit(self, X, y) -> "RidgeClassifier":
        """Solve one damped least-squares problem per class."""
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {self.alpha}")
        X, y, _ = check_Xy(X, y)
        enc = LabelEncoder()
        yi = enc.fit_transform(y)
        self.classes_ = enc.classes_
        n, d = X.shape
        k = len(self.classes_)
        # Center targets per class via an intercept computed from class
        # priors; LSQR solves the damped system for the coefficients.
        self.coef_ = np.zeros((d, k))
        self.intercept_ = np.zeros(k)
        damp = float(np.sqrt(self.alpha))
        for j in range(k):
            t = np.where(yi == j, 1.0, -1.0)
            t_mean = t.mean()
            sol = scipy.sparse.linalg.lsqr(
                X, t - t_mean, damp=damp, iter_lim=self.max_iter
            )
            self.coef_[:, j] = sol[0]
            self.intercept_[j] = t_mean
        return self

    def decision_function(self, X) -> np.ndarray:
        """Per-class regression scores, shape (n, k)."""
        if self.coef_ is None:
            raise RuntimeError("RidgeClassifier used before fit")
        X = check_X(X, self.coef_.shape[0])
        return safe_dot(X, self.coef_) + self.intercept_

    def predict(self, X) -> np.ndarray:
        """Class with the highest regression score."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]
