"""Naive Bayes variants for text counts.

:class:`ComplementNB` (Rennie et al. 2003) estimates each class's
weights from the *complement* of the class — all documents NOT in it —
which corrects multinomial NB's bias toward frequent classes and is the
standard NB choice for imbalanced text like Table 2's distribution.
Its near-zero testing time (0.0018 s, the fastest in Figure 3) follows
from prediction being a single sparse matmul.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.ml.base import check_X, check_Xy

__all__ = ["ComplementNB", "MultinomialNB"]


def _class_feature_counts(X, yi: np.ndarray, k: int) -> np.ndarray:
    """Sum of feature values per class, shape (k, d)."""
    d = X.shape[1]
    out = np.zeros((k, d))
    for j in range(k):
        rows = np.flatnonzero(yi == j)
        block = X[rows]
        out[j] = np.asarray(block.sum(axis=0)).ravel()
    return out


@dataclass
class ComplementNB:
    """Complement naive Bayes with optional weight normalization.

    Parameters
    ----------
    alpha:
        Additive (Lidstone) smoothing.
    norm:
        L1-normalize per-class weight vectors (CNB's "weight
        normalization" correction).
    """

    alpha: float = 1.0
    norm: bool = False

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    feature_log_prob_: np.ndarray = field(default=None, init=False, repr=False)
    class_log_prior_: np.ndarray = field(default=None, init=False, repr=False)

    def fit(self, X, y) -> "ComplementNB":
        """Estimate complement-class feature log-probabilities."""
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        X, y, classes = check_Xy(X, y)
        if sp.issparse(X):
            if X.nnz and X.data.min() < 0:
                raise ValueError("naive Bayes requires non-negative features")
        elif X.size and X.min() < 0:
            raise ValueError("naive Bayes requires non-negative features")
        self.classes_ = classes
        index = {c: i for i, c in enumerate(classes.tolist())}
        yi = np.asarray([index[v] for v in y.tolist()])
        k = len(classes)
        counts = _class_feature_counts(X, yi, k)  # (k, d)
        total = counts.sum(axis=0, keepdims=True)  # (1, d)
        comp = total - counts + self.alpha
        comp_tot = comp.sum(axis=1, keepdims=True)
        logw = np.log(comp) - np.log(comp_tot)
        # CNB scores with the *negated* complement weights: documents
        # should look UNLIKE the complement of their class.
        weights = -logw
        if self.norm:
            weights = weights / np.abs(weights).sum(axis=1, keepdims=True)
        self.feature_log_prob_ = weights
        priors = np.bincount(yi, minlength=k).astype(np.float64)
        self.class_log_prior_ = np.log(priors / priors.sum())
        return self

    def decision_function(self, X) -> np.ndarray:
        """Per-class CNB scores, shape (n, k)."""
        if self.feature_log_prob_ is None:
            raise RuntimeError("ComplementNB used before fit")
        X = check_X(X, self.feature_log_prob_.shape[1])
        return np.asarray(X @ self.feature_log_prob_.T)

    def predict(self, X) -> np.ndarray:
        """Highest-scoring class."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]


@dataclass
class MultinomialNB:
    """Standard multinomial naive Bayes (baseline for CNB comparison)."""

    alpha: float = 1.0

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    feature_log_prob_: np.ndarray = field(default=None, init=False, repr=False)
    class_log_prior_: np.ndarray = field(default=None, init=False, repr=False)

    def fit(self, X, y) -> "MultinomialNB":
        """Estimate per-class feature log-probabilities and priors."""
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        X, y, classes = check_Xy(X, y)
        self.classes_ = classes
        index = {c: i for i, c in enumerate(classes.tolist())}
        yi = np.asarray([index[v] for v in y.tolist()])
        k = len(classes)
        counts = _class_feature_counts(X, yi, k) + self.alpha
        self.feature_log_prob_ = np.log(counts) - np.log(
            counts.sum(axis=1, keepdims=True)
        )
        priors = np.bincount(yi, minlength=k).astype(np.float64)
        self.class_log_prior_ = np.log(priors / priors.sum())
        return self

    def decision_function(self, X) -> np.ndarray:
        """Joint log-likelihood per class."""
        if self.feature_log_prob_ is None:
            raise RuntimeError("MultinomialNB used before fit")
        X = check_X(X, self.feature_log_prob_.shape[1])
        return np.asarray(X @ self.feature_log_prob_.T) + self.class_log_prior_

    def predict(self, X) -> np.ndarray:
        """Maximum a-posteriori class."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Posterior class probabilities."""
        z = self.decision_function(X)
        z -= z.max(axis=1, keepdims=True)
        p = np.exp(z)
        return p / p.sum(axis=1, keepdims=True)
