"""Estimator protocol and shared array plumbing."""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
import scipy.sparse as sp

__all__ = ["Classifier", "check_Xy", "check_X", "as_float_matrix", "safe_dot"]

Matrix = "np.ndarray | sp.spmatrix"


@runtime_checkable
class Classifier(Protocol):
    """The fit/predict contract all classifiers implement.

    ``classes_`` (set during ``fit``) holds the label values in the
    order used by ``predict_proba``/``decision_function`` columns.
    """

    classes_: np.ndarray

    def fit(self, X, y) -> "Classifier":
        """Fit on features ``X`` and labels ``y``; returns self."""
        ...

    def predict(self, X) -> np.ndarray:
        """Predicted label per row of ``X``."""
        ...


def as_float_matrix(X):
    """Coerce ``X`` to CSR float64 (sparse) or 2-D float64 ndarray."""
    if sp.issparse(X):
        X = X.tocsr()
        if X.dtype != np.float64:
            X = X.astype(np.float64)
        return X
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
    return X


def check_X(X, n_features: int | None = None):
    """Validate a feature matrix, optionally against a feature count."""
    X = as_float_matrix(X)
    if n_features is not None and X.shape[1] != n_features:
        raise ValueError(
            f"X has {X.shape[1]} features, estimator was fitted with {n_features}"
        )
    return X


def check_Xy(X, y):
    """Validate an (X, y) training pair; returns (X, y, classes).

    ``y`` may hold any hashable labels; ``classes`` is their sorted
    unique array.

    Raises
    ------
    ValueError
        On length mismatch, empty data, or single-class ``y``
        (classification needs at least two classes).
    """
    X = as_float_matrix(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]} entries")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on empty data")
    classes = np.unique(y)
    if classes.shape[0] < 2:
        raise ValueError(f"y contains a single class: {classes!r}")
    return X, y, classes


def safe_dot(X, W: np.ndarray) -> np.ndarray:
    """``X @ W`` that works for both sparse and dense ``X``, dense out."""
    out = X @ W
    if sp.issparse(out):  # pragma: no cover - scipy never returns sparse here
        out = out.toarray()
    return np.asarray(out)
