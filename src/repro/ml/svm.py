"""Linear support vector classification.

Two solvers, matching liblinear's options:

- ``solver="primal"`` (default): one-vs-rest L2-regularized
  *squared-hinge* SVM minimized with L-BFGS — fully vectorized over
  sparse matrices.
- ``solver="dual"``: liblinear-style dual coordinate descent on the
  L1-loss SVM, iterating samples one at a time.  Faithful to the
  classic algorithm but orders of magnitude slower in pure Python —
  the paper's Figure 3 shows Linear SVC as by far the slowest trainer
  (211.78 s), and the dual solver is the honest way to reproduce that
  cost profile; the primal solver is what you would deploy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.optimize
import scipy.sparse as sp

from repro.ml.base import check_X, check_Xy, safe_dot
from repro.ml.preprocessing import LabelEncoder

__all__ = ["LinearSVC"]


@dataclass
class LinearSVC:
    """One-vs-rest linear SVM.

    Parameters
    ----------
    C:
        Penalty on margin violations.
    solver:
        ``"primal"`` (squared hinge, L-BFGS) or ``"dual"`` (L1 hinge,
        coordinate descent).
    max_iter:
        L-BFGS iterations (primal) or epochs over the data (dual).
    tol:
        Convergence tolerance.
    seed:
        Sample-order shuffling seed (dual solver only).
    """

    C: float = 1.0
    solver: str = "primal"
    max_iter: int = 1000
    tol: float = 1e-5
    seed: int = 0

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    coef_: np.ndarray = field(default=None, init=False, repr=False)
    intercept_: np.ndarray = field(default=None, init=False, repr=False)

    def fit(self, X, y) -> "LinearSVC":
        """Fit one binary SVM per class."""
        if self.C <= 0:
            raise ValueError(f"C must be positive, got {self.C}")
        if self.solver not in ("primal", "dual"):
            raise ValueError(f"unknown solver {self.solver!r}")
        X, y, _ = check_Xy(X, y)
        enc = LabelEncoder()
        yi = enc.fit_transform(y)
        self.classes_ = enc.classes_
        n, d = X.shape
        k = len(self.classes_)
        self.coef_ = np.zeros((d, k))
        self.intercept_ = np.zeros(k)
        for j in range(k):
            t = np.where(yi == j, 1.0, -1.0)
            if self.solver == "primal":
                w, b = self._fit_primal(X, t)
            else:
                w, b = self._fit_dual(X, t)
            self.coef_[:, j] = w
            self.intercept_[j] = b
        return self

    # -- primal squared-hinge ------------------------------------------

    def _fit_primal(self, X, t: np.ndarray) -> tuple[np.ndarray, float]:
        n, d = X.shape

        def objective(wb: np.ndarray):
            w, b = wb[:d], wb[d]
            z = np.asarray(X @ w).ravel() + b
            margin = 1.0 - t * z
            viol = np.maximum(margin, 0.0)
            obj = 0.5 * float(w @ w) + self.C * float(viol @ viol)
            gz = -2.0 * self.C * t * viol
            gw = np.asarray(X.T @ gz).ravel() + w
            return obj, np.concatenate([gw, [gz.sum()]])

        res = scipy.optimize.minimize(
            objective,
            np.zeros(d + 1),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        return res.x[:d], float(res.x[d])

    # -- dual coordinate descent (liblinear algorithm 1) ----------------

    def _fit_dual(self, X, t: np.ndarray) -> tuple[np.ndarray, float]:
        # Solve min_a 1/2 a^T Q a - e^T a  s.t. 0 <= a_i <= C, with
        # Q_ij = t_i t_j x_i . x_j, maintaining w = sum a_i t_i x_i.
        # Bias handled by augmenting each row with a constant feature.
        n, d = X.shape
        Xcsr = X.tocsr() if sp.issparse(X) else sp.csr_matrix(X)
        sq = np.asarray(Xcsr.multiply(Xcsr).sum(axis=1)).ravel() + 1.0  # +bias
        alpha = np.zeros(n)
        w = np.zeros(d)
        b = 0.0
        rng = np.random.default_rng(self.seed)
        indptr, indices, data = Xcsr.indptr, Xcsr.indices, Xcsr.data
        for _epoch in range(self.max_iter):
            max_viol = 0.0
            for i in rng.permutation(n):
                lo, hi = indptr[i], indptr[i + 1]
                cols = indices[lo:hi]
                vals = data[lo:hi]
                g = t[i] * (vals @ w[cols] + b) - 1.0
                a = alpha[i]
                pg = g
                if a <= 0.0:
                    pg = min(g, 0.0)
                elif a >= self.C:
                    pg = max(g, 0.0)
                if pg != 0.0:
                    max_viol = max(max_viol, abs(pg))
                    a_new = min(max(a - g / sq[i], 0.0), self.C)
                    delta = (a_new - a) * t[i]
                    w[cols] += delta * vals
                    b += delta
                    alpha[i] = a_new
            if max_viol < self.tol:
                break
        return w, b

    def decision_function(self, X) -> np.ndarray:
        """Signed margins per class, shape (n, k)."""
        if self.coef_ is None:
            raise RuntimeError("LinearSVC used before fit")
        X = check_X(X, self.coef_.shape[0])
        return safe_dot(X, self.coef_) + self.intercept_

    def predict(self, X) -> np.ndarray:
        """Class with the largest margin."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]
