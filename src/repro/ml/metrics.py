"""Classification metrics: F1 variants, confusion matrices, reports.

§5.1 evaluates with *weighted-average* F1 — "the mean of all per-class
F1 scores while considering each class's support" — because the dataset
is heavily imbalanced (Table 2), and reads confusion matrices to find
which categories mix (Figure 2).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "weighted_f1_score",
    "macro_f1_score",
    "classification_report",
    "roc_auc_score",
]


def _align(y_true, y_pred, labels=None):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred lengths differ: {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    return y_true, y_pred, labels


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred, _ = _align(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels: Sequence | None = None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count(true = labels[i], pred = labels[j]).

    ``labels`` fixes row/column order (defaults to sorted union).
    """
    y_true, y_pred, labels = _align(y_true, y_pred, labels)
    index = {lab: i for i, lab in enumerate(labels.tolist())}
    n = len(labels)
    cm = np.zeros((n, n), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        ti = index.get(t)
        pi = index.get(p)
        if ti is None or pi is None:
            raise ValueError(f"label outside provided label set: {t!r}/{p!r}")
        cm[ti, pi] += 1
    return cm


def precision_recall_f1(
    y_true, y_pred, labels: Sequence | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-class precision, recall, F1, and support.

    Classes with zero predicted (or true) instances get precision
    (recall) of 0, matching the usual zero-division convention.
    """
    y_true, y_pred, labels = _align(y_true, y_pred, labels)
    cm = confusion_matrix(y_true, y_pred, labels)
    tp = np.diag(cm).astype(np.float64)
    pred_tot = cm.sum(axis=0).astype(np.float64)
    true_tot = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_tot > 0, tp / pred_tot, 0.0)
        recall = np.where(true_tot > 0, tp / true_tot, 0.0)
        denom = precision + recall
        f1 = np.where(denom > 0, 2.0 * precision * recall / denom, 0.0)
    return precision, recall, f1, true_tot.astype(np.int64)


def weighted_f1_score(y_true, y_pred, labels: Sequence | None = None) -> float:
    """Support-weighted mean of per-class F1 (the paper's headline metric)."""
    _p, _r, f1, support = precision_recall_f1(y_true, y_pred, labels)
    total = support.sum()
    if total == 0:
        raise ValueError("no true samples in any class")
    return float((f1 * support).sum() / total)


def macro_f1_score(y_true, y_pred, labels: Sequence | None = None) -> float:
    """Unweighted mean of per-class F1 over classes with support."""
    _p, _r, f1, support = precision_recall_f1(y_true, y_pred, labels)
    mask = support > 0
    if not mask.any():
        raise ValueError("no true samples in any class")
    return float(f1[mask].mean())


def roc_auc_score(y_true, scores) -> float:
    """Area under the ROC curve for binary labels and real scores.

    Computed via the Mann–Whitney U statistic (rank formulation), with
    midranks for tied scores.

    Parameters
    ----------
    y_true:
        Booleans (or 0/1) — True marks the positive class.
    scores:
        Higher scores should indicate the positive class.

    Raises
    ------
    ValueError
        If only one class is present (AUC undefined).
    """
    y = np.asarray(y_true).astype(bool)
    s = np.asarray(scores, dtype=np.float64)
    if y.shape != s.shape:
        raise ValueError(f"shape mismatch: {y.shape} vs {s.shape}")
    n_pos = int(y.sum())
    n_neg = int((~y).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score needs both classes present")
    order = np.argsort(s, kind="stable")
    ranks = np.empty(len(s))
    sorted_s = s[order]
    # midranks for ties
    i = 0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_s[j + 1] == sorted_s[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    u = ranks[y].sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def classification_report(
    y_true, y_pred, labels: Sequence | None = None, digits: int = 4
) -> str:
    """Human-readable per-class report plus weighted averages."""
    y_true, y_pred, labels = _align(y_true, y_pred, labels)
    precision, recall, f1, support = precision_recall_f1(y_true, y_pred, labels)
    name_w = max(12, max(len(str(lab)) for lab in labels) + 2)
    header = (
        f"{'':{name_w}}{'precision':>10}{'recall':>10}{'f1':>10}{'support':>10}"
    )
    lines = [header]
    for lab, p, r, f, s in zip(labels, precision, recall, f1, support):
        lines.append(
            f"{str(lab):{name_w}}{p:>10.{digits}f}{r:>10.{digits}f}"
            f"{f:>10.{digits}f}{s:>10d}"
        )
    total = support.sum()
    wp = float((precision * support).sum() / total)
    wr = float((recall * support).sum() / total)
    wf = float((f1 * support).sum() / total)
    lines.append(
        f"{'weighted avg':{name_w}}{wp:>10.{digits}f}{wr:>10.{digits}f}"
        f"{wf:>10.{digits}f}{total:>10d}"
    )
    lines.append(f"{'accuracy':{name_w}}{accuracy_score(y_true, y_pred):>40.{digits}f}")
    return "\n".join(lines)
