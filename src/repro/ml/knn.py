"""k-nearest-neighbours classification over sparse TF-IDF rows.

kNN "trains" by storing the matrix — Figure 3's 0.0107 s training time
— and pays at prediction time (4.9 s, the slowest tester), a profile
this brute-force implementation reproduces exactly.  With L2-normalized
TF-IDF rows, cosine similarity is a plain sparse matmul.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.ml.base import check_X, check_Xy

__all__ = ["KNeighborsClassifier"]


@dataclass
class KNeighborsClassifier:
    """Brute-force kNN with cosine or euclidean metric.

    Parameters
    ----------
    n_neighbors:
        Votes per prediction.
    metric:
        ``"cosine"`` (dot product of L2-normalized rows — the natural
        metric for TF-IDF) or ``"euclidean"``.
    batch_rows:
        Test rows scored per chunk, bounding the dense similarity
        buffer to ``batch_rows × n_train``.
    """

    n_neighbors: int = 5
    metric: str = "cosine"
    batch_rows: int = 1024

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    _X: object = field(default=None, init=False, repr=False)
    _yi: np.ndarray = field(default=None, init=False, repr=False)

    def fit(self, X, y) -> "KNeighborsClassifier":
        """Store the training data (no model is built)."""
        if self.n_neighbors < 1:
            raise ValueError(f"n_neighbors must be >= 1, got {self.n_neighbors}")
        if self.metric not in ("cosine", "euclidean"):
            raise ValueError(f"unknown metric {self.metric!r}")
        X, y, classes = check_Xy(X, y)
        self.classes_ = classes
        index = {c: i for i, c in enumerate(classes.tolist())}
        self._yi = np.asarray([index[v] for v in y.tolist()], dtype=np.int64)
        self._X = X
        self._sq = (
            np.asarray(X.multiply(X).sum(axis=1)).ravel()
            if sp.issparse(X)
            else (X * X).sum(axis=1)
        )
        return self

    def predict(self, X) -> np.ndarray:
        """Majority vote among the k nearest training rows."""
        proba = self.predict_proba(X)
        return self.classes_[proba.argmax(axis=1)]

    def predict_proba(self, X) -> np.ndarray:
        """Neighbour vote fractions per class."""
        if self._X is None:
            raise RuntimeError("KNeighborsClassifier used before fit")
        X = check_X(X, self._X.shape[1])
        n = X.shape[0]
        k = min(self.n_neighbors, self._X.shape[0])
        nc = len(self.classes_)
        out = np.zeros((n, nc))
        for start in range(0, n, self.batch_rows):
            Xb = X[start : start + self.batch_rows]
            sims = np.asarray((Xb @ self._X.T).todense()) if sp.issparse(Xb) else Xb @ self._X.T
            sims = np.asarray(sims)
            if self.metric == "euclidean":
                sqb = (
                    np.asarray(Xb.multiply(Xb).sum(axis=1)).ravel()
                    if sp.issparse(Xb)
                    else (Xb * Xb).sum(axis=1)
                )
                # distance² = |a|² + |b|² - 2ab → rank by -distance²
                sims = 2.0 * sims - self._sq[np.newaxis, :] - sqb[:, np.newaxis]
            nn = np.argpartition(-sims, k - 1, axis=1)[:, :k]
            votes = self._yi[nn]  # (batch, k)
            for j in range(nc):
                out[start : start + Xb.shape[0], j] = (votes == j).sum(axis=1)
        return out / k
