"""Resampling for imbalanced data.

§4.4.2 discusses the dataset's imbalance; the related work (Studiawan &
Sohel) recommends ADASYN / random oversampling and undersampling.
These utilities implement those rebalancers for the ablation benches.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["random_oversample", "random_undersample", "adasyn_like_oversample"]


def _vstack(blocks):
    if sp.issparse(blocks[0]):
        return sp.vstack(blocks, format="csr")
    return np.vstack(blocks)


def random_oversample(X, y, *, seed: int = 0):
    """Duplicate minority-class rows until all classes match the majority.

    Returns (X_res, y_res) shuffled.
    """
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    classes, counts = np.unique(y, return_counts=True)
    target = counts.max()
    xb, yb = [], []
    for c in classes:
        rows = np.flatnonzero(y == c)
        extra = rng.choice(rows, size=target - rows.size, replace=True) if rows.size < target else np.empty(0, dtype=np.int64)
        take = np.concatenate([rows, extra])
        xb.append(X[take])
        yb.append(y[take])
    Xr, yr = _vstack(xb), np.concatenate(yb)
    order = rng.permutation(len(yr))
    return Xr[order], yr[order]


def random_undersample(X, y, *, seed: int = 0):
    """Drop majority-class rows until all classes match the minority."""
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    classes, counts = np.unique(y, return_counts=True)
    target = counts.min()
    keep = []
    for c in classes:
        rows = np.flatnonzero(y == c)
        rng.shuffle(rows)
        keep.append(rows[:target])
    keep_all = np.concatenate(keep)
    rng.shuffle(keep_all)
    return X[keep_all], y[keep_all]


def adasyn_like_oversample(X, y, *, k: int = 5, seed: int = 0):
    """ADASYN-style synthetic minority oversampling.

    For each minority class, synthesizes rows as convex combinations of
    a member and one of its k nearest same-class neighbours, with more
    synthesis where same-class density is lower (the ADASYN density
    criterion, simplified to same-class neighbour distance rank).
    Works on dense or sparse ``X`` (sparse rows are combined sparsely).
    """
    y = np.asarray(y)
    rng = np.random.default_rng(seed)
    classes, counts = np.unique(y, return_counts=True)
    target = counts.max()
    xb, yb = [X], [y]
    for c, cnt in zip(classes, counts):
        need = int(target - cnt)
        if need <= 0:
            continue
        rows = np.flatnonzero(y == c)
        Xc = X[rows]
        if rows.size < 2:
            # cannot interpolate a single point; fall back to duplication
            take = rng.choice(rows, size=need, replace=True)
            xb.append(X[take])
            yb.append(np.full(need, c, dtype=y.dtype))
            continue
        sims = np.asarray((Xc @ Xc.T).todense()) if sp.issparse(Xc) else Xc @ Xc.T
        np.fill_diagonal(sims, -np.inf)
        kk = min(k, rows.size - 1)
        nn = np.argpartition(-sims, kk - 1, axis=1)[:, :kk]
        # density weight: members whose neighbours are farther (lower
        # similarity) get more synthetic offspring
        mean_sim = np.take_along_axis(sims, nn, axis=1).mean(axis=1)
        w = 1.0 - (mean_sim - mean_sim.min()) / (np.ptp(mean_sim) + 1e-12)
        w = w / w.sum() if w.sum() > 0 else np.full(rows.size, 1.0 / rows.size)
        src = rng.choice(rows.size, size=need, p=w)
        mate = nn[src, rng.integers(0, kk, size=need)]
        lam = rng.uniform(0.0, 1.0, size=need)
        if sp.issparse(X):
            A = Xc[src].multiply(lam[:, np.newaxis])
            B = Xc[mate].multiply((1.0 - lam)[:, np.newaxis])
            synth = (A + B).tocsr()
        else:
            synth = lam[:, np.newaxis] * Xc[src] + (1 - lam)[:, np.newaxis] * Xc[mate]
        xb.append(synth)
        yb.append(np.full(need, c, dtype=y.dtype))
    Xr, yr = _vstack(xb), np.concatenate(yb)
    order = rng.permutation(len(yr))
    return Xr[order], yr[order]
