"""From-scratch, sparse-aware machine-learning classifiers.

Implements the eight traditional classifiers the paper evaluates
(Figure 3) over TF-IDF features, plus the metrics, model selection, and
resampling utilities the evaluation needs.  Everything operates on
``scipy.sparse`` CSR matrices (TF-IDF output) or dense ndarrays, and
all randomness is routed through explicit seeds.

Classifier → module map (paper's Figure 3 order):

- Logistic Regression → :class:`repro.ml.linear.LogisticRegression`
- Ridge Classifier → :class:`repro.ml.linear.RidgeClassifier`
- kNN → :class:`repro.ml.knn.KNeighborsClassifier`
- Random Forest → :class:`repro.ml.forest.RandomForestClassifier`
- Linear SVC → :class:`repro.ml.svm.LinearSVC`
- Log-loss SGD → :class:`repro.ml.sgd.SGDClassifier`
- Nearest Centroid → :class:`repro.ml.centroid.NearestCentroid`
- Complement Naïve Bayes → :class:`repro.ml.bayes.ComplementNB`
"""

from repro.ml.base import Classifier, check_Xy
from repro.ml.linear import LogisticRegression, RidgeClassifier
from repro.ml.sgd import SGDClassifier
from repro.ml.svm import LinearSVC
from repro.ml.knn import KNeighborsClassifier
from repro.ml.centroid import NearestCentroid
from repro.ml.bayes import ComplementNB, MultinomialNB
from repro.ml.forest import DecisionTreeClassifier, RandomForestClassifier
from repro.ml.metrics import (
    accuracy_score,
    roc_auc_score,
    confusion_matrix,
    precision_recall_f1,
    weighted_f1_score,
    macro_f1_score,
    classification_report,
)
from repro.ml.anomaly import PCAAnomalyDetector, IsolationForest, DeepLogDetector
from repro.ml.model_selection import train_test_split, stratified_kfold
from repro.ml.preprocessing import LabelEncoder
from repro.ml.resample import random_oversample, random_undersample, adasyn_like_oversample

__all__ = [
    "Classifier",
    "check_Xy",
    "LogisticRegression",
    "RidgeClassifier",
    "SGDClassifier",
    "LinearSVC",
    "KNeighborsClassifier",
    "NearestCentroid",
    "ComplementNB",
    "MultinomialNB",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "accuracy_score",
    "confusion_matrix",
    "precision_recall_f1",
    "weighted_f1_score",
    "macro_f1_score",
    "classification_report",
    "roc_auc_score",
    "PCAAnomalyDetector",
    "IsolationForest",
    "DeepLogDetector",
    "train_test_split",
    "stratified_kfold",
    "LabelEncoder",
    "random_oversample",
    "random_undersample",
    "adasyn_like_oversample",
]
