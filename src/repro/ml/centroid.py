"""Nearest-centroid classification.

The cheapest model in Figure 3 on both ends (0.0127 s train / 0.0074 s
test) and the least accurate (0.9523) — one mean vector per class
simply cannot separate categories that share vocabulary, which is
exactly the regime the "Unimportant" class creates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.ml.base import check_X, check_Xy

__all__ = ["NearestCentroid"]


@dataclass
class NearestCentroid:
    """Classify by the nearest class-mean vector.

    Parameters
    ----------
    metric:
        ``"cosine"`` (centroids L2-normalized, rank by dot product) or
        ``"euclidean"``.
    """

    metric: str = "cosine"

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    centroids_: np.ndarray = field(default=None, init=False, repr=False)

    def fit(self, X, y) -> "NearestCentroid":
        """Compute one centroid per class."""
        if self.metric not in ("cosine", "euclidean"):
            raise ValueError(f"unknown metric {self.metric!r}")
        X, y, classes = check_Xy(X, y)
        self.classes_ = classes
        d = X.shape[1]
        cents = np.zeros((len(classes), d))
        for i, c in enumerate(classes.tolist()):
            rows = np.flatnonzero(y == c)
            block = X[rows]
            cents[i] = np.asarray(block.mean(axis=0)).ravel()
        if self.metric == "cosine":
            norms = np.linalg.norm(cents, axis=1, keepdims=True)
            norms[norms == 0.0] = 1.0
            cents = cents / norms
        self.centroids_ = cents
        return self

    def decision_function(self, X) -> np.ndarray:
        """Similarity (cosine) or negated distance² (euclidean) to centroids."""
        if self.centroids_ is None:
            raise RuntimeError("NearestCentroid used before fit")
        X = check_X(X, self.centroids_.shape[1])
        sims = np.asarray(X @ self.centroids_.T)
        if sp.issparse(sims):  # pragma: no cover
            sims = sims.toarray()
        if self.metric == "euclidean":
            sqx = (
                np.asarray(X.multiply(X).sum(axis=1)).ravel()
                if sp.issparse(X)
                else (X * X).sum(axis=1)
            )
            sqc = (self.centroids_ * self.centroids_).sum(axis=1)
            sims = 2.0 * sims - sqc[np.newaxis, :] - sqx[:, np.newaxis]
        return sims

    def predict(self, X) -> np.ndarray:
        """Class of the nearest centroid."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]
