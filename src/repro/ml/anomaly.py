"""Unsupervised / semi-supervised anomaly detection baselines (§2).

The paper's related work compares the supervised classifiers against
unsupervised and semi-supervised detectors; the findings this module
lets us reproduce (see ``benchmarks/bench_anomaly_baselines.py``):

- Studiawan & Sohel [20] and Zope et al. [24]: supervised models
  outperform isolation forest and PCA; PCA is the best unsupervised
  model of the two.
- Du et al. [7], DeepLog: a semi-supervised model trained only on
  *normal* log-key sequences, flagging keys that fall outside the top-g
  predictions of a sequence model, outperforms isolation forest and
  PCA.  We implement the DeepLog workflow with an n-gram (Markov)
  sequence model over masked message shapes instead of an LSTM — the
  detection logic (train on normal, predict next key, alarm when the
  observed key is not among the g most probable) is DeepLog's.

All three detectors share the contract: ``fit`` on (mostly) normal
data, ``score`` returns higher-is-more-anomalous, ``predict`` returns
booleans at a threshold chosen on the training data.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.ml.base import as_float_matrix, check_X

__all__ = ["PCAAnomalyDetector", "IsolationForest", "DeepLogDetector"]


@dataclass
class PCAAnomalyDetector:
    """Reconstruction-error anomaly detection via truncated PCA.

    Normal traffic spans a low-dimensional subspace of TF-IDF space;
    a message far from that subspace (large residual after projecting
    onto the top principal components) is anomalous.

    Parameters
    ----------
    n_components:
        Principal components retained.
    quantile:
        Training-score quantile used as the alarm threshold.
    """

    n_components: int = 16
    quantile: float = 0.99

    components_: np.ndarray = field(default=None, init=False, repr=False)
    mean_: np.ndarray = field(default=None, init=False, repr=False)
    threshold_: float = field(default=0.0, init=False)

    def fit(self, X) -> "PCAAnomalyDetector":
        """Learn the normal subspace from (mostly normal) ``X``."""
        if not 0.0 < self.quantile < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {self.quantile}")
        X = as_float_matrix(X)
        n, d = X.shape
        k = min(self.n_components, min(n, d) - 1)
        if k < 1:
            raise ValueError(f"data too small for PCA: shape {X.shape}")
        self.mean_ = np.asarray(X.mean(axis=0)).ravel()
        if sp.issparse(X):
            # scipy svds on the centered operator without densifying
            Xc = X - sp.csr_matrix(np.tile(self.mean_, (n, 1)))
            Xc = np.asarray(Xc.todense()) if n * d <= 5_000_000 else None
            if Xc is None:
                import scipy.sparse.linalg as spla

                mu = self.mean_

                def matvec(v):
                    return X @ v - mu @ v * np.ones(n)

                def rmatvec(v):
                    return X.T @ v - mu * v.sum()

                op = spla.LinearOperator((n, d), matvec=matvec, rmatvec=rmatvec)
                _u, _s, vt = spla.svds(op, k=k)
                self.components_ = vt
            else:
                _u, _s, vt = np.linalg.svd(Xc, full_matrices=False)
                self.components_ = vt[:k]
        else:
            Xc = X - self.mean_
            _u, _s, vt = np.linalg.svd(Xc, full_matrices=False)
            self.components_ = vt[:k]
        scores = self.score(X)
        self.threshold_ = float(np.quantile(scores, self.quantile))
        return self

    def score(self, X) -> np.ndarray:
        """Squared reconstruction residual per row (higher = weirder)."""
        if self.components_ is None:
            raise RuntimeError("PCAAnomalyDetector used before fit")
        X = check_X(X, self.mean_.shape[0])
        Xc = (np.asarray(X.todense()) if sp.issparse(X) else X) - self.mean_
        proj = Xc @ self.components_.T
        recon = proj @ self.components_
        resid = Xc - recon
        return (resid * resid).sum(axis=1)

    def predict(self, X) -> np.ndarray:
        """Boolean anomaly flags at the fitted threshold."""
        return self.score(X) > self.threshold_


# ---------------------------------------------------------------------------


@dataclass
class _ITreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: "_ITreeNode | None" = None
    right: "_ITreeNode | None" = None
    size: int = 0  # leaf population


def _harmonic(n: float) -> float:
    return float(np.log(n) + 0.5772156649) if n > 1 else 0.0


def _avg_path_length(n: float) -> float:
    """Expected unsuccessful-search path length in a BST of n points."""
    if n <= 1:
        return 0.0
    return 2.0 * _harmonic(n - 1) - 2.0 * (n - 1) / n


@dataclass
class IsolationForest:
    """Isolation forest (Liu et al. 2008).

    Anomalies isolate in few random splits; the anomaly score is
    ``2^(-E[path length]/c(n))`` with the standard normalization.

    Parameters
    ----------
    n_estimators:
        Trees in the ensemble.
    max_samples:
        Sub-sample size per tree.
    quantile:
        Training-score quantile for the alarm threshold.
    seed:
        RNG seed.
    """

    n_estimators: int = 100
    max_samples: int = 256
    quantile: float = 0.99
    seed: int = 0

    trees_: list = field(default_factory=list, init=False, repr=False)
    threshold_: float = field(default=0.0, init=False)
    _n_features: int = field(default=0, init=False, repr=False)
    _sample_size: int = field(default=0, init=False, repr=False)

    def fit(self, X) -> "IsolationForest":
        """Build the ensemble on (mostly normal) ``X``."""
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        X = as_float_matrix(X)
        Xd = np.asarray(X.todense()) if sp.issparse(X) else X
        n = Xd.shape[0]
        self._n_features = Xd.shape[1]
        self._sample_size = min(self.max_samples, n)
        height_limit = int(np.ceil(np.log2(max(self._sample_size, 2))))
        rng = np.random.default_rng(self.seed)
        self.trees_ = []
        for _ in range(self.n_estimators):
            idx = rng.choice(n, size=self._sample_size, replace=False)
            self.trees_.append(self._build(Xd[idx], 0, height_limit, rng))
        scores = self.score(Xd)
        self.threshold_ = float(np.quantile(scores, self.quantile))
        return self

    def _build(self, X: np.ndarray, depth: int, limit: int,
               rng: np.random.Generator) -> _ITreeNode:
        n = X.shape[0]
        if depth >= limit or n <= 1:
            return _ITreeNode(size=n)
        # choose a feature with spread; give up after a few tries
        for _ in range(8):
            f = int(rng.integers(0, X.shape[1]))
            lo, hi = X[:, f].min(), X[:, f].max()
            if hi > lo:
                break
        else:
            return _ITreeNode(size=n)
        thr = float(rng.uniform(lo, hi))
        mask = X[:, f] < thr
        return _ITreeNode(
            feature=f,
            threshold=thr,
            left=self._build(X[mask], depth + 1, limit, rng),
            right=self._build(X[~mask], depth + 1, limit, rng),
            size=n,
        )

    def _path_length(self, x: np.ndarray, node: _ITreeNode, depth: int) -> float:
        while node.feature != -1:
            node = node.left if x[node.feature] < node.threshold else node.right
            depth += 1
        return depth + _avg_path_length(node.size)

    def score(self, X) -> np.ndarray:
        """Isolation score in (0, 1); higher = more anomalous."""
        if not self.trees_:
            raise RuntimeError("IsolationForest used before fit")
        X = check_X(X, self._n_features)
        Xd = np.asarray(X.todense()) if sp.issparse(X) else X
        c = _avg_path_length(self._sample_size)
        out = np.empty(Xd.shape[0])
        for i, row in enumerate(Xd):
            mean_path = np.mean([
                self._path_length(row, t, 0) for t in self.trees_
            ])
            out[i] = 2.0 ** (-mean_path / max(c, 1e-9))
        return out

    def predict(self, X) -> np.ndarray:
        """Boolean anomaly flags at the fitted threshold."""
        return self.score(X) > self.threshold_


# ---------------------------------------------------------------------------


@dataclass
class DeepLogDetector:
    """DeepLog-style semi-supervised log-key anomaly detection.

    Du et al. [7] parse logs into a small set of *log keys* (message
    templates), train a sequence model on normal executions, and flag a
    log entry as anomalous when its key is not among the model's top-g
    predictions given the recent history.  We follow that workflow:

    - log keys = masked message shapes (our template analogue),
    - sequence model = Katz-style backoff n-gram over key ids,
    - detection = observed key outside the top-``g`` next-key set,
    - incremental updates (``observe_normal``) mirror DeepLog's
      online false-positive feedback loop.

    Parameters
    ----------
    order:
        History length h (DeepLog's window).
    top_g:
        Keys tolerated per step (DeepLog's g).
    """

    order: int = 2
    top_g: int = 5

    key_of_: dict[str, int] = field(default_factory=dict, init=False, repr=False)
    _counts: dict[tuple[int, ...], Counter] = field(
        default_factory=lambda: defaultdict(Counter), init=False, repr=False
    )
    _unigram: Counter = field(default_factory=Counter, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ValueError(f"order must be >= 1, got {self.order}")
        if self.top_g < 1:
            raise ValueError(f"top_g must be >= 1, got {self.top_g}")
        from repro.textproc.normalize import MaskingNormalizer

        self._normalizer = MaskingNormalizer()

    # -- key extraction ----------------------------------------------------

    def key(self, text: str, *, create: bool = False) -> int | None:
        """Log key (template id) of a message; None if unseen."""
        shape = self._normalizer.normalize(text)
        kid = self.key_of_.get(shape)
        if kid is None and create:
            kid = len(self.key_of_)
            self.key_of_[shape] = kid
        return kid

    # -- training ------------------------------------------------------------

    #: sentinel key marking the end of a session; lets the detector
    #: catch truncated sessions (a crash before the epilog/complete
    #: stages makes the end-transition improbable)
    EOS = "<eos>"

    def _eos_key(self) -> int:
        kid = self.key_of_.get(self.EOS)
        if kid is None:
            kid = len(self.key_of_)
            self.key_of_[self.EOS] = kid
        return kid

    def fit(self, normal_sequences: Sequence[Sequence[str]]) -> "DeepLogDetector":
        """Train on sequences of *normal* messages (per node/session)."""
        for seq in normal_sequences:
            keys = [self.key(t, create=True) for t in seq]
            keys.append(self._eos_key())
            self._train_keys(keys)
        if not self._unigram:
            raise ValueError("no training data provided")
        return self

    def observe_normal(self, sequence: Sequence[str]) -> None:
        """Incremental update with a confirmed-normal sequence
        (DeepLog's user-feedback loop)."""
        keys = [self.key(t, create=True) for t in sequence]
        keys.append(self._eos_key())
        self._train_keys(keys)

    def _train_keys(self, keys: Sequence[int]) -> None:
        for i, k in enumerate(keys):
            self._unigram[k] += 1
            for h in range(1, self.order + 1):
                if i - h < 0:
                    break
                ctx = tuple(keys[i - h : i])
                self._counts[ctx][k] += 1

    # -- detection --------------------------------------------------------------

    def _top_candidates(self, history: tuple[int, ...]) -> list[int]:
        # longest-context backoff: use the longest history with data
        for h in range(min(self.order, len(history)), 0, -1):
            ctx = history[-h:]
            dist = self._counts.get(ctx)
            if dist:
                return [k for k, _c in dist.most_common(self.top_g)]
        return [k for k, _c in self._unigram.most_common(self.top_g)]

    def detect(self, sequence: Sequence[str]) -> list[bool]:
        """Per-message anomaly flags for a session's message sequence.

        A message is anomalous when its key is unseen, or not among the
        top-g predicted keys given the preceding history.  The first
        message is never flagged (there is no history to condition on —
        DeepLog starts detection once its window fills).
        """
        if not self._unigram:
            raise RuntimeError("DeepLogDetector used before fit")
        flags: list[bool] = []
        history: list[int] = []
        for text in sequence:
            kid = self.key(text)
            if kid is None:
                flags.append(True)
                # unseen keys break the history (DeepLog restarts)
                history.clear()
                continue
            if not history:
                flags.append(False)
            else:
                candidates = self._top_candidates(tuple(history))
                flags.append(kid not in candidates)
            history.append(kid)
            if len(history) > self.order:
                history.pop(0)
        return flags

    def end_violation(self, sequence: Sequence[str]) -> bool:
        """True when the session's ending is improbable (crash signature).

        Checks whether the end-of-session sentinel is among the top-g
        predictions after the final messages — a session cut off
        mid-workflow fails this check.
        """
        if not self._unigram:
            raise RuntimeError("DeepLogDetector used before fit")
        history: list[int] = []
        for text in sequence:
            kid = self.key(text)
            if kid is None:
                history.clear()
                continue
            history.append(kid)
            if len(history) > self.order:
                history.pop(0)
        if not history:
            return True
        return self._eos_key() not in self._top_candidates(tuple(history))

    def anomaly_rate(self, sequence: Sequence[str]) -> float:
        """Fraction of anomaly signals over the session.

        Counts the per-message flags plus the end-of-session check, so
        crashes (whose individual messages all look normal) still score.
        """
        flags = self.detect(sequence)
        if not flags:
            return 1.0
        signals = sum(flags) + (1 if self.end_violation(sequence) else 0)
        return signals / (len(flags) + 1)
