"""Train/test splitting and cross-validation with stratification.

The heavy class imbalance (Slurm: 46 messages vs Unimportant: 106552,
Table 2) makes plain random splits unreliable — a rare class can vanish
from the test set.  All splitters here stratify by label.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = ["train_test_split", "stratified_kfold"]


def _index_rows(X, idx: np.ndarray):
    if sp.issparse(X):
        return X[idx]
    return np.asarray(X)[idx] if isinstance(X, np.ndarray) else [X[i] for i in idx]


def train_test_split(
    X,
    y,
    *,
    test_size: float = 0.25,
    seed: int = 0,
    stratify: bool = True,
):
    """Stratified train/test split.

    Parameters
    ----------
    X:
        Feature matrix (sparse/dense) or list of raw messages.
    y:
        Labels, parallel to ``X`` rows.
    test_size:
        Fraction of rows held out (0 < test_size < 1).
    stratify:
        Preserve class proportions (every class with ≥2 members keeps
        at least one sample on each side).

    Returns
    -------
    (X_train, X_test, y_train, y_test)
    """
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    y_arr = np.asarray(y)
    n = y_arr.shape[0]
    rows = X.shape[0] if hasattr(X, "shape") else len(X)
    if rows != n:
        raise ValueError(f"X has {rows} rows but y has {n}")
    rng = np.random.default_rng(seed)
    test_idx: list[int] = []
    if stratify:
        for cls in np.unique(y_arr):
            members = np.flatnonzero(y_arr == cls)
            rng.shuffle(members)
            k = int(round(len(members) * test_size))
            if len(members) >= 2:
                k = min(max(k, 1), len(members) - 1)
            test_idx.extend(members[:k].tolist())
    else:
        perm = rng.permutation(n)
        test_idx = perm[: max(1, int(round(n * test_size)))].tolist()
    test_mask = np.zeros(n, dtype=bool)
    test_mask[test_idx] = True
    tr = np.flatnonzero(~test_mask)
    te = np.flatnonzero(test_mask)
    rng.shuffle(tr)
    rng.shuffle(te)
    return (
        _index_rows(X, tr),
        _index_rows(X, te),
        y_arr[tr],
        y_arr[te],
    )


def stratified_kfold(y, *, n_splits: int = 5, seed: int = 0):
    """Yield ``(train_idx, test_idx)`` pairs for stratified k-fold CV.

    Each class's members are dealt round-robin across folds after a
    seeded shuffle, so folds have near-identical class mixes.

    Raises
    ------
    ValueError
        If ``n_splits`` < 2 or exceeds the size of the smallest class
        represented more than once.
    """
    if n_splits < 2:
        raise ValueError(f"n_splits must be >= 2, got {n_splits}")
    y_arr = np.asarray(y)
    n = y_arr.shape[0]
    rng = np.random.default_rng(seed)
    fold_of = np.empty(n, dtype=np.int64)
    for cls in np.unique(y_arr):
        members = np.flatnonzero(y_arr == cls)
        rng.shuffle(members)
        fold_of[members] = np.arange(len(members)) % n_splits
    for k in range(n_splits):
        test = np.flatnonzero(fold_of == k)
        train = np.flatnonzero(fold_of != k)
        if len(test) == 0:
            raise ValueError(
                f"fold {k} is empty: n_splits={n_splits} too large for {n} samples"
            )
        yield train, test
