"""CART decision trees and random forests.

Random Forest is the paper's most accurate classifier (weighted F1
0.9995, Figure 3).  This is an exact-split CART implementation:

- Gini impurity, best split among ``max_features`` randomly sampled
  candidate features per node (the forest's decorrelation mechanism),
- thresholds evaluated by a vectorized cumulative class-count scan of
  the sorted column — O(n log n) per (node, feature),
- bootstrap resampling per tree, majority (soft) voting across trees.

TF-IDF matrices are densified to float32 internally: tree node
evaluation needs random row access to columns, which CSR cannot serve
efficiently, and syslog vocabularies after masking are small (hundreds
to a few thousand columns), so the dense copy is modest.  Pass
``max_features`` to the vectorizer, not the forest, to bound memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.ml.base import check_Xy
from repro.ml.preprocessing import LabelEncoder

__all__ = ["DecisionTreeClassifier", "RandomForestClassifier"]

_LEAF = -1


def _to_dense32(X) -> np.ndarray:
    if sp.issparse(X):
        return np.asarray(X.todense(), dtype=np.float32)
    return np.asarray(X, dtype=np.float32)


@dataclass
class _Tree:
    """Flat-array tree representation for vectorized prediction."""

    feature: np.ndarray  # (n_nodes,) int32, _LEAF for leaves
    threshold: np.ndarray  # (n_nodes,) float32
    left: np.ndarray  # (n_nodes,) int32 child ids
    right: np.ndarray
    value: np.ndarray  # (n_nodes, n_classes) class histograms (normalized)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int32)
        active = np.arange(n)
        while active.size:
            f = self.feature[node[active]]
            inner = f != _LEAF
            active = active[inner]
            if not active.size:
                break
            f = f[inner]
            go_left = X[active, f] <= self.threshold[node[active]]
            node[active] = np.where(
                go_left, self.left[node[active]], self.right[node[active]]
            )
        return self.value[node]


def _build_tree(
    X: np.ndarray,
    yi: np.ndarray,
    n_classes: int,
    *,
    max_depth: int,
    min_samples_split: int,
    min_samples_leaf: int,
    max_features: int,
    rng: np.random.Generator,
) -> _Tree:
    n, d = X.shape
    feature: list[int] = []
    threshold: list[float] = []
    left: list[int] = []
    right: list[int] = []
    value: list[np.ndarray] = []

    def new_node() -> int:
        feature.append(_LEAF)
        threshold.append(0.0)
        left.append(_LEAF)
        right.append(_LEAF)
        value.append(None)  # type: ignore[arg-type]
        return len(feature) - 1

    root = new_node()
    stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(n), 0)]
    while stack:
        node_id, idx, depth = stack.pop()
        counts = np.bincount(yi[idx], minlength=n_classes).astype(np.float64)
        value[node_id] = counts / counts.sum()
        if (
            depth >= max_depth
            or idx.size < min_samples_split
            or counts.max() == counts.sum()  # pure node
        ):
            continue
        split = _best_split(
            X, yi, idx, n_classes, max_features, min_samples_leaf, rng
        )
        if split is None:
            continue
        f, thr, left_mask = split
        li, ri = new_node(), new_node()
        feature[node_id] = f
        threshold[node_id] = thr
        left[node_id] = li
        right[node_id] = ri
        stack.append((li, idx[left_mask], depth + 1))
        stack.append((ri, idx[~left_mask], depth + 1))
    return _Tree(
        feature=np.asarray(feature, dtype=np.int32),
        threshold=np.asarray(threshold, dtype=np.float32),
        left=np.asarray(left, dtype=np.int32),
        right=np.asarray(right, dtype=np.int32),
        value=np.asarray(value, dtype=np.float64),
    )


def _best_split(
    X: np.ndarray,
    yi: np.ndarray,
    idx: np.ndarray,
    n_classes: int,
    max_features: int,
    min_samples_leaf: int,
    rng: np.random.Generator,
):
    """Best (feature, threshold, left_mask) by Gini gain, or None.

    For each candidate feature the node's rows are sorted by value and
    the weighted Gini of every prefix/suffix partition is computed from
    cumulative class counts in one vectorized pass.
    """
    n = idx.size
    y_node = yi[idx]
    cand = rng.choice(X.shape[1], size=min(max_features, X.shape[1]), replace=False)
    best_gain = 1e-12
    best = None
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), y_node] = 1.0
    total = onehot.sum(axis=0)
    gini_parent = 1.0 - ((total / n) ** 2).sum()
    for f in cand:
        col = X[idx, f]
        order = np.argsort(col, kind="stable")
        cs = col[order]
        # candidate boundaries: positions where value changes
        change = np.flatnonzero(cs[1:] != cs[:-1]) + 1
        if change.size == 0:
            continue
        cum = np.cumsum(onehot[order], axis=0)  # (n, k)
        nl = change.astype(np.float64)
        nr = n - nl
        ok = (nl >= min_samples_leaf) & (nr >= min_samples_leaf)
        if not ok.any():
            continue
        cl = cum[change - 1]  # class counts left of each boundary
        cr = total[np.newaxis, :] - cl
        gini_l = 1.0 - ((cl / nl[:, np.newaxis]) ** 2).sum(axis=1)
        gini_r = 1.0 - ((cr / nr[:, np.newaxis]) ** 2).sum(axis=1)
        gain = gini_parent - (nl * gini_l + nr * gini_r) / n
        gain[~ok] = -np.inf
        bi = int(gain.argmax())
        if gain[bi] > best_gain:
            best_gain = float(gain[bi])
            pos = change[bi]
            thr = (cs[pos - 1] + cs[pos]) / 2.0
            best = (int(f), float(thr), col <= thr)
    return best


@dataclass
class DecisionTreeClassifier:
    """Single CART tree (Gini).

    Parameters
    ----------
    max_depth:
        Depth cap.
    min_samples_split, min_samples_leaf:
        Node-size floors.
    max_features:
        Candidate features per node; ``None`` = all (classic CART),
        ``"sqrt"`` = √d (forest default).
    seed:
        Feature-sampling seed.
    """

    max_depth: int = 30
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: int | str | None = None
    seed: int = 0

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    _tree: _Tree = field(default=None, init=False, repr=False)
    _n_features: int = field(default=0, init=False, repr=False)

    def _resolve_max_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        mf = int(self.max_features)
        if mf < 1:
            raise ValueError(f"max_features must be >= 1, got {mf}")
        return min(mf, d)

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Grow the tree on (densified) ``X``."""
        if self.max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {self.max_depth}")
        X, y, _ = check_Xy(X, y)
        Xd = _to_dense32(X)
        enc = LabelEncoder()
        yi = enc.fit_transform(y)
        self.classes_ = enc.classes_
        self._n_features = Xd.shape[1]
        self._tree = _build_tree(
            Xd,
            yi,
            len(self.classes_),
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self._resolve_max_features(Xd.shape[1]),
            rng=np.random.default_rng(self.seed),
        )
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Leaf class distributions."""
        if self._tree is None:
            raise RuntimeError("DecisionTreeClassifier used before fit")
        Xd = _to_dense32(X)
        if Xd.shape[1] != self._n_features:
            raise ValueError(
                f"X has {Xd.shape[1]} features, tree was fitted with {self._n_features}"
            )
        return self._tree.predict_proba(Xd)

    def predict(self, X) -> np.ndarray:
        """Majority class of the reached leaf."""
        return self.classes_[self.predict_proba(X).argmax(axis=1)]


@dataclass
class RandomForestClassifier:
    """Bootstrap ensemble of decorrelated CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Per-tree growth limits.
    max_features:
        Candidate features per node (default √d).
    bootstrap:
        Sample n rows with replacement per tree.
    seed:
        Master seed; tree t uses ``seed + t``.
    """

    n_estimators: int = 50
    max_depth: int = 30
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: int | str | None = "sqrt"
    bootstrap: bool = True
    seed: int = 0

    classes_: np.ndarray = field(default=None, init=False, repr=False)
    trees_: list = field(default_factory=list, init=False, repr=False)
    _n_features: int = field(default=0, init=False, repr=False)

    def fit(self, X, y) -> "RandomForestClassifier":
        """Grow ``n_estimators`` bootstrap trees."""
        if self.n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {self.n_estimators}")
        X, y, _ = check_Xy(X, y)
        Xd = _to_dense32(X)
        enc = LabelEncoder()
        yi = enc.fit_transform(y)
        self.classes_ = enc.classes_
        self._n_features = Xd.shape[1]
        n = Xd.shape[0]
        self.trees_ = []
        mf = DecisionTreeClassifier(max_features=self.max_features)._resolve_max_features(
            Xd.shape[1]
        )
        for t in range(self.n_estimators):
            rng = np.random.default_rng(self.seed + t)
            rows = rng.integers(0, n, size=n) if self.bootstrap else np.arange(n)
            self.trees_.append(
                _build_tree(
                    Xd[rows],
                    yi[rows],
                    len(self.classes_),
                    max_depth=self.max_depth,
                    min_samples_split=self.min_samples_split,
                    min_samples_leaf=self.min_samples_leaf,
                    max_features=mf,
                    rng=rng,
                )
            )
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Mean of per-tree leaf distributions (soft voting)."""
        if not self.trees_:
            raise RuntimeError("RandomForestClassifier used before fit")
        Xd = _to_dense32(X)
        if Xd.shape[1] != self._n_features:
            raise ValueError(
                f"X has {Xd.shape[1]} features, forest was fitted with {self._n_features}"
            )
        acc = np.zeros((Xd.shape[0], len(self.classes_)))
        for tree in self.trees_:
            acc += tree.predict_proba(Xd)
        return acc / len(self.trees_)

    def predict(self, X) -> np.ndarray:
        """Soft-vote majority class."""
        return self.classes_[self.predict_proba(X).argmax(axis=1)]
