"""Dead-letter capture: poison messages survive with their context.

The resilience invariant the chaos suite enforces is *no silent loss*:
every message offered to the system is delivered, dropped-and-counted,
or parked here with the exception that condemned it.  A
:class:`DeadLetterQueue` is deliberately boring — an append-only list
of :class:`DeadLetter` records — because it must keep working while
everything around it is failing.

Queues travel across process boundaries (shard workers return their
new entries by value so the parent can adopt them), so entries hold
only picklable data: the payload, a string error, and a flat context
dict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["DeadLetter", "DeadLetterQueue", "entry_to_dict", "entry_from_dict"]


def _payload_to_jsonable(payload) -> dict | str:
    """Encode a dead-letter payload for JSON persistence.

    Syslog messages round-trip exactly; strings pass through; anything
    else degrades to its ``repr`` (still inspectable, not rebuildable).
    """
    from repro.core.message import SyslogMessage

    if isinstance(payload, SyslogMessage):
        return {"__syslog__": payload.to_dict()}
    if isinstance(payload, str):
        return payload
    return {"__repr__": repr(payload)}


def _payload_from_jsonable(data):
    from repro.core.message import SyslogMessage

    if isinstance(data, dict) and "__syslog__" in data:
        return SyslogMessage.from_dict(data["__syslog__"])
    if isinstance(data, dict) and "__repr__" in data:
        return data["__repr__"]
    return data


def entry_to_dict(entry: "DeadLetter") -> dict:
    """JSON-ready form of one entry; inverse of :func:`entry_from_dict`."""
    return {
        "seq": entry.seq,
        "site": entry.site,
        "payload": _payload_to_jsonable(entry.payload),
        "error": entry.error,
        "context": dict(entry.context),
    }


def entry_from_dict(data: dict) -> "DeadLetter":
    """Rebuild one entry from :func:`entry_to_dict` output."""
    return DeadLetter(
        seq=int(data["seq"]),
        site=str(data["site"]),
        payload=_payload_from_jsonable(data["payload"]),
        error=str(data["error"]),
        context=dict(data.get("context", {})),
    )


@dataclass(frozen=True)
class DeadLetter:
    """One captured message.

    Attributes
    ----------
    seq:
        1-based position in the owning queue at capture time.
    site:
        Where the message was condemned (e.g. ``pipeline.quarantine``,
        ``fluentd.overflow``, ``fluentd.flush_abandoned``).
    payload:
        The message itself — text for pipeline quarantines, the
        :class:`~repro.core.message.SyslogMessage` for forwarder
        captures.
    error:
        ``repr`` of the exception (or a short reason string).
    context:
        Extra site-specific detail (attempt counts, batch position).
    """

    seq: int
    site: str
    payload: object
    error: str
    context: dict = field(default_factory=dict)


class DeadLetterQueue:
    """Bounded capture of condemned messages (oldest evicted at cap).

    Every capture increments ``repro_faults_dead_letters_total{site=}``
    in this process's registry — :meth:`extend` too, which is how
    worker-side captures (whose registries are invisible to the parent)
    get counted exactly once, in the parent.

    ``max_entries`` caps the queue: sustained faults cannot grow the
    no-silent-loss backstop without bound.  Beyond the cap the *oldest*
    entry is dropped and counted into
    ``repro_faults_dlq_evicted_total`` (and :attr:`n_evicted`) — the
    loss is still never silent, it just moves from entry to counter.
    ``None`` (the default) keeps the queue unbounded.

    Sequence numbers are monotone over the queue's lifetime (they are
    assigned at capture and never reused), so :meth:`since` keeps
    returning exactly the post-cursor entries even after evictions.
    """

    def __init__(self, *, max_entries: int | None = None, registry=None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.registry = registry
        self._entries: list[DeadLetter] = []
        self._next_seq = 0
        #: oldest entries dropped by the ``max_entries`` cap
        self.n_evicted = 0

    def _append(self, site: str, payload, error: str, context: dict) -> DeadLetter:
        self._next_seq += 1
        entry = DeadLetter(
            seq=self._next_seq, site=site, payload=payload,
            error=error, context=context,
        )
        self._entries.append(entry)
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            del self._entries[0]
            self.n_evicted += 1
            from repro.obs import wellknown

            wellknown.faults_dlq_evicted(self.registry).inc()
        return entry

    def push(self, site: str, payload, error: str, **context) -> DeadLetter:
        """Capture one message; returns its record."""
        entry = self._append(site, payload, error, dict(context))
        self._count(site, 1)
        return entry

    def extend(self, entries) -> int:
        """Adopt entries captured elsewhere (renumbered); returns count."""
        n = 0
        for e in entries:
            self._append(e.site, e.payload, e.error, dict(e.context))
            self._count(e.site, 1)
            n += 1
        return n

    def _count(self, site: str, n: int) -> None:
        from repro.obs import wellknown

        wellknown.faults_dead_letters(self.registry).inc(n, site=site)

    def entries(self, site: str | None = None) -> list[DeadLetter]:
        """All entries, optionally filtered to one site."""
        if site is None:
            return list(self._entries)
        return [e for e in self._entries if e.site == site]

    def since(self, n: int) -> list[DeadLetter]:
        """Entries with sequence number past ``n`` (worker delta export)."""
        return [e for e in self._entries if e.seq > n]

    def restore(self, entries) -> int:
        """Adopt entries *without* counting them (checkpoint/file restore).

        Unlike :meth:`extend`, the ``repro_faults_dead_letters_total``
        counters are not incremented: these captures were already
        counted when they happened, and the metrics snapshot travels
        separately in the checkpoint.  Entries are renumbered to stay
        consistent with any existing contents.
        """
        n = 0
        for e in entries:
            self._append(e.site, e.payload, e.error, dict(e.context))
            n += 1
        return n

    def to_jsonl(self, path: str | Path) -> Path:
        """Persist every entry as one JSON object per line.

        Dead letters are the no-silent-loss backstop, so they must
        survive restarts even outside the checkpoint path.
        """
        path = Path(path)
        with path.open("w") as fh:
            for e in self._entries:
                fh.write(json.dumps(entry_to_dict(e), sort_keys=True) + "\n")
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path, *, registry=None) -> "DeadLetterQueue":
        """Load a queue written by :meth:`to_jsonl`.

        Entries are restored without re-counting (see :meth:`restore`).

        Raises
        ------
        ValueError
            A line is not valid JSON or lacks the entry fields.
        """
        path = Path(path)
        queue = cls(registry=registry)
        entries = []
        with path.open() as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entries.append(entry_from_dict(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError) as e:
                    raise ValueError(
                        f"{path}:{lineno}: bad dead-letter record: {e}"
                    ) from e
        queue.restore(entries)
        return queue

    def counts_by_site(self) -> dict[str, int]:
        """Entry counts per site (the stats-reconciliation view)."""
        out: dict[str, int] = {}
        for e in self._entries:
            out[e.site] = out.get(e.site, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all entries (metric counters are cumulative and stay)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DeadLetterQueue(n={len(self._entries)})"
