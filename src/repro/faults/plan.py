"""Deterministic, seedable fault injection.

Production log pipelines treat failure as the common case: workers die,
flushes time out, and malformed messages arrive that no blacklist ever
saw.  This module is the *control plane* for exercising those paths: a
:class:`FaultPlan` names the sites to arm (worker crash, chunk timeout,
flush failure, poison message) and how each fires — per-arming-check
probability, scheduled call indices, or both — and a
:class:`FaultInjector` executes the plan reproducibly.

Determinism guarantees
----------------------
Each armed site draws from its own ``random.Random(f"{seed}:{site}")``
stream and keeps its own arming-check counter, so the fire sequence of
one site is a pure function of ``(seed, site, check ordinal)`` — it
cannot be perturbed by how checks of *other* sites interleave.  Given
the same plan, seed, and per-site check sequence, the injector fires at
exactly the same checks every run; the chaos suite reconciles its
metrics against :attr:`FaultInjector.fire_log` on that basis.

The guarantee holds per process: sites consulted by the parent (worker
crash, chunk timeout, flush failure) are always deterministic, while
the poison site is deterministic on the serial path — shard workers
have their injector disarmed on initialization precisely so that chunk
scheduling cannot smuggle nondeterminism in.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "SITE_WORKER_CRASH",
    "SITE_CHUNK_TIMEOUT",
    "SITE_FLUSH_FAIL",
    "SITE_POISON",
    "SITE_CRASH",
    "SITE_NODE_DOWN",
    "SITE_NODE_SLOW",
    "SITE_PARTITION",
    "SITE_ACCEPT_DROP",
    "SITE_PARTITION_STALL",
    "SITE_COMMIT_LOST",
    "KNOWN_SITES",
    "FaultSpec",
    "FaultPlan",
    "FireRecord",
    "FaultInjector",
    "InjectedFault",
]

#: a shard worker dies (SIGKILL) after receiving its chunk
SITE_WORKER_CRASH = "shard.worker_crash"
#: a shard worker stalls past the parent's chunk deadline
SITE_CHUNK_TIMEOUT = "shard.chunk_timeout"
#: a Fluentd forwarder flush fails before reaching the sink
SITE_FLUSH_FAIL = "fluentd.flush"
#: one message poisons the classify path (undecodable / predict error)
SITE_POISON = "pipeline.poison"
#: the whole process dies (SIGKILL) right after a WAL append or mid
#: checkpoint write — the crash-recovery harness arms this site
SITE_CRASH = "durability.crash"
#: a replicated-store node goes down (SIGKILL, state wiped) — the next
#: fire at the site restarts the downed node, so a probabilistic plan
#: produces kill/rejoin churn
SITE_NODE_DOWN = "store.node_down"
#: one store node times out for the current batch (counted against its
#: circuit breaker without taking the node down)
SITE_NODE_SLOW = "store.node_slow"
#: a network partition isolates a minority of store nodes — the next
#: fire at the site heals it
SITE_PARTITION = "store.partition"
#: the ingest listener drops a datagram/line at accept time (models a
#: full NIC queue) — the drop is counted, never silent
SITE_ACCEPT_DROP = "ingest.accept_drop"
#: a broker partition stalls (refuses appends and fetches) — the next
#: fire at the site unstalls it, so a probabilistic plan produces
#: stall/heal churn and visible consumer lag
SITE_PARTITION_STALL = "broker.partition_stall"
#: a consumer offset commit is lost in flight (the broker's in-memory
#: committed offset stays behind the journal's) — replay after the
#: fire must still honor the journal barrier
SITE_COMMIT_LOST = "broker.commit_lost"

KNOWN_SITES = (
    SITE_WORKER_CRASH, SITE_CHUNK_TIMEOUT, SITE_FLUSH_FAIL, SITE_POISON,
    SITE_CRASH, SITE_NODE_DOWN, SITE_NODE_SLOW, SITE_PARTITION,
    SITE_ACCEPT_DROP, SITE_PARTITION_STALL, SITE_COMMIT_LOST,
)


class InjectedFault(RuntimeError):
    """Raised (or simulated) at an armed site when the injector fires."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at site {site!r}")
        self.site = site


@dataclass(frozen=True)
class FaultSpec:
    """How one site fires.

    Parameters
    ----------
    probability:
        Chance in [0, 1] that any single arming check fires (drawn from
        the site's own seeded stream).
    at_calls:
        1-based arming-check ordinals that fire unconditionally — the
        scheduled-trigger form ("crash the worker on the 3rd chunk").
    limit:
        Cap on total fires for the site; ``None`` is unbounded.
    """

    probability: float = 0.0
    at_calls: tuple[int, ...] = ()
    limit: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if any(c < 1 for c in self.at_calls):
            raise ValueError(f"at_calls are 1-based, got {self.at_calls}")
        if self.limit is not None and self.limit < 0:
            raise ValueError(f"limit must be >= 0, got {self.limit}")

    def to_dict(self) -> dict:
        """JSON-ready form (only non-default fields are emitted)."""
        out: dict = {}
        if self.probability:
            out["probability"] = self.probability
        if self.at_calls:
            out["at_calls"] = list(self.at_calls)
        if self.limit is not None:
            out["limit"] = self.limit
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        unknown = set(data) - {"probability", "at_calls", "limit"}
        if unknown:
            raise ValueError(f"unknown FaultSpec keys: {sorted(unknown)}")
        return cls(
            probability=float(data.get("probability", 0.0)),
            at_calls=tuple(int(c) for c in data.get("at_calls", ())),
            limit=data.get("limit"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """Named fault sites plus the seed that makes them reproducible."""

    sites: dict[str, FaultSpec] = field(default_factory=dict)
    seed: int = 0

    @classmethod
    def never(cls) -> "FaultPlan":
        """The empty plan: armed nowhere, fires never."""
        return cls()

    def to_dict(self) -> dict:
        """JSON-ready form (the ``--fault-plan`` file format)."""
        return {
            "seed": self.seed,
            "sites": {s: spec.to_dict() for s, spec in self.sites.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {"seed", "sites"}
        if unknown:
            raise ValueError(f"unknown FaultPlan keys: {sorted(unknown)}")
        return cls(
            sites={
                str(site): FaultSpec.from_dict(spec)
                for site, spec in data.get("sites", {}).items()
            },
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a JSON plan file (the CLI's ``--fault-plan`` format)::

            {"seed": 7, "sites": {"fluentd.flush": {"probability": 0.2},
                                  "shard.worker_crash": {"at_calls": [2]}}}
        """
        path = Path(path)
        try:
            return cls.from_dict(json.loads(path.read_text()))
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}: not valid JSON: {e}") from e


@dataclass(frozen=True)
class FireRecord:
    """One injector fire, in global order.

    ``call_index`` is the 1-based ordinal of the arming check *within
    its site* — the unit the determinism guarantee is stated in.
    """

    seq: int
    site: str
    call_index: int


class FaultInjector:
    """Executes a :class:`FaultPlan`; every fire is logged and counted.

    Components call :meth:`should_fire` at their armed sites.  A site
    absent from the plan never fires and consumes no randomness, so an
    injector built from :meth:`FaultPlan.never` (or ``None`` plan) is
    free to leave permanently attached.

    Every fire appends a :class:`FireRecord` to :attr:`fire_log` and
    increments ``repro_faults_injected_total{site=...}`` in the given
    metrics registry (default: the process registry), which is what the
    chaos suite reconciles against.
    """

    def __init__(self, plan: FaultPlan | None = None, *, registry=None) -> None:
        self.plan = plan if plan is not None else FaultPlan.never()
        self.registry = registry
        self.fire_log: list[FireRecord] = []
        self._calls: dict[str, int] = {}
        self._fires: dict[str, int] = {}
        self._rngs: dict[str, random.Random] = {
            site: random.Random(f"{self.plan.seed}:{site}")
            for site in self.plan.sites
        }

    def armed(self, site: str) -> bool:
        """True when the plan can ever fire at ``site``."""
        spec = self.plan.sites.get(site)
        return spec is not None and (spec.probability > 0 or bool(spec.at_calls))

    def should_fire(self, site: str) -> bool:
        """One arming check at ``site``; True when the fault fires."""
        spec = self.plan.sites.get(site)
        if spec is None:
            return False
        call = self._calls.get(site, 0) + 1
        self._calls[site] = call
        # consume the site's random stream on every check (even when
        # the limit is exhausted) so the fire sequence stays a function
        # of the check ordinal alone
        draw = self._rngs[site].random() if spec.probability > 0 else 1.0
        fired = call in spec.at_calls or draw < spec.probability
        if not fired:
            return False
        if spec.limit is not None and self._fires.get(site, 0) >= spec.limit:
            return False
        self._fires[site] = self._fires.get(site, 0) + 1
        self.fire_log.append(
            FireRecord(seq=len(self.fire_log) + 1, site=site, call_index=call)
        )
        from repro.obs import wellknown

        wellknown.faults_injected(self.registry).inc(site=site)
        return True

    def check(self, site: str) -> None:
        """Raise :class:`InjectedFault` when the site fires."""
        if self.should_fire(site):
            raise InjectedFault(site)

    def fire_counts(self) -> dict[str, int]:
        """Fires per site so far (the reconciliation view)."""
        return dict(self._fires)

    def call_counts(self) -> dict[str, int]:
        """Arming checks per site so far."""
        return dict(self._calls)

    def reset(self) -> None:
        """Rewind to the initial state: same seed, same future fires."""
        self.fire_log.clear()
        self._calls.clear()
        self._fires.clear()
        for site in self._rngs:
            self._rngs[site] = random.Random(f"{self.plan.seed}:{site}")
