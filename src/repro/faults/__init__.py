"""Fault injection and resilience machinery.

The paper pitches Tivan as always-on cluster monitoring; an always-on
pipeline must survive faults, not just benchmarks.  This package is
the reproduction's failure-as-common-case layer:

- :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultInjector`,
  deterministic seedable fault injection at named sites (worker crash,
  chunk timeout, flush failure, poison message),
- :mod:`repro.faults.dlq` — :class:`DeadLetterQueue`, the no-silent-loss
  backstop: condemned messages are parked with their exception context
  instead of vanishing.

The resilience these exercise lives in the layers themselves: the
sharded executor respawns dead workers and retries lost chunks with
backoff (then falls back to serial), the Fluentd forwarder retries
flushes under a bounded budget with pluggable overflow policies, the
classification pipeline quarantines poison messages per-message, and
the Tivan cluster sheds load to the cheap blacklist path when the
classifier backlog crosses a threshold.  Everything is counted through
:mod:`repro.obs` (``repro_faults_*`` families).
"""

from repro.faults.dlq import DeadLetter, DeadLetterQueue
from repro.faults.plan import (
    KNOWN_SITES,
    SITE_ACCEPT_DROP,
    SITE_CHUNK_TIMEOUT,
    SITE_COMMIT_LOST,
    SITE_CRASH,
    SITE_FLUSH_FAIL,
    SITE_NODE_DOWN,
    SITE_NODE_SLOW,
    SITE_PARTITION,
    SITE_PARTITION_STALL,
    SITE_POISON,
    SITE_WORKER_CRASH,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FireRecord,
    InjectedFault,
)

__all__ = [
    "DeadLetter",
    "DeadLetterQueue",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FireRecord",
    "InjectedFault",
    "KNOWN_SITES",
    "SITE_ACCEPT_DROP",
    "SITE_CHUNK_TIMEOUT",
    "SITE_COMMIT_LOST",
    "SITE_CRASH",
    "SITE_FLUSH_FAIL",
    "SITE_NODE_DOWN",
    "SITE_NODE_SLOW",
    "SITE_PARTITION",
    "SITE_PARTITION_STALL",
    "SITE_POISON",
    "SITE_WORKER_CRASH",
]
