"""Control signals read straight from the metrics registry.

The controller's entire view of the world is the registry — the same
families the dashboards and SLO tracker read (ISSUE: "a controller loop
driven by the metrics registry").  :class:`SignalReader` wraps one
registry with tick-scoped helpers:

- gauge reads (classifier backlog, broker lag/lag-age, SLO budgets),
- counter *rates* over the last control interval (arrival estimates),
- **windowed histogram quantiles**: cumulative bucket snapshots are
  diffed between consecutive ticks and the quantile is interpolated
  over just that window's observations, so a recovering pipeline's p99
  reflects the last interval, not the whole run's history.

Every value is a pure function of registry state and the injected tick
clock; nothing here touches the wall clock, so control decisions are
replayable.  ``SIGNALS`` maps the policy file's signal names onto these
helpers.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    default_registry,
    histogram_quantile,
)

__all__ = ["SignalReader", "SIGNALS"]


class SignalReader:
    """Tick-scoped registry reads: gauges, counter rates, windowed quantiles.

    Call :meth:`begin_tick` with the controller's clock before reading
    and :meth:`finish_tick` after — the window state (previous counter
    values, previous cumulative buckets) only advances on finish, so
    every read inside one tick sees the same window.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._registry = registry
        self._now: float | None = None
        self._prev_now: float | None = None
        self._prev: dict[str, object] = {}
        self._pending: dict[str, object] = {}
        self._cache: dict[tuple, float] = {}

    @property
    def registry(self) -> MetricsRegistry:
        """The registry this reader observes (default: process-wide)."""
        return self._registry if self._registry is not None else default_registry()

    # -- tick lifecycle ------------------------------------------------

    def begin_tick(self, now: float) -> None:
        """Open the read window for one control tick at time ``now``."""
        self._now = now
        self._cache = {}
        self._pending = {}

    def finish_tick(self) -> None:
        """Close the tick: window baselines advance to this tick's reads."""
        self._prev.update(self._pending)
        self._pending = {}
        self._prev_now = self._now

    @property
    def dt(self) -> float:
        """Seconds since the previous tick (0.0 on the first tick)."""
        if self._now is None or self._prev_now is None:
            return 0.0
        return max(0.0, self._now - self._prev_now)

    # -- primitive reads -----------------------------------------------

    def gauge_value(self, name: str, **labels: str) -> float:
        """Current value of one gauge child (0.0 when absent)."""
        fam = self.registry.get(name)
        if fam is None:
            return 0.0
        try:
            return float(fam.value(**labels))
        except (ValueError, AttributeError):
            return 0.0

    def gauge_sum(self, name: str) -> float:
        """Sum of a gauge/counter family across all label children."""
        fam = self.registry.get(name)
        if fam is None:
            return 0.0
        return float(sum(child.value for _labels, child in fam.samples()))

    def gauge_max(self, name: str) -> float:
        """Max of a gauge family across all label children (0.0 empty)."""
        fam = self.registry.get(name)
        if fam is None:
            return 0.0
        values = [child.value for _labels, child in fam.samples()]
        return float(max(values)) if values else 0.0

    def gauge_min(self, name: str, default: float = 0.0) -> float:
        """Min of a gauge family across children (``default`` when empty)."""
        fam = self.registry.get(name)
        if fam is None:
            return default
        values = [child.value for _labels, child in fam.samples()]
        return float(min(values)) if values else default

    def counter_rate(self, name: str) -> float:
        """Per-second increase of a counter family over the last tick.

        The family is summed across children; the first tick (no
        baseline yet) reads 0.0.
        """
        key = ("rate", name)
        if key in self._cache:
            return self._cache[key]
        current = self.gauge_sum(name)
        prev = self._prev.get(("counter", name))
        self._pending[("counter", name)] = current
        dt = self.dt
        rate = 0.0
        if prev is not None and dt > 0:
            rate = max(0.0, (current - prev)) / dt
        self._cache[key] = rate
        return rate

    # -- durable state -------------------------------------------------

    def export_window(self) -> dict:
        """JSON-safe snapshot of the window baselines (for the WAL).

        Captures the previous-tick counter values and cumulative bucket
        snapshots plus the previous tick time, so a resumed controller's
        first post-crash tick diffs against the same baseline the dead
        process would have — rates and windowed quantiles survive the
        crash instead of reading 0.0.
        """
        counters: dict[str, float] = {}
        buckets: dict[str, list] = {}
        for key, value in self._prev.items():
            kind, name = key
            if kind == "counter":
                counters[name] = value
            elif kind == "buckets":
                buckets[name] = [[edge, cum] for edge, cum in value]
        return {
            "prev_now": self._prev_now,
            "counters": counters,
            "buckets": buckets,
        }

    def restore_window(self, data: dict) -> None:
        """Reinstate window baselines exported by :meth:`export_window`."""
        prev_now = data.get("prev_now")
        self._prev_now = None if prev_now is None else float(prev_now)
        self._prev = {}
        for name, value in data.get("counters", {}).items():
            self._prev[("counter", name)] = float(value)
        for name, snapshot in data.get("buckets", {}).items():
            self._prev[("buckets", name)] = [
                (float(edge), int(cum)) for edge, cum in snapshot
            ]

    def window_quantile(self, name: str, q: float) -> float:
        """Quantile of a histogram over observations since the last tick.

        Cumulative buckets (merged across children) are diffed against
        the previous tick's snapshot; with no new observations in the
        window the signal reads 0.0 — "no data" must not look like
        pressure.
        """
        key = ("wq", name, q)
        if key in self._cache:
            return self._cache[key]
        fam = self.registry.get(name)
        value = 0.0
        if isinstance(fam, Histogram):
            merged: dict[float, int] = {}
            for _labels, child in fam.samples():
                for edge, cum in child.cumulative():
                    merged[edge] = merged.get(edge, 0) + cum
            current = sorted(merged.items())
            prev = self._prev.get(("buckets", name))
            self._pending[("buckets", name)] = current
            if prev is not None:
                prev_map = dict(prev)
                window = [
                    (edge, max(0, cum - prev_map.get(edge, 0)))
                    for edge, cum in current
                ]
                if window and window[-1][1] > 0:
                    value = histogram_quantile(window, q)
        self._cache[key] = value
        return value


def _arrival_rate(reader: SignalReader) -> float:
    """Offered-load estimate: relay + listener accept rates summed.

    Exactly one of the two families moves per deployment mode (the
    relay in simulation, the listener on real sockets), so the sum is
    the active one's rate.
    """
    return reader.counter_rate("repro_stream_relay_received_total") + (
        reader.counter_rate("repro_ingest_received_total")
    )


#: signal names a :class:`~repro.control.policy.LeverPolicy` may reference
SIGNALS = {
    "classifier_backlog": lambda r: r.gauge_value(
        "repro_stream_classifier_backlog"
    ),
    "broker_lag": lambda r: r.gauge_sum("repro_broker_lag"),
    "broker_lag_age": lambda r: r.gauge_max("repro_broker_lag_age_seconds"),
    "fluentd_buffer_depth": lambda r: r.gauge_value(
        "repro_stream_fluentd_buffer_depth"
    ),
    "arrival_rate": _arrival_rate,
    "e2e_p99_window": lambda r: r.window_quantile(
        "repro_e2e_latency_seconds", 0.99
    ),
    "quorum_write_p99_window": lambda r: r.window_quantile(
        "repro_store_quorum_write_seconds", 0.99
    ),
    "slo_budget_min": lambda r: r.gauge_min(
        "repro_slo_error_budget_remaining", default=1.0
    ),
}
