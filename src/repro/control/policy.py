"""Declarative control policies: the ``--control-policy`` JSON schema.

A :class:`ControlPolicy` is pure data — which levers the controller
drives, the AIMD/deadband/cooldown parameters of each, and the brownout
ladder thresholds.  Like fault plans and SLO targets it round-trips
through plain dicts (:func:`load_policy_file` reads a JSON object), so
a policy can be reviewed, versioned, and replayed byte-for-byte.

Binding a policy's lever *names* to live objects (a cluster stage, a
listener bucket) happens in :mod:`repro.control.controller`; the policy
itself never references process state, which is what keeps control runs
deterministic and resumable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.control.signals import SIGNALS

__all__ = [
    "LeverPolicy",
    "BrownoutPolicy",
    "FeedforwardPolicy",
    "ControlPolicy",
    "default_policy",
    "default_listen_policy",
    "load_policy_file",
]

#: lever names the controller knows how to bind (see Controller.bind)
KNOWN_LEVERS = (
    "stage_workers",
    "stage_batch",
    "fluentd_batch",
    "degrade_threshold",
    "listener_rate",
    "executor_workers",
    "store_active_nodes",
)


@dataclass(frozen=True)
class LeverPolicy:
    """AIMD parameters for one actuated lever.

    The controller moves the lever additively by ``up_step`` when the
    driving signal crosses ``high`` (after ``cooldown_s`` since the
    lever's last move), and multiplicatively by ``down_factor`` only
    after the signal has stayed under ``low`` for ``hold_ticks``
    consecutive ticks — the deadband between ``low`` and ``high`` moves
    nothing, which is what keeps a converged controller silent.

    ``pressure_up`` distinguishes capacity levers (workers, batch
    sizes: overload pushes the value *up*) from admission levers (the
    listener rate: overload pushes the value *down*); the AIMD shape is
    the same either way — the direction toward more provisioning is
    additive, the direction toward less is multiplicative.

    ``costed`` marks the lever whose value × time integral is the run's
    worker-seconds bill (the autoscaling economy the bench compares
    against static provisioning).
    """

    name: str
    signal: str
    high: float
    low: float
    min_value: float
    max_value: float
    up_step: float = 1.0
    down_factor: float = 0.5
    cooldown_s: float = 10.0
    hold_ticks: int = 3
    pressure_up: bool = True
    costed: bool = False

    def __post_init__(self) -> None:
        if self.name not in KNOWN_LEVERS:
            raise ValueError(
                f"unknown lever {self.name!r}; known: {KNOWN_LEVERS}"
            )
        if self.signal not in SIGNALS:
            raise ValueError(
                f"unknown signal {self.signal!r}; known: {tuple(SIGNALS)}"
            )
        if not self.low <= self.high:
            raise ValueError(
                f"{self.name}: low must be <= high, got "
                f"low={self.low} high={self.high}"
            )
        if not 0 < self.min_value <= self.max_value:
            raise ValueError(
                f"{self.name}: need 0 < min_value <= max_value, got "
                f"min={self.min_value} max={self.max_value}"
            )
        if self.up_step <= 0:
            raise ValueError(f"{self.name}: up_step must be > 0")
        if not 0.0 < self.down_factor < 1.0:
            raise ValueError(
                f"{self.name}: down_factor must be in (0, 1), got "
                f"{self.down_factor}"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"{self.name}: cooldown_s must be >= 0")
        if self.hold_ticks < 1:
            raise ValueError(f"{self.name}: hold_ticks must be >= 1")

    def to_dict(self) -> dict:
        """The JSON form ``load_policy_file`` reads back."""
        return {
            "name": self.name,
            "signal": self.signal,
            "high": self.high,
            "low": self.low,
            "min": self.min_value,
            "max": self.max_value,
            "up_step": self.up_step,
            "down_factor": self.down_factor,
            "cooldown_s": self.cooldown_s,
            "hold_ticks": self.hold_ticks,
            "pressure_up": self.pressure_up,
            "costed": self.costed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LeverPolicy":
        """Build a lever policy from its JSON dict form."""
        return cls(
            name=data["name"],
            signal=data["signal"],
            high=float(data["high"]),
            low=float(data["low"]),
            min_value=float(data["min"]),
            max_value=float(data["max"]),
            up_step=float(data.get("up_step", 1.0)),
            down_factor=float(data.get("down_factor", 0.5)),
            cooldown_s=float(data.get("cooldown_s", 10.0)),
            hold_ticks=int(data.get("hold_ticks", 3)),
            pressure_up=bool(data.get("pressure_up", True)),
            costed=bool(data.get("costed", False)),
        )


@dataclass(frozen=True)
class BrownoutPolicy:
    """When and how far the cluster descends the brownout ladder.

    The ladder has four rungs: L0 normal, L1 shrink batches, L2 force
    the cheap-classify path, L3 shed at accept (reason-labelled drops).
    The controller descends one rung after ``enter_ticks`` consecutive
    overloaded ticks and climbs one rung after ``exit_ticks``
    consecutive healthy ticks — asymmetric counts (slow to climb back)
    are the ladder's hysteresis.  A tick is *overloaded* when the
    classifier backlog exceeds ``backlog_high`` or any SLO error-budget
    gauge sits below ``budget_threshold``.
    """

    enter_ticks: int = 3
    exit_ticks: int = 6
    max_level: int = 3
    backlog_high: float = 2000.0
    budget_threshold: float = 0.0
    shed_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.enter_ticks < 1 or self.exit_ticks < 1:
            raise ValueError("enter_ticks and exit_ticks must be >= 1")
        if not 0 <= self.max_level <= 3:
            raise ValueError(f"max_level must be in [0, 3], got {self.max_level}")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction}"
            )

    def to_dict(self) -> dict:
        """The JSON form ``load_policy_file`` reads back."""
        return {
            "enter_ticks": self.enter_ticks,
            "exit_ticks": self.exit_ticks,
            "max_level": self.max_level,
            "backlog_high": self.backlog_high,
            "budget_threshold": self.budget_threshold,
            "shed_fraction": self.shed_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BrownoutPolicy":
        """Build a brownout policy from its JSON dict form."""
        return cls(
            enter_ticks=int(data.get("enter_ticks", 3)),
            exit_ticks=int(data.get("exit_ticks", 6)),
            max_level=int(data.get("max_level", 3)),
            backlog_high=float(data.get("backlog_high", 2000.0)),
            budget_threshold=float(data.get("budget_threshold", 0.0)),
            shed_fraction=float(data.get("shed_fraction", 0.5)),
        )


@dataclass(frozen=True)
class FeedforwardPolicy:
    """Predictive pre-positioning from the offered-load window.

    The controller keeps the last ``window_ticks`` arrival-rate samples
    and fits a least-squares slope through them; when the extrapolated
    rate ``horizon_s`` ahead exceeds ``min_gain`` × the current rate,
    capacity levers (``pressure_up=True``) are allowed to take their
    additive up-step *before* the reactive signal crosses ``high`` —
    the diurnal/surge ramp is met with capacity already in place.

    Feedforward only ever accelerates provisioning: it never triggers a
    relief move, it still respects per-lever cooldowns, and under
    constant in-capacity load the fitted slope is flat so it never
    fires — which is how it preserves the anti-oscillation guarantee
    (the hypothesis suite pins this down).
    """

    window_ticks: int = 12
    horizon_s: float = 30.0
    min_gain: float = 1.2

    def __post_init__(self) -> None:
        if self.window_ticks < 3:
            raise ValueError(
                f"window_ticks must be >= 3, got {self.window_ticks}"
            )
        if self.horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {self.horizon_s}")
        if self.min_gain <= 1.0:
            raise ValueError(f"min_gain must be > 1, got {self.min_gain}")

    def to_dict(self) -> dict:
        """The JSON form ``load_policy_file`` reads back."""
        return {
            "window_ticks": self.window_ticks,
            "horizon_s": self.horizon_s,
            "min_gain": self.min_gain,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FeedforwardPolicy":
        """Build a feedforward policy from its JSON dict form."""
        return cls(
            window_ticks=int(data.get("window_ticks", 12)),
            horizon_s=float(data.get("horizon_s", 30.0)),
            min_gain=float(data.get("min_gain", 1.2)),
        )


@dataclass(frozen=True)
class ControlPolicy:
    """One complete controller configuration (the ``--control-policy`` file).

    ``tick_every_s`` is the control interval on the driving clock (the
    simulation engine for ``simulate``, the event loop for ``listen``).
    ``utilization_cap`` bounds capacity-guarded scale-down: a costed
    capacity lever may only shrink while the estimated demand fits into
    the post-shrink capacity at this utilization.
    """

    tick_every_s: float = 5.0
    levers: tuple[LeverPolicy, ...] = ()
    brownout: BrownoutPolicy | None = field(default_factory=BrownoutPolicy)
    utilization_cap: float = 0.8
    feedforward: FeedforwardPolicy | None = None

    def __post_init__(self) -> None:
        if self.tick_every_s <= 0:
            raise ValueError(
                f"tick_every_s must be positive, got {self.tick_every_s}"
            )
        if not 0.0 < self.utilization_cap <= 1.0:
            raise ValueError(
                f"utilization_cap must be in (0, 1], got {self.utilization_cap}"
            )
        names = [lv.name for lv in self.levers]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate lever names in policy: {names}")

    def to_dict(self) -> dict:
        """The JSON form ``load_policy_file`` reads back."""
        return {
            "tick_every_s": self.tick_every_s,
            "utilization_cap": self.utilization_cap,
            "levers": [lv.to_dict() for lv in self.levers],
            "brownout": self.brownout.to_dict() if self.brownout else None,
            "feedforward": (
                self.feedforward.to_dict() if self.feedforward else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ControlPolicy":
        """Build a control policy from its JSON dict form."""
        brownout = data.get("brownout")
        feedforward = data.get("feedforward")
        return cls(
            tick_every_s=float(data.get("tick_every_s", 5.0)),
            utilization_cap=float(data.get("utilization_cap", 0.8)),
            levers=tuple(
                LeverPolicy.from_dict(d) for d in data.get("levers", ())
            ),
            brownout=(
                BrownoutPolicy.from_dict(brownout)
                if brownout is not None else None
            ),
            feedforward=(
                FeedforwardPolicy.from_dict(feedforward)
                if feedforward is not None else None
            ),
        )


def default_policy() -> ControlPolicy:
    """The stock simulation policy: scale classifier workers with the
    backlog (costed), grow the forwarder batch under broker lag, and
    arm the full brownout ladder."""
    return ControlPolicy(
        tick_every_s=5.0,
        levers=(
            LeverPolicy(
                name="stage_workers", signal="classifier_backlog",
                high=200.0, low=40.0, min_value=1, max_value=16,
                up_step=1, down_factor=0.5, cooldown_s=10.0,
                hold_ticks=3, costed=True,
            ),
            LeverPolicy(
                name="fluentd_batch", signal="broker_lag",
                high=1000.0, low=100.0, min_value=100, max_value=20_000,
                up_step=500, down_factor=0.5, cooldown_s=10.0,
                hold_ticks=4,
            ),
        ),
        brownout=BrownoutPolicy(),
    )


def default_listen_policy() -> ControlPolicy:
    """The stock listener policy: trim the token-bucket admit rate
    under broker lag, probe it back additively when lag clears."""
    return ControlPolicy(
        tick_every_s=1.0,
        levers=(
            LeverPolicy(
                name="listener_rate", signal="broker_lag",
                high=5000.0, low=500.0, min_value=100, max_value=1_000_000,
                up_step=2000, down_factor=0.5, cooldown_s=2.0,
                hold_ticks=3, pressure_up=False,
            ),
        ),
        brownout=BrownoutPolicy(backlog_high=float("inf")),
    )


def load_policy_file(path: str | Path) -> ControlPolicy:
    """Read a control policy from its JSON file form."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ValueError("control policy file must contain a JSON object")
    return ControlPolicy.from_dict(data)
