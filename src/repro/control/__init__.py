"""Closed-loop overload control plane (ROADMAP item 2).

The earlier PRs left every capacity knob exposed but static: classifier
worker count, forwarder batch size, degraded-mode thresholds, the
listener's token-bucket budget, replica activation.  This package
closes the loop: a deterministic, injectable-clock controller reads the
metrics registry (backlog gauges, windowed latency quantiles, broker
lag, SLO error budgets) and actuates those levers with AIMD steps,
deadbands, per-lever cooldowns, and hysteresis — plus a graceful
brownout ladder for sustained overload.  See ``docs/API.md`` and the
README "Control plane" section for the policy JSON schema and the
determinism guarantees.
"""

from repro.control.actuators import (
    Actuator,
    CallableActuator,
    ExecutorWorkersActuator,
    FluentdBatchActuator,
    ListenerRateActuator,
    StageBatchActuator,
    StageWorkersActuator,
    StoreActiveNodesActuator,
)
from repro.control.controller import (
    BrownoutLadder,
    Controller,
    Lever,
    controller_for_cluster,
)
from repro.control.policy import (
    BrownoutPolicy,
    ControlPolicy,
    FeedforwardPolicy,
    LeverPolicy,
    default_listen_policy,
    default_policy,
    load_policy_file,
)
from repro.control.signals import SIGNALS, SignalReader

__all__ = [
    "Actuator",
    "CallableActuator",
    "ExecutorWorkersActuator",
    "FluentdBatchActuator",
    "ListenerRateActuator",
    "StageBatchActuator",
    "StageWorkersActuator",
    "StoreActiveNodesActuator",
    "BrownoutLadder",
    "Controller",
    "Lever",
    "controller_for_cluster",
    "BrownoutPolicy",
    "ControlPolicy",
    "FeedforwardPolicy",
    "LeverPolicy",
    "default_listen_policy",
    "default_policy",
    "load_policy_file",
    "SIGNALS",
    "SignalReader",
]
