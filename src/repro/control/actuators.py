"""Actuators: the write side of the control loop.

Each actuator adapts one capacity lever — classifier workers, batch
sizes, the listener's token bucket, executor pool width, replica
activation — behind a uniform ``get``/``apply`` surface so the
controller's AIMD logic stays lever-agnostic.  Actuators are dumb by
design: they clamp, round, and forward; *when* to move is entirely the
controller's decision.

The one piece of lever-specific intelligence lives in ``can_shrink``:
capacity-guarded scale-down.  A naive "backlog is low, drop a worker"
rule oscillates forever (backlog is low at *any* capacity that keeps
up), so capacity levers refuse a shrink unless the observed offered
load still fits into the post-shrink capacity at the policy's
utilization cap — after which a converged controller goes silent, which
is the anti-oscillation property the tests pin down.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.control.signals import SIGNALS, SignalReader

__all__ = [
    "Actuator",
    "CallableActuator",
    "StageWorkersActuator",
    "StageBatchActuator",
    "FluentdBatchActuator",
    "ListenerRateActuator",
    "ExecutorWorkersActuator",
    "StoreActiveNodesActuator",
]


class Actuator:
    """One controllable lever: read the setpoint, write a new one.

    ``integral`` levers are rounded before application (worker counts,
    batch sizes); a rounded value equal to the current one is a no-op
    the controller does not count as an actuation.
    """

    #: round applied values to whole numbers
    integral = False

    def get(self) -> float:
        """Current value of the lever."""
        raise NotImplementedError

    def apply(self, value: float) -> None:
        """Set the lever to ``value`` (already clamped by the controller)."""
        raise NotImplementedError

    def can_shrink(
        self, reader: SignalReader, candidate: float, utilization_cap: float
    ) -> bool:
        """May the lever shrink to ``candidate`` right now?

        The default allows it; capacity levers override this with a
        demand-fits-capacity guard.
        """
        return True


class CallableActuator(Actuator):
    """Adapt a ``(getter, setter)`` pair into an actuator (tests, glue)."""

    def __init__(
        self,
        getter: Callable[[], float],
        setter: Callable[[float], None],
        *,
        integral: bool = False,
    ) -> None:
        self._get = getter
        self._set = setter
        self.integral = integral

    def get(self) -> float:
        """Current value via the wrapped getter."""
        return float(self._get())

    def apply(self, value: float) -> None:
        """Write ``value`` via the wrapped setter."""
        self._set(value)


class StageWorkersActuator(Actuator):
    """Scale a :class:`~repro.stream.tivan.ClassifierStage`'s worker count.

    Scale-down is capacity-guarded: the offered load (arrival-rate
    signal) must fit into ``candidate`` workers at the utilization cap,
    with per-worker throughput ``1 / service_time_s``.
    """

    integral = True

    def __init__(self, stage) -> None:
        self.stage = stage

    def get(self) -> float:
        """Current worker count of the stage."""
        return float(self.stage.n_workers)

    def apply(self, value: float) -> None:
        """Resize the stage to ``value`` workers."""
        self.stage.n_workers = max(1, int(round(value)))

    def can_shrink(
        self, reader: SignalReader, candidate: float, utilization_cap: float
    ) -> bool:
        """Allow the shrink only while demand fits the smaller pool."""
        demand = SIGNALS["arrival_rate"](reader)
        capacity = max(1, int(round(candidate))) / self.stage.service_time_s
        return demand <= utilization_cap * capacity


class StageBatchActuator(Actuator):
    """Adjust a classifier stage's per-tick drain batch size."""

    integral = True

    def __init__(self, stage) -> None:
        self.stage = stage

    def get(self) -> float:
        """Current stage batch size."""
        return float(self.stage.batch_size)

    def apply(self, value: float) -> None:
        """Set the stage batch size (floored at 1)."""
        self.stage.batch_size = max(1, int(round(value)))


class FluentdBatchActuator(Actuator):
    """Adjust the Fluentd forwarder flush batch across all consumers.

    Drain capacity of the broker spine is ``batch_size /
    flush_interval_s`` per consumer, so this is the lever that actually
    bounds accept-to-flush latency under surge.
    """

    integral = True

    def __init__(self, consumers: Sequence) -> None:
        if not consumers:
            raise ValueError("need at least one consumer")
        self.consumers = list(consumers)

    def get(self) -> float:
        """Current flush batch size (the first consumer's)."""
        return float(self.consumers[0].batch_size)

    def apply(self, value: float) -> None:
        """Set every consumer's flush batch size (floored at 1)."""
        size = max(1, int(round(value)))
        for consumer in self.consumers:
            consumer.batch_size = size


class ListenerRateActuator(Actuator):
    """Adjust a listener :class:`~repro.ingest.listener.TokenBucket` rate.

    Uses the bucket's thread-safe :meth:`set_rate`, so the asyncio
    accept path never observes a torn update.
    """

    def __init__(self, bucket) -> None:
        self.bucket = bucket

    def get(self) -> float:
        """Current admit rate (messages/second)."""
        return float(self.bucket.rate)

    def apply(self, value: float) -> None:
        """Set the admit rate, keeping the accumulated burst tokens."""
        self.bucket.set_rate(value)


class ExecutorWorkersActuator(Actuator):
    """Resize a :class:`~repro.runtime.executor.ShardedExecutor` pool."""

    integral = True

    def __init__(self, executor) -> None:
        self.executor = executor

    def get(self) -> float:
        """Current worker-process count."""
        return float(self.executor.n_workers)

    def apply(self, value: float) -> None:
        """Resize the pool; workers respawn lazily on the next dispatch."""
        self.executor.resize(max(1, int(round(value))))


class StoreActiveNodesActuator(Actuator):
    """Promote/demote replica nodes of a ReplicatedLogStore.

    The lever's value is the number of *active* (non-quiesced) nodes.
    Shrinking quiesces the highest-numbered active nodes — their acting
    primaries are demoted and re-promoted onto remaining owners —
    and growing re-activates them in reverse order, so the actuation
    sequence is deterministic.  The policy's ``min_value`` must stay at
    or above the write quorum; the actuator additionally refuses to go
    below it.
    """

    integral = True

    def __init__(self, store) -> None:
        self.store = store

    def get(self) -> float:
        """Number of currently active (non-quiesced) nodes."""
        return float(len(self.store.nodes) - len(self.store.quiesced))

    def apply(self, value: float) -> None:
        """Quiesce or activate nodes until ``value`` are active."""
        store = self.store
        floor = max(store.write_quorum, store.read_quorum)
        target = max(floor, min(len(store.nodes), int(round(value))))
        active = [
            n.node_id for n in store.nodes if n.node_id not in store.quiesced
        ]
        while len(active) > target:
            store.quiesce_node(active.pop())
        if len(active) < target:
            for nid in sorted(store.quiesced, reverse=True):
                if len(active) >= target:
                    break
                store.activate_node(nid)
                active.append(nid)
