"""The deterministic AIMD controller and the brownout ladder.

:class:`Controller` is a pure state machine: every :meth:`~Controller.tick`
takes the current time from the *caller's* clock (the simulation engine
under ``simulate``, the asyncio loop under ``listen``), reads its
signals from the metrics registry through a
:class:`~repro.control.signals.SignalReader`, and moves its levers by
the policy's AIMD rules — additive steps toward more provisioning,
multiplicative steps toward less, a deadband between the ``low`` and
``high`` watermarks where nothing moves, a per-lever cooldown between
moves, and ``hold_ticks`` of consecutive quiet before any relief move.
Scale-down is additionally capacity-guarded by the actuator (see
:mod:`repro.control.actuators`), which is what makes a converged
controller *provably quiet*: under constant offered load within
capacity, after convergence the signal sits in the deadband or the
guard refuses further shrink, so the actuation count stops moving — the
property the hypothesis tests pin down, and the chaos suite bounds the
direction-flip count under injected faults.

Sustained overload descends the :class:`BrownoutLadder` one rung at a
time (L0 normal → L1 shrink batches → L2 cheap-classify → L3 shed at
accept); recovery climbs back symmetrically, one rung per
``exit_ticks`` healthy ticks.

Everything the controller does is visible in the ``repro_control_*``
families: tick and actuation counters (per lever and direction),
current setpoints, direction flips, the brownout level, and
reason-labelled shed counts.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.control.actuators import Actuator
from repro.control.policy import BrownoutPolicy, ControlPolicy, LeverPolicy
from repro.control.signals import SIGNALS, SignalReader
from repro.obs import wellknown

__all__ = ["Lever", "BrownoutLadder", "Controller", "controller_for_cluster"]


@dataclass
class Lever:
    """One bound lever: policy + actuator + per-lever control state."""

    policy: LeverPolicy
    actuator: Actuator
    value: float = field(init=False)
    last_move_s: float = field(default=float("-inf"), init=False)
    quiet_ticks: int = field(default=0, init=False)
    last_direction: str | None = field(default=None, init=False)
    n_actuations: int = field(default=0, init=False)
    n_flips: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        value = min(
            self.policy.max_value, max(self.policy.min_value, self.actuator.get())
        )
        if self.actuator.integral:
            value = float(int(round(value)))
        self.value = value


class BrownoutLadder:
    """Hysteretic overload ladder: L0 normal … L3 shed at accept.

    ``update`` descends one rung after ``enter_ticks`` consecutive
    overloaded ticks and climbs one rung after ``exit_ticks``
    consecutive healthy ticks; ``on_change(old, new)`` lets the host
    (cluster or listener loop) apply the rung's mitigation.
    """

    def __init__(
        self,
        policy: BrownoutPolicy,
        *,
        on_change=None,
        registry=None,
    ) -> None:
        self.policy = policy
        self.on_change = on_change
        self.level = 0
        self.n_changes = 0
        self._over_ticks = 0
        self._ok_ticks = 0
        self._m_level = wellknown.control_brownout_level(registry)
        self._m_level.set(0)

    def update(self, overloaded: bool) -> int:
        """Advance the ladder one tick; returns the (new) level."""
        if overloaded:
            self._over_ticks += 1
            self._ok_ticks = 0
            if (
                self._over_ticks >= self.policy.enter_ticks
                and self.level < self.policy.max_level
            ):
                self._change(self.level + 1)
                self._over_ticks = 0
        else:
            self._ok_ticks += 1
            self._over_ticks = 0
            if self._ok_ticks >= self.policy.exit_ticks and self.level > 0:
                self._change(self.level - 1)
                self._ok_ticks = 0
        return self.level

    def _change(self, new: int) -> None:
        old, self.level = self.level, new
        self.n_changes += 1
        self._m_level.set(new)
        if self.on_change is not None:
            self.on_change(old, new)


class Controller:
    """Registry-driven AIMD control loop over bound levers.

    Parameters
    ----------
    policy:
        The :class:`~repro.control.policy.ControlPolicy` to enforce.
    registry:
        Metrics registry the signals read from and the
        ``repro_control_*`` families publish to (default: process-wide).
    on_brownout:
        Callback ``(old_level, new_level)`` applying a rung change;
        required for the ladder to have any effect.
    slo_targets:
        Quantile :class:`~repro.obs.slo.SloTarget` entries contributing
        to the overload predicate.  Budgets are evaluated over the
        *window* quantile (observations since the previous tick), so
        the ladder exits symmetrically once recent latency recovers —
        a cumulative quantile would pin the ladder down for the rest of
        the run.  Defaults to the stock SLOs' quantile targets.
    """

    def __init__(
        self,
        policy: ControlPolicy,
        *,
        registry=None,
        on_brownout=None,
        slo_targets=None,
    ) -> None:
        self.policy = policy
        self.reader = SignalReader(registry)
        self.levers: dict[str, Lever] = {}
        if slo_targets is None:
            from repro.obs.slo import default_slos

            slo_targets = [t for t in default_slos() if t.kind == "quantile"]
        self.slo_targets = list(slo_targets)
        self.brownout: BrownoutLadder | None = None
        if policy.brownout is not None:
            self.brownout = BrownoutLadder(
                policy.brownout, on_change=on_brownout, registry=registry
            )
        self.n_ticks = 0
        #: ∫ value dt of the costed lever (the autoscaling bill)
        self.worker_seconds = 0.0
        #: up-moves taken on the feedforward prediction alone
        self.n_feedforward_moves = 0
        self._last_tick_s: float | None = None
        self._ff_window: deque[tuple[float, float]] | None = None
        if policy.feedforward is not None:
            self._ff_window = deque(maxlen=policy.feedforward.window_ticks)
        self._m_ticks = wellknown.control_ticks(registry)
        self._m_actuations = wellknown.control_actuations(registry)
        self._m_setpoint = wellknown.control_setpoint(registry)
        self._m_flips = wellknown.control_flips(registry)
        self._m_ff_rate = wellknown.control_feedforward_rate(registry)
        self._m_ff_moves = wellknown.control_feedforward_moves(registry)

    # -- wiring --------------------------------------------------------

    def bind(self, name: str, actuator: Actuator) -> Lever:
        """Bind the policy lever ``name`` to a live actuator."""
        for lever_policy in self.policy.levers:
            if lever_policy.name == name:
                lever = Lever(lever_policy, actuator)
                self.levers[name] = lever
                self._m_setpoint.set(lever.value, lever=name)
                return lever
        raise ValueError(f"policy has no lever named {name!r}")

    @property
    def total_actuations(self) -> int:
        """Actuations across every lever since construction."""
        return sum(lv.n_actuations for lv in self.levers.values())

    @property
    def total_flips(self) -> int:
        """Direction reversals across every lever since construction."""
        return sum(lv.n_flips for lv in self.levers.values())

    # -- the loop ------------------------------------------------------

    def tick(self, now: float) -> None:
        """Run one control interval at time ``now`` (caller's clock)."""
        reader = self.reader
        reader.begin_tick(now)
        # prime the demand window every tick: counter baselines only
        # advance for signals actually read, and the shrink guard reads
        # the arrival rate lazily — without priming, its first-ever read
        # has no baseline, sees 0.0 demand, and waves the shrink through
        arrival = SIGNALS["arrival_rate"](reader)
        self.n_ticks += 1
        self._m_ticks.inc()
        if self._last_tick_s is not None:
            dt = max(0.0, now - self._last_tick_s)
            for lever in self.levers.values():
                if lever.policy.costed:
                    self.worker_seconds += lever.value * dt
        ff_boost = self._feedforward(now, arrival)
        for lever in self.levers.values():
            self._evaluate(lever, now, ff_boost=ff_boost)
        if self.brownout is not None:
            self.brownout.update(self._overloaded(reader))
        reader.finish_tick()
        self._last_tick_s = now

    def _feedforward(self, now: float, arrival: float) -> bool:
        """Append the offered-load sample; True when a surge is predicted.

        Fits a least-squares slope over the full sample window and
        extrapolates ``horizon_s`` ahead; fires only with a full window
        (the first samples after start/resume ramp from a missing
        baseline and would fake a slope) and a positive current rate.
        """
        if self._ff_window is None:
            return False
        ff = self.policy.feedforward
        assert ff is not None
        if arrival <= 0:
            # no baseline yet (first tick after start/resume) or a dead
            # feed — a zero sample in the window would fake the very
            # ramp this term exists to predict
            self._m_ff_rate.set(arrival)
            return False
        self._ff_window.append((now, arrival))
        if len(self._ff_window) < ff.window_ticks:
            self._m_ff_rate.set(arrival)
            return False
        points = list(self._ff_window)
        t0 = points[0][0]
        xs = [t - t0 for t, _ in points]
        ys = [rate for _, rate in points]
        n = len(points)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        var_x = sum((x - mean_x) ** 2 for x in xs)
        if var_x <= 0:
            self._m_ff_rate.set(arrival)
            return False
        slope = sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        ) / var_x
        predicted = max(0.0, ys[-1] + slope * ff.horizon_s)
        self._m_ff_rate.set(predicted)
        return predicted >= arrival * ff.min_gain

    def _evaluate(
        self, lever: Lever, now: float, *, ff_boost: bool = False
    ) -> None:
        pol = lever.policy
        pressure = SIGNALS[pol.signal](self.reader)
        pressure_dir = "up" if pol.pressure_up else "down"
        relief_dir = "down" if pol.pressure_up else "up"
        # feedforward pre-positions capacity levers only: an additive
        # up-move ahead of the reactive signal, never a relief move
        boosted = ff_boost and pol.pressure_up and pressure <= pol.high
        if pressure > pol.high or boosted:
            lever.quiet_ticks = 0
            if now - lever.last_move_s >= pol.cooldown_s:
                before = lever.n_actuations
                self._move(lever, pressure_dir, now)
                if boosted and lever.n_actuations > before:
                    self.n_feedforward_moves += 1
                    self._m_ff_moves.inc(lever=pol.name)
        elif pressure < pol.low:
            lever.quiet_ticks += 1
            if (
                lever.quiet_ticks >= pol.hold_ticks
                and now - lever.last_move_s >= pol.cooldown_s
            ):
                self._move(lever, relief_dir, now)
        else:
            # deadband: converged levers sit here and stay silent
            lever.quiet_ticks = 0

    def _move(self, lever: Lever, direction: str, now: float) -> None:
        pol = lever.policy
        if direction == "up":
            candidate = min(pol.max_value, lever.value + pol.up_step)
        else:
            candidate = max(pol.min_value, lever.value * pol.down_factor)
        if lever.actuator.integral:
            candidate = float(int(round(candidate)))
            candidate = min(pol.max_value, max(pol.min_value, candidate))
        if candidate == lever.value:
            return  # pinned at a bound: not an actuation
        if direction == "down" and not lever.actuator.can_shrink(
            self.reader, candidate, self.policy.utilization_cap
        ):
            return  # capacity guard: demand still needs the current size
        lever.actuator.apply(candidate)
        lever.value = candidate
        lever.last_move_s = now
        lever.quiet_ticks = 0
        lever.n_actuations += 1
        if lever.last_direction is not None and lever.last_direction != direction:
            lever.n_flips += 1
            self._m_flips.inc(lever=pol.name)
        lever.last_direction = direction
        self._m_actuations.inc(lever=pol.name, direction=direction)
        self._m_setpoint.set(candidate, lever=pol.name)

    def _overloaded(self, reader: SignalReader) -> bool:
        """The brownout predicate: backlog blown or SLO budget burning."""
        brownout_policy = self.policy.brownout
        assert brownout_policy is not None
        backlog = reader.gauge_value("repro_stream_classifier_backlog")
        if backlog > brownout_policy.backlog_high:
            return True
        for target in self.slo_targets:
            value = reader.window_quantile(target.family, target.quantile)
            if value <= 0.0 or target.threshold <= 0:
                continue
            budget = 1.0 - value / target.threshold
            if budget < brownout_policy.budget_threshold:
                return True
        return False

    def stats(self) -> dict:
        """Summary counters for reports and benchmark tables."""
        return {
            "ticks": self.n_ticks,
            "actuations": {
                name: lever.n_actuations for name, lever in self.levers.items()
            },
            "flips": {
                name: lever.n_flips for name, lever in self.levers.items()
            },
            "setpoints": {
                name: lever.value for name, lever in self.levers.items()
            },
            "brownout_level": self.brownout.level if self.brownout else 0,
            "brownout_changes": self.brownout.n_changes if self.brownout else 0,
            "worker_seconds": self.worker_seconds,
            "feedforward_moves": self.n_feedforward_moves,
        }

    # -- durable state -------------------------------------------------

    def export_state(self) -> dict:
        """The controller's complete decision state as a JSON-safe dict.

        This is the payload of the ``"control"`` WAL record the cluster
        journals after every tick: per-lever setpoints and hysteresis
        (cooldown clocks, quiet ticks, direction, actuation/flip
        counts), ladder rung and its enter/exit counters, the costed
        integral, the feedforward sample window, and the signal
        reader's window baselines.  ``restore_state`` on a freshly
        bound controller reproduces the dead process's control loop
        exactly — same levers, same rung, same pending hysteresis.
        """
        state: dict = {
            "n_ticks": self.n_ticks,
            "worker_seconds": self.worker_seconds,
            "feedforward_moves": self.n_feedforward_moves,
            "last_tick_s": self._last_tick_s,
            "levers": {
                name: {
                    "value": lever.value,
                    # JSON has no -inf literal worth relying on; None
                    # marks "never moved" instead
                    "last_move_s": (
                        None if lever.last_move_s == float("-inf")
                        else lever.last_move_s
                    ),
                    "quiet_ticks": lever.quiet_ticks,
                    "last_direction": lever.last_direction,
                    "n_actuations": lever.n_actuations,
                    "n_flips": lever.n_flips,
                }
                for name, lever in self.levers.items()
            },
            "brownout": None,
            "feedforward_window": (
                None if self._ff_window is None
                else [[t, rate] for t, rate in self._ff_window]
            ),
            "reader": self.reader.export_window(),
        }
        if self.brownout is not None:
            state["brownout"] = {
                "level": self.brownout.level,
                "n_changes": self.brownout.n_changes,
                "over_ticks": self.brownout._over_ticks,
                "ok_ticks": self.brownout._ok_ticks,
            }
        return state

    def restore_state(self, state: dict) -> None:
        """Reinstate a journaled :meth:`export_state` snapshot.

        Restored setpoints are *repositioned* through the actuators
        (the rebuilt cluster starts at cold defaults) without counting
        as actuations — the journaled ``n_actuations``/``n_flips`` are
        restored verbatim, which is what the crash harness's
        zero-duplicate-actuations assertion checks.  Ladder restore
        re-applies the rung's mitigation via ``on_change`` (rungs are
        absolute) without advancing ``n_changes``.
        """
        self.n_ticks = int(state["n_ticks"])
        self.worker_seconds = float(state["worker_seconds"])
        self.n_feedforward_moves = int(state.get("feedforward_moves", 0))
        last_tick = state.get("last_tick_s")
        self._last_tick_s = None if last_tick is None else float(last_tick)
        for name, lever_state in state.get("levers", {}).items():
            lever = self.levers.get(name)
            if lever is None:
                continue  # policy lost this lever between generations
            value = float(lever_state["value"])
            if value != lever.value:
                lever.actuator.apply(value)
            lever.value = value
            last_move = lever_state.get("last_move_s")
            lever.last_move_s = (
                float("-inf") if last_move is None else float(last_move)
            )
            lever.quiet_ticks = int(lever_state.get("quiet_ticks", 0))
            lever.last_direction = lever_state.get("last_direction")
            lever.n_actuations = int(lever_state.get("n_actuations", 0))
            lever.n_flips = int(lever_state.get("n_flips", 0))
            self._m_setpoint.set(value, lever=name)
        brownout_state = state.get("brownout")
        if brownout_state is not None and self.brownout is not None:
            ladder = self.brownout
            level = int(brownout_state["level"])
            if level != ladder.level:
                old, ladder.level = ladder.level, level
                if ladder.on_change is not None:
                    ladder.on_change(old, level)
            ladder.n_changes = int(brownout_state.get("n_changes", 0))
            ladder._over_ticks = int(brownout_state.get("over_ticks", 0))
            ladder._ok_ticks = int(brownout_state.get("ok_ticks", 0))
            ladder._m_level.set(level)
        window = state.get("feedforward_window")
        if window is not None and self._ff_window is not None:
            self._ff_window.clear()
            for t, rate in window:
                self._ff_window.append((float(t), float(rate)))
        reader_state = state.get("reader")
        if reader_state is not None:
            self.reader.restore_window(reader_state)


def controller_for_cluster(cluster, policy: ControlPolicy, *, registry=None):
    """Bind a policy's levers onto a TivanCluster's live objects.

    Binds every lever the policy names — ``stage_workers``,
    ``stage_batch``, ``fluentd_batch``, ``degrade_threshold``,
    ``store_active_nodes`` — and wires the brownout ladder into
    :meth:`~repro.stream.tivan.TivanCluster.apply_brownout`.  Levers
    that need an absent component (no classifier stage, single-node
    store) raise immediately: a policy that silently controls nothing
    would report a healthy run it never steered.
    """
    from repro.control.actuators import (
        CallableActuator,
        FluentdBatchActuator,
        StageBatchActuator,
        StageWorkersActuator,
        StoreActiveNodesActuator,
    )

    controller = Controller(
        policy, registry=registry, on_brownout=cluster.apply_brownout
    )
    for lever_policy in policy.levers:
        name = lever_policy.name
        if name in ("stage_workers", "stage_batch"):
            stage = cluster._stage
            if stage is None:
                raise ValueError(f"lever {name!r} needs an attached classifier stage")
            actuator = (
                StageWorkersActuator(stage)
                if name == "stage_workers" else StageBatchActuator(stage)
            )
        elif name == "fluentd_batch":
            actuator = FluentdBatchActuator(cluster.consumers)
        elif name == "degrade_threshold":
            if cluster.degrade_backlog is None:
                raise ValueError(
                    "lever 'degrade_threshold' needs degrade_backlog set"
                )
            actuator = CallableActuator(
                lambda: cluster.degrade_backlog,
                cluster.set_degrade_backlog,
                integral=True,
            )
        elif name == "store_active_nodes":
            if not hasattr(cluster.store, "quiesce_node"):
                raise ValueError(
                    "lever 'store_active_nodes' needs a replicated store"
                )
            actuator = StoreActiveNodesActuator(cluster.store)
        else:
            raise ValueError(
                f"lever {name!r} is not bindable to a simulation cluster"
            )
        controller.bind(name, actuator)
    return controller
