"""Node syslog daemons and the central relay.

§4.2.2: "The syslog data stream is forwarded from all our compute nodes
to a primary syslog server which then forwards the stream to Fluentd.
Forwarding is managed by rsyslogd's builtin support."

:class:`SyslogDaemon` replays a node's share of a pre-generated message
stream into the engine; :class:`SyslogRelay` is the primary syslog
server — it fans every daemon's output into a downstream consumer
(normally the Fluentd forwarder) and counts drops when the downstream
refuses (bounded-buffer backpressure).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.message import SyslogMessage
from repro.stream.events import EventEngine

__all__ = ["SyslogDaemon", "SyslogRelay"]


@dataclass
class SyslogRelay:
    """The primary syslog server: fan-in plus forwarding.

    Parameters
    ----------
    downstream:
        Callable accepting a message and returning True when accepted
        (False = downstream full, message dropped — rsyslog's UDP-style
        loss under pressure).
    """

    downstream: Callable[[SyslogMessage], bool]
    n_received: int = field(default=0, init=False)
    n_forwarded: int = field(default=0, init=False)
    n_dropped: int = field(default=0, init=False)
    #: wire lines that failed to parse in :meth:`receive_line`
    n_parse_errors: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        # cached: receive() runs once per message
        from repro.obs import wellknown

        self._m_received = wellknown.relay_received()
        self._m_dropped = wellknown.relay_dropped()

    def receive(self, message: SyslogMessage) -> None:
        """Accept one message from a node daemon."""
        self.n_received += 1
        self._m_received.inc()
        if self.downstream(message):
            self.n_forwarded += 1
        else:
            self.n_dropped += 1
            self._m_dropped.inc()

    def receive_line(self, raw: bytes | str) -> bool:
        """Accept one RFC 3164/5424 *wire line* from a network daemon.

        The parsed copy is a new object, so this intake is for
        non-durable relays only (durable identity is keyed by the trace
        object's ``id``).  Unparseable lines are counted into
        :attr:`n_parse_errors` and never raise.  Returns True when the
        line parsed and the downstream accepted it.
        """
        from repro.stream.rfc import safe_parse_line

        message, _error = safe_parse_line(raw)
        if message is None:
            self.n_parse_errors += 1
            return False
        before = self.n_forwarded
        self.receive(message)
        return self.n_forwarded > before


@dataclass
class SyslogDaemon:
    """One node's rsyslogd, replaying its share of a message trace.

    ``wire_format`` selects how :meth:`render_line` serialises:
    ``"3164"``, ``"5424"``, or ``"mixed"`` — a heterogeneous fleet
    where the format alternates deterministically per emitted message
    (by :attr:`n_emitted` parity), the shape the listener's parser has
    to cope with in practice.
    """

    hostname: str
    relay: SyslogRelay
    wire_format: str = "3164"
    n_emitted: int = field(default=0, init=False)

    _WIRE_FORMATS = ("3164", "5424", "mixed")

    def __post_init__(self) -> None:
        if self.wire_format not in self._WIRE_FORMATS:
            raise ValueError(
                f"wire_format must be one of {self._WIRE_FORMATS}, "
                f"got {self.wire_format!r}"
            )

    def render_line(self, message: SyslogMessage) -> str:
        """Serialise ``message`` in this daemon's wire format."""
        fmt = self.wire_format
        if fmt == "mixed":
            fmt = "3164" if self.n_emitted % 2 == 0 else "5424"
        if fmt == "5424":
            return message.to_rfc5424()
        return message.to_rfc3164()

    def load_trace(
        self, engine: EventEngine, messages: Sequence[SyslogMessage]
    ) -> None:
        """Schedule this node's messages into the engine.

        Only messages whose ``hostname`` matches are scheduled; the
        timestamps in the trace are absolute sim times.  A timestamp
        already in the past (a resumed run whose clock moved on while
        the message was never offered) is clamped to *now* — delivered
        late rather than dropped or time-travelled.
        """
        for msg in messages:
            if msg.hostname != self.hostname:
                continue
            engine.schedule_at(
                max(msg.timestamp, engine.now), lambda m=msg: self._emit(m)
            )

    def _emit(self, message: SyslogMessage) -> None:
        self.n_emitted += 1
        self.relay.receive(message)
