"""Node syslog daemons and the central relay.

§4.2.2: "The syslog data stream is forwarded from all our compute nodes
to a primary syslog server which then forwards the stream to Fluentd.
Forwarding is managed by rsyslogd's builtin support."

:class:`SyslogDaemon` replays a node's share of a pre-generated message
stream into the engine; :class:`SyslogRelay` is the primary syslog
server — it fans every daemon's output into a downstream consumer
(normally the Fluentd forwarder) and counts drops when the downstream
refuses (bounded-buffer backpressure).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.message import SyslogMessage
from repro.stream.events import EventEngine

__all__ = ["SyslogDaemon", "SyslogRelay"]


@dataclass
class SyslogRelay:
    """The primary syslog server: fan-in plus forwarding.

    Parameters
    ----------
    downstream:
        Callable accepting a message and returning True when accepted
        (False = downstream full, message dropped — rsyslog's UDP-style
        loss under pressure).
    """

    downstream: Callable[[SyslogMessage], bool]
    n_received: int = field(default=0, init=False)
    n_forwarded: int = field(default=0, init=False)
    n_dropped: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        # cached: receive() runs once per message
        from repro.obs import wellknown

        self._m_received = wellknown.relay_received()
        self._m_dropped = wellknown.relay_dropped()

    def receive(self, message: SyslogMessage) -> None:
        """Accept one message from a node daemon."""
        self.n_received += 1
        self._m_received.inc()
        if self.downstream(message):
            self.n_forwarded += 1
        else:
            self.n_dropped += 1
            self._m_dropped.inc()


@dataclass
class SyslogDaemon:
    """One node's rsyslogd, replaying its share of a message trace."""

    hostname: str
    relay: SyslogRelay
    n_emitted: int = field(default=0, init=False)

    def load_trace(
        self, engine: EventEngine, messages: Sequence[SyslogMessage]
    ) -> None:
        """Schedule this node's messages into the engine.

        Only messages whose ``hostname`` matches are scheduled; the
        timestamps in the trace are absolute sim times.  A timestamp
        already in the past (a resumed run whose clock moved on while
        the message was never offered) is clamped to *now* — delivered
        late rather than dropped or time-travelled.
        """
        for msg in messages:
            if msg.hostname != self.hostname:
                continue
            engine.schedule_at(
                max(msg.timestamp, engine.now), lambda m=msg: self._emit(m)
            )

    def _emit(self, message: SyslogMessage) -> None:
        self.n_emitted += 1
        self.relay.receive(message)
