"""A miniature OpenSearch: sharded store with a real inverted index.

§4.2: "Database support is provided by an Opensearch service deployed
across 6 of the Dell servers ... This system has allowed us to store
and search over thirty million log records a month."  The experiments
need the *capabilities* — term search, time-range filters, and the
aggregations Grafana panels are built on — not the distributed systems
internals, so :class:`LogStore` implements:

- round-robin document sharding (6 shards like the paper's 6 data
  nodes; per-shard stats let the capacity bench reason about balance),
- an inverted index token → sorted doc-id postings (masked-normalized
  tokens, so searches generalize over volatile fields),
- term / all-terms / phrase queries with time-range filtering,
- ``date_histogram`` and ``terms`` aggregations — the backbone of the
  §4.5 frequency and grouping analyses.
"""

from __future__ import annotations

import bisect
import time
from collections import Counter, defaultdict
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.message import Severity, SyslogMessage
from repro.core.taxonomy import Category
from repro.textproc.normalize import MaskingNormalizer
from repro.textproc.tokenize import Tokenizer

__all__ = ["LogDocument", "LogStore", "QueryResult", "DateHistogramBucket"]


@dataclass(frozen=True)
class LogDocument:
    """One indexed log record."""

    doc_id: int
    message: SyslogMessage
    category: Category | None = None  # classifier-assigned, if any


@dataclass(frozen=True)
class QueryResult:
    """Documents matching a query, plus timing-free metadata."""

    docs: tuple[LogDocument, ...]
    total: int


@dataclass(frozen=True)
class DateHistogramBucket:
    """One time bucket of a date-histogram aggregation."""

    start: float
    count: int


class LogStore:
    """Sharded, inverted-indexed log document store.

    Parameters
    ----------
    n_shards:
        Shard count (paper deployment: 6 data nodes).
    """

    def __init__(self, n_shards: int = 6) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards
        self._docs: list[LogDocument] = []
        self._shard_counts = [0] * n_shards
        self._postings: dict[str, list[int]] = defaultdict(list)
        self._times: list[float] = []  # per doc_id, indexing order
        # Time index, sorted lazily: streams arrive mostly in time
        # order (append-only), while bulk loads may be shuffled — an
        # insertion sort per document would be quadratic there, so the
        # sorted view is rebuilt on demand instead.
        self._time_order: list[int] = []  # doc ids sorted by timestamp
        self._time_sorted: list[float] = []
        self._time_dirty = False
        self._tokenizer = Tokenizer()
        self._normalizer = MaskingNormalizer()

    # -- indexing -------------------------------------------------------

    def index(
        self,
        message: SyslogMessage,
        category: Category | None = None,
        *,
        _tokens: list[str] | None = None,
    ) -> int:
        """Index one message; returns its doc id.

        ``_tokens`` lets :meth:`bulk_index` pass pre-computed analysis
        so a batch can be analyzed in full *before* any document
        mutates the store (all-or-nothing bulk semantics).
        """
        doc_id = len(self._docs)
        doc = LogDocument(doc_id=doc_id, message=message, category=category)
        self._docs.append(doc)
        self._shard_counts[doc_id % self.n_shards] += 1
        seen: set[str] = set()
        tokens = _tokens if _tokens is not None else self._analyze(message.text)
        for tok in tokens:
            if tok not in seen:
                seen.add(tok)
                self._postings[tok].append(doc_id)
        for extra in (message.hostname, message.app):
            key = extra.lower()
            if key not in seen:
                seen.add(key)
                self._postings[key].append(doc_id)
        if self._time_sorted and message.timestamp < self._time_sorted[-1]:
            self._time_dirty = True
        self._time_sorted.append(message.timestamp)
        self._time_order.append(doc_id)
        self._times.append(message.timestamp)
        return doc_id

    def _ensure_time_index(self) -> None:
        if self._time_dirty:
            order = sorted(range(len(self._times)), key=self._times.__getitem__)
            self._time_order = order
            self._time_sorted = [self._times[i] for i in order]
            self._time_dirty = False

    def bulk_index(self, messages: Sequence[SyslogMessage]) -> bool:
        """Index a batch (the Fluentd sink contract), all-or-nothing.

        Every message is analyzed *before* the first document lands, so
        a poison message (undecodable text, a tokenizer crash) fails
        the whole batch cleanly: the exception propagates with the
        store unchanged, the forwarder counts a failed flush, and the
        batch stays buffered for retry — no half-indexed flush.

        When the caller carries sampled trace contexts
        (:func:`repro.obs.propagation.carrying`), a ``store.index`` hop
        is recorded per context — the cross-hop trace's store stop on
        the single-node path.
        """
        from repro.obs.propagation import carried, record_hop

        ctxs, clock = carried()
        wall_t0 = time.perf_counter() if ctxs else 0.0
        analyzed = [self._analyze(m.text) for m in messages]
        for m, toks in zip(messages, analyzed):
            self.index(m, _tokens=toks)
        if ctxs:
            now = clock()
            wall_ms = (time.perf_counter() - wall_t0) * 1e3
            for ctx in ctxs:
                record_hop(
                    ctx, "store.index", now,
                    docs=len(messages), wall_ms=round(wall_ms, 3),
                )
        return True

    def set_category(self, doc_id: int, category: Category) -> None:
        """Attach a classifier verdict to an already-indexed document."""
        doc = self._docs[doc_id]
        self._docs[doc_id] = LogDocument(
            doc_id=doc.doc_id, message=doc.message, category=category
        )

    def _analyze(self, text: str) -> list[str]:
        return self._tokenizer.tokenize(self._normalizer.normalize(text))

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def get(self, doc_id: int) -> LogDocument:
        """Fetch by id (raises IndexError when absent)."""
        return self._docs[doc_id]

    def term_query(
        self,
        term: str,
        *,
        t0: float | None = None,
        t1: float | None = None,
        limit: int | None = None,
        max_severity: "Severity | None" = None,
    ) -> QueryResult:
        """Documents containing ``term`` (hostname/app/token match).

        ``max_severity`` keeps only documents at that severity or more
        urgent (syslog severities are lower-is-more-urgent, so this is
        a numeric upper bound — ``max_severity=Severity.WARNING`` means
        warnings, errors, criticals, alerts, and emergencies).
        """
        ids = self._postings.get(term.lower(), [])
        return self._finalize(ids, t0, t1, limit, max_severity)

    def all_terms_query(
        self,
        terms: Sequence[str],
        *,
        t0: float | None = None,
        t1: float | None = None,
        limit: int | None = None,
    ) -> QueryResult:
        """Documents containing every term (AND of postings)."""
        if not terms:
            raise ValueError("all_terms_query requires at least one term")
        lists = sorted(
            (self._postings.get(t.lower(), []) for t in terms), key=len
        )
        if not lists[0]:
            return QueryResult(docs=(), total=0)
        result = set(lists[0])
        for lst in lists[1:]:
            result &= set(lst)
            if not result:
                break
        return self._finalize(sorted(result), t0, t1, limit)

    def phrase_query(
        self,
        phrase: str,
        *,
        t0: float | None = None,
        t1: float | None = None,
        limit: int | None = None,
    ) -> QueryResult:
        """AND-query on the phrase's tokens, verified by substring match
        on the masked text (like a match_phrase over a keyword subfield)."""
        tokens = self._analyze(phrase)
        if not tokens:
            raise ValueError(f"phrase {phrase!r} yields no tokens")
        cand = self.all_terms_query(tokens, t0=t0, t1=t1)
        needle = " ".join(tokens)
        hits = [
            d for d in cand.docs
            if needle in " ".join(self._analyze(d.message.text))
        ]
        if limit is not None:
            hits = hits[:limit]
        return QueryResult(docs=tuple(hits), total=len(hits))

    def time_range(self, t0: float, t1: float) -> QueryResult:
        """All documents with t0 <= timestamp < t1."""
        docs = tuple(self._iter_range(t0, t1))
        return QueryResult(docs=docs, total=len(docs))

    def _iter_range(self, t0: float | None, t1: float | None):
        """Documents in [t0, t1), lazily, in timestamp order.

        The count-only path for aggregations: no tuple of the whole
        range is ever built, so a dashboard refresh over a large store
        costs iteration, not a copy of every document per panel.
        """
        self._ensure_time_index()
        lo = (
            bisect.bisect_left(self._time_sorted, t0)
            if t0 is not None else 0
        )
        hi = (
            bisect.bisect_left(self._time_sorted, t1)
            if t1 is not None else len(self._time_sorted)
        )
        for i in range(lo, hi):
            yield self._docs[self._time_order[i]]

    def iter_documents(self):
        """Iterate every document in doc-id order (checkpoint path)."""
        return iter(self._docs)

    def _finalize(self, ids, t0, t1, limit, max_severity=None) -> QueryResult:
        docs = (self._docs[i] for i in ids)
        if t0 is not None or t1 is not None:
            lo = t0 if t0 is not None else float("-inf")
            hi = t1 if t1 is not None else float("inf")
            docs = (d for d in docs if lo <= d.message.timestamp < hi)
        if max_severity is not None:
            docs = (d for d in docs if d.message.severity <= max_severity)
        out = list(docs)
        total = len(out)
        if limit is not None:
            out = out[:limit]
        return QueryResult(docs=tuple(out), total=total)

    # -- aggregations ------------------------------------------------------

    def date_histogram(
        self,
        *,
        interval_s: float,
        t0: float | None = None,
        t1: float | None = None,
        term: str | None = None,
    ) -> list[DateHistogramBucket]:
        """Counts per fixed time interval (Grafana's message-rate panel).

        Empty intermediate buckets are included so plots show gaps.
        """
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if term is not None:
            docs = self.term_query(term, t0=t0, t1=t1).docs
            times = sorted(d.message.timestamp for d in docs)
        else:
            self._ensure_time_index()
            lo = bisect.bisect_left(self._time_sorted, t0) if t0 is not None else 0
            hi = (
                bisect.bisect_left(self._time_sorted, t1)
                if t1 is not None
                else len(self._time_sorted)
            )
            times = self._time_sorted[lo:hi]
        if not times:
            return []
        start = (t0 if t0 is not None else times[0]) // interval_s * interval_s
        end = times[-1]
        buckets: list[DateHistogramBucket] = []
        counts: Counter[int] = Counter(int((t - start) // interval_s) for t in times)
        n_buckets = int((end - start) // interval_s) + 1
        for b in range(n_buckets):
            buckets.append(
                DateHistogramBucket(start=start + b * interval_s, count=counts.get(b, 0))
            )
        return buckets

    def terms_aggregation(
        self,
        field_name: str,
        *,
        top: int = 10,
        t0: float | None = None,
        t1: float | None = None,
    ) -> list[tuple[str, int]]:
        """Top values of a document field (hostname/app/category).

        Raises
        ------
        ValueError
            Unknown field name.
        """
        if field_name not in ("hostname", "app", "category"):
            raise ValueError(f"cannot aggregate on field {field_name!r}")
        counter: Counter[str] = Counter()
        for d in self._iter_range(t0, t1):
            if field_name == "category":
                if d.category is not None:
                    counter[d.category.value] += 1
            else:
                counter[getattr(d.message, field_name)] += 1
        return counter.most_common(top)

    def severity_histogram(
        self, *, t0: float | None = None, t1: float | None = None
    ) -> dict[Severity, int]:
        """Document counts per severity level (dashboard panel)."""
        out: dict[Severity, int] = {}
        for d in self._iter_range(t0, t1):
            out[d.message.severity] = out.get(d.message.severity, 0) + 1
        return out

    # -- ops visibility -----------------------------------------------------

    def shard_counts(self) -> list[int]:
        """Documents per shard (balance check)."""
        return list(self._shard_counts)

    def index_stats(self) -> dict[str, int]:
        """Coarse index size statistics."""
        return {
            "docs": len(self._docs),
            "unique_terms": len(self._postings),
            "postings": sum(len(p) for p in self._postings.values()),
        }
