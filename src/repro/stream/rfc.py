"""Syslog wire formats: RFC 3164 / RFC 5424 rendering and parsing.

The Darwin test-bed forwards node syslog in both RFC 3164 ("BSD
syslog") and RFC 5424 framing depending on vendor and firmware age
(§4.2) — the heterogeneity of framing is itself part of what makes the
corpus heterogeneous.  This module is the single source of truth for
both directions of the wire format; ``repro.datagen`` senders render
with it and the ``repro.ingest`` listener parses with it, so a
formatting change can never desynchronise the two.

Timestamps use the simulation calendar: fixed 30-day months and
360-day years anchored at 2023-01-01, so render→parse round-trips are
exact (to whole seconds) without ever touching the host clock.

Two parsing entry points:

``parse_line``
    Strict; raises :class:`ValueError` on anything unparseable.
    Used where the caller controls the input (tests, trace replay).
``safe_parse_line``
    Total; never raises.  Accepts raw ``bytes`` straight off a
    socket, enforces a size cap, survives NUL bytes, truncated UTF-8
    and malformed PRI/timestamps, and returns ``(message, error)``
    where exactly one side is ``None``.  This is the listener's
    accept path: garbage is quarantined, not thrown.
"""

from __future__ import annotations

import re

from repro.core.message import Facility, Severity, SyslogMessage

__all__ = [
    "MAX_LINE_BYTES",
    "format_rfc3164",
    "format_rfc5424",
    "parse_line",
    "safe_parse_line",
]

# Default cap on a single wire line; RFC 5424 §6.1 lets transports
# limit message length — 8 KiB is the conventional datagram ceiling.
MAX_LINE_BYTES = 8192

_MONTHS = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)
_MONTH_INDEX = {m: i + 1 for i, m in enumerate(_MONTHS)}

_SECONDS_PER_DAY = 86400.0
# Simulation epoch: days roll over every 86400 s; month length fixed at
# 30 days — good enough for rendering/parsing round trips in the
# simulator, which never crosses real calendar boundaries.
_DAYS_PER_MONTH = 30

# Enum lookup tables: Severity(x)/Facility(x) go through EnumMeta.__call__,
# which dominates the per-line budget at ingest rates.
_SEVERITY_BY_CODE = tuple(Severity(i) for i in range(8))
_FACILITY_BY_CODE = {int(f): f for f in Facility}


def _format_bsd_time(ts: float) -> str:
    day_total = int(ts // _SECONDS_PER_DAY)
    month = _MONTHS[(day_total // _DAYS_PER_MONTH) % 12]
    day = day_total % _DAYS_PER_MONTH + 1
    rem = int(ts % _SECONDS_PER_DAY)
    return f"{month} {day:2d} {rem // 3600:02d}:{rem % 3600 // 60:02d}:{rem % 60:02d}"


def _format_iso_time(ts: float) -> str:
    day_total = int(ts // _SECONDS_PER_DAY)
    year = 2023 + day_total // 360
    month = (day_total // _DAYS_PER_MONTH) % 12 + 1
    day = day_total % _DAYS_PER_MONTH + 1
    rem = int(ts % _SECONDS_PER_DAY)
    return (
        f"{year:04d}-{month:02d}-{day:02d}T"
        f"{rem // 3600:02d}:{rem % 3600 // 60:02d}:{rem % 60:02d}Z"
    )


def format_rfc3164(msg: SyslogMessage) -> str:
    """Render in BSD-syslog framing (no year, local timestamp)."""
    tag = f"{msg.app}[{msg.pid}]" if msg.pid is not None else msg.app
    ts = _format_bsd_time(msg.timestamp)
    return f"<{msg.pri}>{ts} {msg.hostname} {tag}: {msg.text}"


def format_rfc5424(msg: SyslogMessage) -> str:
    """Render in RFC 5424 framing (version 1, no structured data)."""
    pid = str(msg.pid) if msg.pid is not None else "-"
    ts = _format_iso_time(msg.timestamp)
    return f"<{msg.pri}>1 {ts} {msg.hostname} {msg.app} {pid} - - {msg.text}"


_PRI_RE = re.compile(r"^<(\d{1,3})>")
_BSD_RE = re.compile(
    r"^(?P<mon>[A-Z][a-z]{2})\s+(?P<day>\d{1,2})\s"
    r"(?P<h>\d{2}):(?P<m>\d{2}):(?P<s>\d{2})\s"
    r"(?P<host>\S+)\s(?P<tag>[^:\[]+)(?:\[(?P<pid>\d+)\])?:\s?(?P<text>.*)$"
)
_5424_RE = re.compile(
    r"^1\s(?P<ts>\S+)\s(?P<host>\S+)\s(?P<app>\S+)\s(?P<pid>\S+)\s\S+\s(?:-|\[.*?\])\s?"
    r"(?P<text>.*)$"
)
_ISO_RE = re.compile(
    r"^(?P<Y>\d{4})-(?P<M>\d{2})-(?P<D>\d{2})T(?P<h>\d{2}):(?P<m>\d{2}):(?P<s>\d{2})"
)


def parse_line(line: str) -> SyslogMessage:
    """Parse an RFC 3164 or RFC 5424 syslog line.

    Severity/facility default to INFO/USER when no PRI field is
    present (some vendors omit it when writing to local files).

    Raises
    ------
    ValueError
        If the line matches neither format.
    """
    severity, facility = Severity.INFO, Facility.USER
    m = _PRI_RE.match(line)
    if m:
        pri = int(m.group(1))
        if pri > 191:
            raise ValueError(f"invalid PRI value {pri} in syslog line: {line!r}")
        severity = _SEVERITY_BY_CODE[pri % 8]
        facility = _FACILITY_BY_CODE.get(pri // 8, Facility.USER)
        line = line[m.end():]

    m5 = _5424_RE.match(line)
    if m5:
        ts = _parse_iso_time(m5.group("ts"))
        pid_s = m5.group("pid")
        return SyslogMessage(
            timestamp=ts,
            hostname=m5.group("host"),
            app=m5.group("app"),
            text=m5.group("text"),
            severity=severity,
            facility=facility,
            pid=int(pid_s) if pid_s.isdigit() else None,
        )

    mb = _BSD_RE.match(line)
    if mb:
        mon = _MONTH_INDEX.get(mb.group("mon"))
        if mon is None:
            raise ValueError(f"unrecognized month in syslog line: {line!r}")
        day = int(mb.group("day"))
        if not 1 <= day <= _DAYS_PER_MONTH:
            raise ValueError(f"day {day} out of range in syslog line: {line!r}")
        day_total = (mon - 1) * _DAYS_PER_MONTH + day - 1
        ts = (
            day_total * _SECONDS_PER_DAY
            + _clock_seconds(mb.group("h"), mb.group("m"), mb.group("s"), line)
        )
        pid_s = mb.group("pid")
        return SyslogMessage(
            timestamp=float(ts),
            hostname=mb.group("host"),
            app=mb.group("tag").strip(),
            text=mb.group("text"),
            severity=severity,
            facility=facility,
            pid=int(pid_s) if pid_s else None,
        )
    raise ValueError(f"unparseable syslog line: {line!r}")


def _clock_seconds(h: str, m: str, s: str, context: str) -> int:
    """Validated HH:MM:SS → seconds; hostile digits must not parse."""
    hh, mm, ss = int(h), int(m), int(s)
    if hh > 23 or mm > 59 or ss > 59:
        raise ValueError(
            f"time {hh:02d}:{mm:02d}:{ss:02d} out of range in: {context!r}"
        )
    return hh * 3600 + mm * 60 + ss


def _parse_iso_time(ts: str) -> float:
    m = _ISO_RE.match(ts)
    if not m:
        raise ValueError(f"unparseable RFC5424 timestamp: {ts!r}")
    month, day = int(m.group("M")), int(m.group("D"))
    if not 1 <= month <= 12 or not 1 <= day <= _DAYS_PER_MONTH:
        raise ValueError(f"date out of range in RFC5424 timestamp: {ts!r}")
    day_total = (
        (int(m.group("Y")) - 2023) * 360
        + (month - 1) * _DAYS_PER_MONTH
        + day - 1
    )
    return (
        day_total * _SECONDS_PER_DAY
        + _clock_seconds(m.group("h"), m.group("m"), m.group("s"), ts)
    )


def safe_parse_line(
    raw: bytes | str, *, max_bytes: int = MAX_LINE_BYTES
) -> tuple[SyslogMessage | None, str | None]:
    """Parse hostile wire input without ever raising.

    Returns ``(message, None)`` on success, ``(None, reason)`` on any
    failure — oversize input, empty lines, undecodable bytes, or lines
    neither RFC matches.  ``reason`` is a short machine-greppable slug
    followed by detail, suitable for a dead-letter record.
    """
    try:
        if isinstance(raw, bytes):
            if max_bytes is not None and len(raw) > max_bytes:
                return None, f"oversize: {len(raw)} bytes > {max_bytes}"
            line = raw.decode("utf-8", errors="replace")
        else:
            if max_bytes is not None and len(raw) > max_bytes:
                return None, f"oversize: {len(raw)} chars > {max_bytes}"
            line = raw
        # Trailing frame noise: newline framing and NUL padding (some
        # senders NUL-terminate datagrams).
        line = line.strip("\r\n\x00 \t")
        if not line:
            return None, "empty line"
        return parse_line(line), None
    except ValueError as exc:
        return None, f"unparseable: {exc}"
    except Exception as exc:  # pragma: no cover - belt and braces
        return None, f"parser error: {type(exc).__name__}: {exc}"
