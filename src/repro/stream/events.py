"""Minimal discrete-event engine.

A binary-heap scheduler over ``(time, seq, callback)`` entries.  The
sequence number breaks time ties FIFO, keeping runs deterministic —
essential because every experiment asserts on simulated outcomes.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventEngine"]


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled callback (ordered by time, then insertion)."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventEngine:
    """Heap-based event loop with simulated time."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from the current sim time.

        Raises
        ------
        ValueError
            For negative delays (time travel).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Run ``action`` at absolute sim time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before current time {self.now}"
            )
        heapq.heappush(self._heap, Event(time, self._seq, action))
        self._seq += 1

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events until the horizon/queue end; returns final time.

        Parameters
        ----------
        until:
            Stop once the next event is past this sim time (the clock
            is advanced to ``until``).
        max_events:
            Safety cap on processed events.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            if until is not None and self._heap[0].time > until:
                self.now = until
                break
            ev = heapq.heappop(self._heap)
            self.now = ev.time
            ev.action()
            processed += 1
            self.events_processed += 1
        else:
            if until is not None:
                self.now = max(self.now, until)
        return self.now

    def pending(self) -> int:
        """Events still queued."""
        return len(self._heap)
