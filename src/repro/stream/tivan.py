"""The assembled Tivan cluster simulation.

Wires the §4.2 path — node daemons → primary syslog relay → Fluentd
forwarder → the indexed store — and optionally attaches a *classifier
stage*: a single-server queue that works through indexed documents at a
given per-message service time (measured from a real pipeline, or taken
from the LLM cost model).  The stage's backlog over time is the
quantitative form of the paper's feasibility argument: a classifier
whose service rate is below the arrival rate "will not be able to keep
up with the continuous flow of messages" (§6).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.taxonomy import Category
from repro.datagen.workload import StreamEvent
from repro.replication.store import QuorumError
from repro.stream.events import EventEngine
from repro.stream.fluentd import FluentdForwarder
from repro.stream.opensearch import LogStore
from repro.stream.syslogd import SyslogDaemon, SyslogRelay

__all__ = ["TivanCluster", "IngestReport", "ClassifierStage"]


@dataclass
class ClassifierStage:
    """Single-server classification queue over indexed documents.

    Parameters
    ----------
    service_time_s:
        Simulated seconds to classify one message (e.g. Table 3's
        per-message LLM latency, or a measured pipeline mean).
    classify:
        Maps message text → :class:`Category`; ``None`` records
        progress without real predictions (pure queueing study).
    classify_batch:
        Batch alternative to ``classify``: maps a sequence of texts to
        a parallel sequence of categories.  This is how a
        :class:`~repro.core.pipeline.ClassificationPipeline` (or a
        :class:`~repro.runtime.executor.ShardedExecutor` wrapping one)
        attaches on its batch-first path.  Takes precedence over
        ``classify`` when both are given.
    batch_size:
        Documents drained per simulated service tick.  The simulated
        cost of a tick is ``service_time_s × n_taken``, so batching
        changes scheduling granularity, not modelled throughput —
        but it collapses the *real* per-message Python overhead of the
        attached classifier by the batch factor.
    cheap_classify_batch:
        Optional cheap path for degraded mode — typically the
        blacklist/bucketing filter alone (§5.1), orders of magnitude
        cheaper than the model.  Used instead of
        ``classify_batch``/``classify`` while the cluster is shedding
        load; documents it labels count into :attr:`n_degraded`.
    degraded_service_time_s:
        Simulated per-message seconds on the cheap path; defaults to
        ``service_time_s / 10``.
    n_workers:
        Parallel servers the stage models: a tick's simulated cost is
        ``service_time_s × n_taken / n_workers``.  This is the control
        plane's costed autoscaling lever — worker-seconds are billed per
        worker regardless of utilisation.
    """

    service_time_s: float
    classify: Callable[[str], Category] | None = None
    classify_batch: Callable[[Sequence[str]], Sequence[Category]] | None = None
    batch_size: int = 1
    cheap_classify_batch: Callable[[Sequence[str]], Sequence[Category]] | None = None
    degraded_service_time_s: float | None = None
    n_workers: int = 1

    n_done: int = field(default=0, init=False)
    #: documents labelled by the cheap path while degraded
    n_degraded: int = field(default=0, init=False)
    _busy: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.service_time_s <= 0:
            raise ValueError(
                f"service_time_s must be positive, got {self.service_time_s}"
            )
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.degraded_service_time_s is None:
            self.degraded_service_time_s = self.service_time_s / 10.0
        elif self.degraded_service_time_s <= 0:
            raise ValueError(
                f"degraded_service_time_s must be positive, got "
                f"{self.degraded_service_time_s}"
            )


@dataclass
class IngestReport:
    """Outcome of one simulated run.

    ``indexed``/``final_backlog`` are snapshotted at the simulation
    horizon, *before* the settle drain — documents drained afterwards
    arrived too late to be classified inside the run and are reported
    separately as ``drained`` (counting them into the backlog would
    penalize the classifier for work it was never offered).
    """

    duration_s: float
    produced: int
    relay_received: int
    relay_dropped: int
    indexed: int
    classified: int
    final_backlog: int
    #: (sim time, classifier backlog) samples
    backlog_timeline: list[tuple[float, int]]
    #: messages flushed to the store by the post-horizon settle drain
    drained: int = 0
    #: documents labelled by the cheap path while degraded
    classified_degraded: int = 0
    #: degraded-mode enter+exit transitions during the run
    degrade_transitions: int = 0
    #: broker-mode counters (zero when the run is push-mode)
    broker_published: int = 0
    broker_publish_refused: int = 0
    broker_polled: int = 0
    broker_lag: int = 0
    broker_commits_lost: int = 0
    broker_partition_stalls: int = 0
    broker_partitions: int = 0
    #: control-plane counters (zero when no controller is attached)
    control_ticks: int = 0
    control_actuations: int = 0
    control_flips: int = 0
    control_worker_seconds: float = 0.0
    brownout_level: int = 0
    brownout_changes: int = 0
    shed_messages: int = 0

    @property
    def keeping_up(self) -> bool:
        """True when the classifier's backlog stayed bounded (ends with
        less than one service-burst of work outstanding)."""
        if not self.backlog_timeline:
            return True
        peak = max(b for _t, b in self.backlog_timeline)
        return self.final_backlog <= max(10, peak * 0.1)


class TivanCluster:
    """The end-to-end collection pipeline.

    Parameters
    ----------
    n_shards:
        Store shards (paper: 6 OpenSearch data nodes).
    flush_interval_s, batch_size, buffer_limit:
        Fluentd forwarder tuning.
    overflow, flush_retry_limit:
        Forwarder resilience knobs (see :class:`FluentdForwarder`).
    degrade_backlog:
        Classifier backlog at which the cluster sheds load: the stage
        switches to its ``cheap_classify_batch`` path until the backlog
        recovers.  ``None`` (default) disables degraded mode.
    recover_backlog:
        Backlog at which a degraded cluster returns to the full model
        path; defaults to ``degrade_backlog // 2`` (hysteresis, so the
        mode cannot flap on every tick).
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`, armed on the
        forwarder's ``fluentd.flush`` site.
    journal:
        Optional :class:`repro.durability.StreamJournal` making the run
        durable: every forwarder transition is WAL-logged with the
        message's trace position as identity, and :meth:`run` writes
        periodic checkpoints.  Durable clusters are normally built via
        :func:`repro.durability.resume_simulation`, not directly.
    checkpoint_every_s:
        Simulated seconds between checkpoints (requires ``journal``);
        ``None`` disables periodic checkpoints.
    store_nodes:
        When set, the cluster indexes through a
        :class:`~repro.replication.ReplicatedLogStore` over this many
        nodes instead of a single in-process :class:`LogStore`.  The
        fault injector's ``store.*`` sites then act on the replicated
        store, and quorum-unavailable flushes fail into the forwarder's
        retry/overflow/DLQ machinery like any other failed flush.
    store_replicas:
        Copies per shard beyond the primary (replicated store only).
    write_quorum, read_quorum:
        W and R for the replicated store; default to majority.
    via_broker:
        Route the relay through a :class:`~repro.ingest.broker.LogBroker`
        instead of pushing straight into the forwarder: the relay
        *publishes* to per-host partitions and the forwarder(s) become
        consumer-group members polling at their own pace.  Backpressure
        is then broker lag, not relay drops.
    broker_partitions:
        Hash the hostname onto this many partitions instead of the
        per-host layout (requires ``via_broker``; incompatible with
        ``journal`` — only the per-host layout gives offsets that are a
        pure function of the trace, which is what makes them durable
        identities across crash and resume).
    n_consumers:
        Consumer-group members sharing the partitions (requires
        ``via_broker``).  Durable runs require exactly one — the
        journal models a single buffer.
    trace_sample:
        Fraction of messages head-sampled into a cross-hop trace
        (relay → broker → consumer → store → WAL).  Sampling is keyed
        by the message's trace position under ``trace_seed``, so a
        resumed run re-traces exactly the same messages and their
        trace IDs match across the crash.
    trace_seed:
        Seed for the deterministic sampling/ID derivation.
    """

    def __init__(
        self,
        *,
        n_shards: int = 6,
        flush_interval_s: float = 1.0,
        batch_size: int = 1000,
        buffer_limit: int = 100_000,
        overflow: str = "block",
        flush_retry_limit: int | None = None,
        degrade_backlog: int | None = None,
        recover_backlog: int | None = None,
        fault_injector=None,
        journal=None,
        checkpoint_every_s: float | None = None,
        store_nodes: int | None = None,
        store_replicas: int = 1,
        write_quorum: int | None = None,
        read_quorum: int | None = None,
        via_broker: bool = False,
        broker_partitions: int | None = None,
        n_consumers: int = 1,
        trace_sample: float = 0.0,
        trace_seed: int = 0,
    ) -> None:
        if degrade_backlog is not None and degrade_backlog < 1:
            raise ValueError(
                f"degrade_backlog must be >= 1, got {degrade_backlog}"
            )
        if recover_backlog is None:
            recover_backlog = (degrade_backlog // 2) if degrade_backlog else 0
        elif degrade_backlog is None:
            raise ValueError("recover_backlog requires degrade_backlog")
        elif not 0 <= recover_backlog < degrade_backlog:
            raise ValueError(
                f"recover_backlog must be in [0, degrade_backlog), got "
                f"{recover_backlog} with degrade_backlog={degrade_backlog}"
            )
        if checkpoint_every_s is not None and checkpoint_every_s <= 0:
            raise ValueError(
                f"checkpoint_every_s must be positive, got {checkpoint_every_s}"
            )
        if n_consumers < 1:
            raise ValueError(f"n_consumers must be >= 1, got {n_consumers}")
        if not via_broker:
            if broker_partitions is not None:
                raise ValueError("broker_partitions requires via_broker")
            if n_consumers != 1:
                raise ValueError("n_consumers > 1 requires via_broker")
        elif journal is not None:
            # durable identities are per-host trace ordinals; only the
            # host partitioner keeps partition appends monotonic under
            # the resume clock clamp, and the journal models one buffer
            if broker_partitions is not None:
                raise ValueError(
                    "broker_partitions is incompatible with journal: durable "
                    "broker runs require the per-host partition layout"
                )
            if n_consumers != 1:
                raise ValueError(
                    "durable broker runs require exactly one consumer, "
                    f"got n_consumers={n_consumers}"
                )
        self.engine = EventEngine()
        if store_nodes is not None:
            from repro.replication import ReplicatedLogStore

            self.store = ReplicatedLogStore(
                n_nodes=store_nodes,
                n_shards=n_shards,
                n_replicas=store_replicas,
                write_quorum=write_quorum,
                read_quorum=read_quorum,
                fault_injector=fault_injector,
                clock=lambda: self.engine.now,
            )
        else:
            self.store = LogStore(n_shards=n_shards)
        self.journal = journal
        self.checkpoint_every_s = checkpoint_every_s
        self.sampler = None
        if trace_sample > 0.0:
            from repro.obs.propagation import TraceSampler

            self.sampler = TraceSampler(
                trace_sample, seed=trace_seed, clock=lambda: self.engine.now
            )
        self.broker = None
        if via_broker:
            from repro.ingest.broker import LogBroker

            self.broker = LogBroker(
                n_partitions=broker_partitions,
                fault_injector=fault_injector,
                clock=lambda: self.engine.now,
            )
        self.consumers: list[FluentdForwarder] = [
            FluentdForwarder(
                engine=self.engine,
                sink=self.store.bulk_index,
                flush_interval_s=flush_interval_s,
                batch_size=batch_size,
                buffer_limit=buffer_limit,
                overflow=overflow,
                flush_retry_limit=flush_retry_limit,
                fault_injector=fault_injector,
                # the journal models a single buffer; with several
                # consumers only the first may be durable (validated
                # above: durable runs get exactly one)
                journal=journal if i == 0 else None,
                broker=self.broker,
                consumer_member=f"fluentd-{i:02d}",
            )
            for i in range(n_consumers)
        ]
        #: the primary consumer — push-mode code paths address only this
        self.forwarder = self.consumers[0]
        self.relay = SyslogRelay(
            downstream=self._publish if via_broker else self._offer
        )
        self.daemons: dict[str, SyslogDaemon] = {}
        self._event_idx: dict[int, int] = {}
        #: durable broker mode: trace position → (partition key, stable
        #: per-host offset), computed over the *full* trace in load_events
        self._event_pub: dict[int, tuple[str, int]] = {}
        self.degrade_backlog = degrade_backlog
        self.recover_backlog = recover_backlog
        self.degraded = False
        self.n_degrade_transitions = 0
        self._stage: ClassifierStage | None = None
        self._backlog_samples: list[tuple[float, int]] = []
        #: optional closed-loop controller (see :meth:`attach_controller`)
        self.controller = None
        self._degraded_override = False
        self._shed_fraction = 0.0
        self._shed_acc = 0.0
        self.n_shed = 0
        self._stage_batch_baseline: int | None = None

    def attach_classifier(self, stage: ClassifierStage) -> None:
        """Attach the classification stage before :meth:`run`."""
        self._stage = stage

    def attach_controller(self, policy=None, *, registry=None):
        """Attach the closed-loop overload controller before :meth:`run`.

        Binds the policy's levers (default:
        :func:`repro.control.default_policy`) onto this cluster's live
        objects and wires the brownout ladder into
        :meth:`apply_brownout`.  Call after :meth:`attach_classifier`
        when the policy drives stage levers.  Returns the controller.
        """
        from repro.control import controller_for_cluster, default_policy

        if policy is None:
            policy = default_policy()
        self.controller = controller_for_cluster(
            self, policy, registry=registry
        )
        return self.controller

    # -- brownout ladder actions ---------------------------------------

    def set_degraded_override(self, forced: bool) -> None:
        """Force (or release) the cheap-classify path regardless of the
        backlog hysteresis — brownout rung L2."""
        self._degraded_override = bool(forced)

    def set_degrade_backlog(self, value: float) -> None:
        """Retune the degrade threshold (control lever); the recover
        threshold follows at half to preserve the hysteresis gap."""
        value = max(1, int(round(value)))
        self.degrade_backlog = value
        self.recover_backlog = value // 2

    def apply_brownout(self, old_level: int, new_level: int) -> None:
        """Apply one brownout ladder transition (rungs are absolute).

        L1 shrinks the stage drain batch to a quarter of its baseline
        (restored on full recovery), L2 forces the cheap-classify path,
        L3 sheds a deterministic fraction of arrivals at accept.  Each
        rung includes the ones below it, and climbing back releases
        mitigations in reverse order.
        """
        stage = self._stage
        if stage is not None:
            if new_level >= 1:
                if self._stage_batch_baseline is None:
                    self._stage_batch_baseline = stage.batch_size
                stage.batch_size = max(1, self._stage_batch_baseline // 4)
            elif self._stage_batch_baseline is not None:
                stage.batch_size = self._stage_batch_baseline
                self._stage_batch_baseline = None
        self.set_degraded_override(new_level >= 2)
        if new_level >= 3:
            fraction = 0.5
            if (
                self.controller is not None
                and self.controller.policy.brownout is not None
            ):
                fraction = self.controller.policy.brownout.shed_fraction
            self._shed_fraction = fraction
        else:
            self._shed_fraction = 0.0
            self._shed_acc = 0.0

    def _shed_at_accept(self) -> bool:
        """Brownout L3's deterministic fractional drop decision.

        An accumulator spreads ``shed_fraction`` evenly over arrivals
        (no RNG — replayable), counting each drop into
        ``repro_control_shed_total{reason="brownout"}``.
        """
        if self._shed_fraction <= 0.0:
            return False
        self._shed_acc += self._shed_fraction
        if self._shed_acc >= 1.0:
            self._shed_acc -= 1.0
            self.n_shed += 1
            from repro.obs import wellknown

            wellknown.control_shed().inc(reason="brownout")
            return True
        return False

    def load_events(self, events: Sequence[StreamEvent], *, skip=()) -> None:
        """Create daemons for every host in the trace and schedule it.

        ``skip`` holds trace positions to leave unscheduled — on a
        durable resume these are the identities the journal already
        saw, so a message is never offered twice across restarts.
        ``produced`` still counts the full trace (conservation is
        stated over every generated message).
        """
        skip = set(skip)
        if self.broker is not None and self.journal is not None:
            # stable offsets: event i's offset is its per-host ordinal
            # over the FULL trace (skipped events included), so a
            # sparse resume republishes every event at the offset it
            # had in its first life and committed offsets stay valid
            ordinals: dict[str, int] = {}
            for i, e in enumerate(events):
                h = e.message.hostname
                self._event_pub[i] = (h, ordinals.get(h, 0))
                ordinals[h] = ordinals.get(h, 0) + 1
        messages = []
        for i, e in enumerate(events):
            if i in skip:
                continue
            self._event_idx[id(e.message)] = i
            messages.append(e.message)
        hosts = sorted({m.hostname for m in messages})
        for h in hosts:
            self.daemons[h] = SyslogDaemon(hostname=h, relay=self.relay)
        for h, d in self.daemons.items():
            d.load_trace(self.engine, messages)
        self._n_produced = len(events)

    def run(self, duration_s: float, *, sample_every_s: float = 5.0) -> IngestReport:
        """Run the simulation and return the report.

        On a resumed durable run the restored clock may already be past
        ``duration_s``; the horizon is clamped forward so the clock
        never moves backwards.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        horizon = max(duration_s, self.engine.now)
        for consumer in self.consumers:
            consumer.start()
        if self._stage is not None:
            self.engine.schedule(0.0, self._classifier_tick)
        self._schedule_sampler(sample_every_s, horizon)
        if self.controller is not None:
            self._schedule_controller(horizon)
        if self.journal is not None and self.checkpoint_every_s is not None:
            self._schedule_checkpoint(horizon)
        self.engine.run(until=horizon)
        # snapshot at the horizon first: the settle drain below indexes
        # messages the classifier was never offered during the run, and
        # counting them into final_backlog would flip keeping_up
        indexed_at_horizon = len(self.store)
        classified = self._stage.n_done if self._stage else 0
        # settle: drain remaining buffered messages into the index
        if self.broker is not None:
            drained = self._settle_broker()
        else:
            drained = self.forwarder.drain() if self.forwarder.buffered else 0
        if self.journal is not None:
            self.write_checkpoint()
        report = IngestReport(
            duration_s=duration_s,
            produced=getattr(self, "_n_produced", 0),
            relay_received=self.relay.n_received,
            relay_dropped=self.relay.n_dropped,
            indexed=indexed_at_horizon,
            classified=classified,
            final_backlog=indexed_at_horizon - classified,
            backlog_timeline=list(self._backlog_samples),
            drained=drained,
            classified_degraded=self._stage.n_degraded if self._stage else 0,
            degrade_transitions=self.n_degrade_transitions,
        )
        if self.controller is not None:
            report.control_ticks = self.controller.n_ticks
            report.control_actuations = self.controller.total_actuations
            report.control_flips = self.controller.total_flips
            report.control_worker_seconds = self.controller.worker_seconds
            if self.controller.brownout is not None:
                report.brownout_level = self.controller.brownout.level
                report.brownout_changes = self.controller.brownout.n_changes
            report.shed_messages = self.n_shed
        if self.broker is not None:
            bs = self.broker.stats
            report.broker_published = bs.published
            report.broker_publish_refused = bs.publish_refused
            report.broker_polled = bs.polled
            report.broker_lag = self.broker.lag(self.forwarder.consumer_group)
            report.broker_commits_lost = bs.commits_lost
            report.broker_partition_stalls = bs.stall_events
            report.broker_partitions = len(self.broker.partitions)
        return report

    def _settle_broker(self) -> int:
        """Post-horizon settle for broker mode.

        Alternate poll and drain across every consumer until neither
        moves: records still in the broker at the horizon (lag) are
        consumed and flushed, exactly as push mode drains its buffer.
        A stalled partition ends the loop with its lag intact — the
        report carries it as ``broker_lag``.
        """
        drained = 0
        while True:
            polled = 0
            for consumer in self.consumers:
                polled += consumer.poll_broker()
                if consumer.buffered:
                    drained += consumer.drain()
            if polled == 0 and all(not c.buffered for c in self.consumers):
                return drained

    def write_checkpoint(self):
        """Write one atomic checkpoint of this durable run's state."""
        from repro.durability.recovery import checkpoint_cluster

        return checkpoint_cluster(self)

    # -- internals ---------------------------------------------------------

    def _begin_trace(self, message, idx):
        """Head-sample at relay accept, keyed by trace position.

        The key is the event's position in the deterministic trace, so
        a resumed process (same seed) re-derives the same decisions and
        the same trace IDs — continuity across SIGKILL.
        """
        if (
            self.sampler is None
            or idx is None
            or not self.sampler.sample_ordinal(idx)
        ):
            return None
        return self.sampler.begin(idx, host=message.hostname)

    def _offer(self, message) -> bool:
        """Relay downstream: forward with the message's trace identity."""
        if self._shed_at_accept():
            return False
        idx = self._event_idx.get(id(message))
        ctx = self._begin_trace(message, idx)
        if self.journal is None:
            return self.forwarder.offer(message, ctx=ctx)
        return self.forwarder.offer(message, event_idx=idx, ctx=ctx)

    def _publish(self, message) -> bool:
        """Relay downstream, broker mode: publish to the message's partition.

        Durable runs publish at the event's stable per-host offset; a
        refused publish (stalled partition) is journaled as a reject —
        a recorded disposition, never republished on resume.
        """
        if self._shed_at_accept():
            return False
        idx = self._event_idx.get(id(message))
        ctx = self._begin_trace(message, idx)
        if self.journal is None:
            return self.broker.publish(message, ctx=ctx) is not None
        key, offset = self._event_pub[idx]
        record = self.broker.publish(
            message, key=key, ident=idx, offset=offset, ctx=ctx
        )
        if record is None:
            self.journal.reject(idx)
            return False
        return True

    def _schedule_checkpoint(self, horizon: float) -> None:
        every = self.checkpoint_every_s

        def tick() -> None:
            self.write_checkpoint()
            if self.engine.now + every <= horizon:
                self.engine.schedule(every, tick)

        self.engine.schedule(every, tick)

    def _schedule_controller(self, horizon: float) -> None:
        """Drive the controller on the simulation clock.

        The classifier-backlog gauge is refreshed immediately before
        each controller tick so the control decision never acts on a
        sampler-stale reading.  On durable runs every tick's complete
        decision state is journaled as a ``control`` WAL record right
        after it is taken — a SIGKILL between ticks resumes with the
        setpoints, ladder rung, and hysteresis the dead process held.
        """
        from repro.obs import wellknown

        controller = self.controller
        every = controller.policy.tick_every_s
        backlog_gauge = wellknown.classifier_backlog(controller.reader.registry)

        def tick() -> None:
            done = self._stage.n_done if self._stage else 0
            backlog_gauge.set(len(self.store) - done)
            controller.tick(self.engine.now)
            if self.journal is not None:
                self.journal.control_state(controller.export_state())
            if self.engine.now + every <= horizon:
                self.engine.schedule(every, tick)

        self.engine.schedule(every, tick)

    def _schedule_sampler(self, every: float, horizon: float) -> None:
        if every <= 0:
            raise ValueError(f"sample_every_s must be positive, got {every}")
        from repro.obs import wellknown

        backlog_gauge = wellknown.classifier_backlog()

        def sample() -> None:
            done = self._stage.n_done if self._stage else 0
            backlog = len(self.store) - done
            self._backlog_samples.append((self.engine.now, backlog))
            backlog_gauge.set(backlog)
            if self.engine.now + every <= horizon:
                self.engine.schedule(every, sample)

        self.engine.schedule(every, sample)

    def _update_degraded(self, backlog: int) -> None:
        """Hysteresis between the full and cheap classification paths.

        Enter degraded mode when the backlog crosses
        ``degrade_backlog``; leave only once it has fallen back to
        ``recover_backlog``, so the mode cannot flap on every tick.
        Transitions are counted here and mirrored into the
        ``repro_stream_degraded_*`` families.
        """
        if self.degrade_backlog is None:
            return
        from repro.obs import wellknown

        if not self.degraded and backlog >= self.degrade_backlog:
            self.degraded = True
            self.n_degrade_transitions += 1
            wellknown.degraded_mode().set(1)
            wellknown.degraded_transitions().inc(direction="enter")
        elif self.degraded and backlog <= self.recover_backlog:
            self.degraded = False
            self.n_degrade_transitions += 1
            wellknown.degraded_mode().set(0)
            wellknown.degraded_transitions().inc(direction="exit")

    def _classifier_tick(self) -> None:
        stage = self._stage
        assert stage is not None
        pending = len(self.store) - stage.n_done
        self._update_degraded(pending)
        if pending > 0:
            take = min(pending, stage.batch_size)
            try:
                docs = [self.store.get(stage.n_done + i) for i in range(take)]
            except QuorumError:
                # replicated store below read quorum: stall the stage
                # and retry once the fault window may have passed
                self.engine.schedule(
                    max(stage.service_time_s, 0.05), self._classifier_tick
                )
                return
            shed = (
                (self.degraded or self._degraded_override)
                and stage.cheap_classify_batch is not None
            )
            if shed:
                categories = stage.cheap_classify_batch(
                    [d.message.text for d in docs]
                )
                for doc, cat in zip(docs, categories):
                    self.store.set_category(doc.doc_id, cat)
                stage.n_degraded += take
                from repro.obs import wellknown

                wellknown.degraded_messages().inc(take)
            elif stage.classify_batch is not None:
                categories = stage.classify_batch([d.message.text for d in docs])
                for doc, cat in zip(docs, categories):
                    self.store.set_category(doc.doc_id, cat)
            elif stage.classify is not None:
                for doc in docs:
                    self.store.set_category(
                        doc.doc_id, stage.classify(doc.message.text)
                    )
            stage.n_done += take
            service = (
                stage.degraded_service_time_s if shed else stage.service_time_s
            )
            self.engine.schedule(
                service * take / max(1, stage.n_workers),
                self._classifier_tick,
            )
        else:
            # idle poll: wake up when new documents may have arrived
            self.engine.schedule(
                max(stage.service_time_s, 0.05), self._classifier_tick
            )
