"""Storage capacity planning for the collection cluster (§4.2).

The paper sizes Tivan concretely: 8 Dell R530 servers, "128GB of DRAM
and 4TB of storage per Opensearch node", storing "over thirty million
log records a month".  :class:`CapacityPlanner` turns a measured
per-record footprint (taken from a sample index) into the questions an
operator actually asks: how many months of retention fit, what ingest
rate saturates the cluster, and when does the current growth rate fill
the disks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stream.opensearch import LogStore

__all__ = ["ClusterSpec", "CapacityPlan", "CapacityPlanner", "PAPER_CLUSTER"]


@dataclass(frozen=True)
class ClusterSpec:
    """Hardware of the storage cluster.

    Attributes
    ----------
    n_data_nodes:
        OpenSearch data nodes.
    storage_per_node_tb:
        Usable storage per node.
    replicas:
        Extra copies of each record (1 replica = 2 copies total).
    fill_ceiling:
        Usable fraction of raw storage (watermarks, merges, headroom).
    """

    n_data_nodes: int = 6
    storage_per_node_tb: float = 4.0
    replicas: int = 1
    fill_ceiling: float = 0.75

    @property
    def usable_bytes(self) -> float:
        raw = self.n_data_nodes * self.storage_per_node_tb * 1e12
        return raw * self.fill_ceiling / (1 + self.replicas)


#: The paper's deployment (§4.2.1: 8 servers, 6 running OpenSearch data
#: roles, 4 TB each).
PAPER_CLUSTER = ClusterSpec(n_data_nodes=6, storage_per_node_tb=4.0)


@dataclass(frozen=True)
class CapacityPlan:
    """Capacity answers for one (cluster, workload) pair."""

    bytes_per_record: float
    records_per_month: float
    monthly_bytes: float
    retention_months: float
    max_sustainable_records_per_month: float  # at the target retention

    def supports(self, records_per_month: float, *, months: float) -> bool:
        """Can the cluster retain ``records_per_month`` for ``months``?"""
        return records_per_month * months * self.bytes_per_record <= (
            self.retention_months * self.monthly_bytes
        ) or records_per_month * months * self.bytes_per_record <= (
            self.max_sustainable_records_per_month
            * months
            * self.bytes_per_record
        )


@dataclass
class CapacityPlanner:
    """Derive capacity answers from a sample index.

    Parameters
    ----------
    cluster:
        Hardware spec (defaults to the paper's).
    overhead_factor:
        Index-structure bytes per raw message byte beyond the measured
        postings (doc values, norms, stored fields); calibrated to the
        ~2-3× blowup real Lucene indices show over raw text.
    """

    cluster: ClusterSpec = PAPER_CLUSTER
    overhead_factor: float = 2.5

    def bytes_per_record(self, sample: LogStore) -> float:
        """Estimate the on-disk footprint of one record from a sample.

        Uses the sample's raw message bytes plus measured postings,
        scaled by the Lucene overhead factor.

        Raises
        ------
        ValueError
            On an empty sample.
        """
        n = len(sample)
        if n == 0:
            raise ValueError("cannot size records from an empty sample store")
        raw = sum(
            len(sample.get(i).message.text.encode())
            + len(sample.get(i).message.hostname)
            + len(sample.get(i).message.app)
            + 16  # timestamp + severity + ids
            for i in range(n)
        )
        postings = sample.index_stats()["postings"] * 8  # ~8 bytes/posting
        return (raw + postings) / n * self.overhead_factor

    def plan(
        self,
        sample: LogStore,
        *,
        records_per_month: float,
        target_retention_months: float = 12.0,
    ) -> CapacityPlan:
        """Answer the capacity questions for a given ingest rate."""
        if records_per_month <= 0:
            raise ValueError(
                f"records_per_month must be positive, got {records_per_month}"
            )
        bpr = self.bytes_per_record(sample)
        monthly = records_per_month * bpr
        usable = self.cluster.usable_bytes
        return CapacityPlan(
            bytes_per_record=bpr,
            records_per_month=records_per_month,
            monthly_bytes=monthly,
            retention_months=usable / monthly,
            max_sustainable_records_per_month=(
                usable / target_retention_months / bpr
            ),
        )
