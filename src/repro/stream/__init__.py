"""Discrete-event simulation of the Tivan log-collection pipeline (§4.2).

The paper's infrastructure forwards every node's syslog stream to a
central relay, through Fluentd into an OpenSearch cluster, visualized
with Grafana.  This package rebuilds that path as a discrete-event
simulation with real data structures:

- :mod:`repro.stream.events` — the event engine (heap scheduler),
- :mod:`repro.stream.syslogd` — node daemons and the central relay,
- :mod:`repro.stream.fluentd` — the forwarder: buffering, batching,
  flush intervals, retry with backoff, bounded-queue backpressure,
- :mod:`repro.stream.opensearch` — an indexed document store with a
  real inverted index: term and phrase queries, time-range filters,
  date-histogram and terms aggregations, round-robin shards,
- :mod:`repro.stream.tivan` — the assembled cluster, plus classifier
  attachment so the throughput experiments (can classification keep up
  with >1M messages/hour? §5) run end-to-end.
"""

from repro.stream.events import EventEngine, Event
from repro.stream.syslogd import SyslogDaemon, SyslogRelay
from repro.stream.fluentd import FluentdForwarder, ForwarderStats
from repro.stream.opensearch import (
    LogStore,
    LogDocument,
    QueryResult,
    DateHistogramBucket,
)
from repro.stream.tivan import TivanCluster, IngestReport, ClassifierStage
from repro.stream.capacity import CapacityPlanner, CapacityPlan, ClusterSpec, PAPER_CLUSTER

__all__ = [
    "EventEngine",
    "Event",
    "SyslogDaemon",
    "SyslogRelay",
    "FluentdForwarder",
    "ForwarderStats",
    "LogStore",
    "LogDocument",
    "QueryResult",
    "DateHistogramBucket",
    "TivanCluster",
    "IngestReport",
    "ClassifierStage",
    "CapacityPlanner",
    "CapacityPlan",
    "ClusterSpec",
    "PAPER_CLUSTER",
]
