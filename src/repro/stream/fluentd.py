"""The Fluentd forwarder: buffer, batch, flush, retry, backpressure.

§4.2.2: "Data collection, filtering, and translation is implemented
using Fluentd running on a dedicated server."  The forwarder models
Fluentd's buffered output plugin: messages accumulate in a bounded
buffer; a periodic flush writes a batch to the store; failed flushes
retry with exponential backoff; a full buffer rejects new messages
(which the relay counts as drops).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.message import SyslogMessage
from repro.stream.events import EventEngine

__all__ = ["FluentdForwarder", "ForwarderStats"]


@dataclass
class ForwarderStats:
    """Cumulative forwarder counters."""

    accepted: int = 0
    rejected: int = 0
    flushed_batches: int = 0
    flushed_messages: int = 0
    failed_flushes: int = 0
    max_buffer_seen: int = 0


@dataclass
class FluentdForwarder:
    """Buffered batch forwarder.

    Parameters
    ----------
    engine:
        The event engine (flushes are scheduled on it).
    sink:
        Batch write target; returns True on success.  (Normally
        :meth:`repro.stream.opensearch.LogStore.bulk_index`.)
    flush_interval_s:
        Seconds between scheduled flushes.
    batch_size:
        Max messages per flush call.
    buffer_limit:
        Max buffered messages before backpressure.
    retry_base_s, retry_max_s:
        Exponential-backoff bounds after a failed flush.
    """

    engine: EventEngine
    sink: Callable[[Sequence[SyslogMessage]], bool]
    flush_interval_s: float = 1.0
    batch_size: int = 500
    buffer_limit: int = 50_000
    retry_base_s: float = 0.5
    retry_max_s: float = 30.0

    stats: ForwarderStats = field(default_factory=ForwarderStats)
    _buffer: list[SyslogMessage] = field(default_factory=list, init=False, repr=False)
    _retry_delay: float = field(default=0.0, init=False, repr=False)
    _started: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        # resolved once — offer() runs per message, so the registry
        # lookup must not sit on that path
        from repro.obs import wellknown

        self._m_buffer_depth = wellknown.fluentd_buffer_depth()
        self._m_flush_size = wellknown.fluentd_flush_size()
        self._m_flushed = wellknown.fluentd_flushed_messages()

    def start(self) -> None:
        """Begin the periodic flush cycle."""
        if not self._started:
            self._started = True
            self.engine.schedule(self.flush_interval_s, self._flush_tick)

    def offer(self, message: SyslogMessage) -> bool:
        """Accept a message into the buffer; False when full."""
        if len(self._buffer) >= self.buffer_limit:
            self.stats.rejected += 1
            return False
        self._buffer.append(message)
        self.stats.accepted += 1
        self.stats.max_buffer_seen = max(self.stats.max_buffer_seen, len(self._buffer))
        self._m_buffer_depth.set(len(self._buffer))
        return True

    def _flush_tick(self) -> None:
        self.flush()
        delay = self._retry_delay if self._retry_delay > 0 else self.flush_interval_s
        self.engine.schedule(delay, self._flush_tick)

    def flush(self) -> int:
        """Write up to ``batch_size`` buffered messages; returns count."""
        if not self._buffer:
            self._retry_delay = 0.0
            return 0
        batch = self._buffer[: self.batch_size]
        if self.sink(batch):
            del self._buffer[: len(batch)]
            self.stats.flushed_batches += 1
            self.stats.flushed_messages += len(batch)
            self._retry_delay = 0.0
            self._m_buffer_depth.set(len(self._buffer))
            self._m_flush_size.set(len(batch))
            self._m_flushed.inc(len(batch))
            return len(batch)
        self.stats.failed_flushes += 1
        self._retry_delay = min(
            self.retry_base_s * 2 ** min(self.stats.failed_flushes, 10),
            self.retry_max_s,
        )
        return 0

    def drain(
        self, max_rounds: int = 1_000_000, max_consecutive_failures: int = 50
    ) -> int:
        """Flush repeatedly until the buffer empties; returns flushed.

        Transient sink failures are retried; the drain only gives up
        after ``max_consecutive_failures`` failed flushes in a row.

        Raises
        ------
        RuntimeError
            If the sink keeps failing and the buffer cannot drain.
        """
        total = 0
        consecutive = 0
        for _ in range(max_rounds):
            if not self._buffer:
                return total
            n = self.flush()
            if n == 0:
                consecutive += 1
                if consecutive >= max_consecutive_failures:
                    raise RuntimeError(
                        f"drain stalled with {len(self._buffer)} messages "
                        f"buffered after {consecutive} consecutive failures"
                    )
            else:
                consecutive = 0
                total += n
        raise RuntimeError("drain exceeded max_rounds")

    @property
    def buffered(self) -> int:
        return len(self._buffer)
