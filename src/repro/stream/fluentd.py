"""The Fluentd forwarder: buffer, batch, flush, retry, backpressure.

§4.2.2: "Data collection, filtering, and translation is implemented
using Fluentd running on a dedicated server."  The forwarder models
Fluentd's buffered output plugin: messages accumulate in a bounded
buffer; a periodic flush writes a batch to the store; failed flushes
retry with exponential backoff under an optional bounded budget; a
full buffer applies the configured overflow policy (reject, evict the
oldest, or dead-letter the newcomer).

Flushes are all-or-nothing per batch: the buffer is mutated only after
the sink accepted the whole batch, and a sink that *raises* is treated
exactly like one that returns False — counted as a failed flush, batch
kept for retry.  Combined with the dead-letter captures, every message
offered is accounted for: delivered, rejected-and-counted,
evicted-and-counted, or parked in :attr:`dead_letters` — never lost
silently.

Broker mode
-----------
Given a :class:`~repro.ingest.broker.LogBroker`, the forwarder becomes
a *consumer-group member* instead of a push target: each flush tick it
polls its assigned partitions into the buffer (at most the buffer's
free room — backpressure is expressed as broker lag, so the offer-side
overflow policies never fire), and each successful flush *commits* the
batch's high-water offsets back to the broker.  An abandoned batch
commits too — the poison batch is dead-lettered and the group moves
past it rather than re-polling it forever.  The buffering/overflow/DLQ
semantics of push mode are thereby re-expressed as offset lag plus a
commit policy; a crashed member that re-polls from its committed
offsets re-delivers only uncommitted messages (at-least-once).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.message import SyslogMessage
from repro.faults.dlq import DeadLetterQueue
from repro.faults.plan import SITE_FLUSH_FAIL
from repro.obs.propagation import carrying, record_hop
from repro.stream.events import EventEngine

__all__ = ["FluentdForwarder", "ForwarderStats", "OVERFLOW_POLICIES"]

#: dead-letter sites used by the forwarder
OVERFLOW_SITE = "fluentd.overflow"
ABANDON_SITE = "fluentd.flush_abandoned"

#: valid values for :attr:`FluentdForwarder.overflow`
OVERFLOW_POLICIES = ("block", "drop_oldest", "dead_letter")


@dataclass
class ForwarderStats:
    """Cumulative forwarder counters.

    Conservation invariants (checked by the chaos suite)::

        offered  == accepted + rejected + dead_lettered
        accepted == flushed_messages + buffered + evicted
                    + abandoned_messages
    """

    accepted: int = 0
    rejected: int = 0
    flushed_batches: int = 0
    flushed_messages: int = 0
    failed_flushes: int = 0
    max_buffer_seen: int = 0
    #: oldest messages evicted by the ``drop_oldest`` overflow policy
    evicted: int = 0
    #: overflow newcomers captured by the ``dead_letter`` policy
    dead_lettered: int = 0
    #: flush batches given up on after ``flush_retry_limit`` failures
    abandoned_flushes: int = 0
    abandoned_messages: int = 0


@dataclass
class FluentdForwarder:
    """Buffered batch forwarder.

    Parameters
    ----------
    engine:
        The event engine (flushes are scheduled on it).
    sink:
        Batch write target; returns True on success.  (Normally
        :meth:`repro.stream.opensearch.LogStore.bulk_index`.)  A sink
        that raises is treated as a failed flush, not a crash.
    flush_interval_s:
        Seconds between scheduled flushes.
    batch_size:
        Max messages per flush call.
    buffer_limit:
        Max buffered messages before the overflow policy applies.
    retry_base_s, retry_max_s:
        Exponential-backoff bounds after a failed flush (doubling with
        each *consecutive* failure; any success resets the schedule).
    overflow:
        Policy when the buffer is full at :meth:`offer` time —
        ``"block"`` rejects the newcomer (the relay counts it as a
        drop), ``"drop_oldest"`` evicts the oldest buffered message to
        make room, ``"dead_letter"`` parks the newcomer in
        :attr:`dead_letters` with an overflow reason.
    flush_retry_limit:
        Bounded retry budget per stuck head batch: after this many
        consecutive failed flushes the head batch is abandoned to
        :attr:`dead_letters` so the buffer can make progress.  ``None``
        (default) retries forever, matching Fluentd's retry_forever.
    sink_timeout_s:
        Wall-clock deadline per sink call.  A sink that *hangs* (rather
        than raising) is abandoned after this many real seconds and the
        flush counts as failed — the batch stays buffered for retry and
        :meth:`drain` keeps its progress guarantee instead of stalling
        forever.  ``None`` (default) trusts the sink to return.
    dlq_max_entries:
        Cap on the forwarder's dead-letter queue; beyond it the oldest
        entry is evicted and counted (see
        :class:`~repro.faults.DeadLetterQueue`).  ``None`` is unbounded.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`; when armed at
        ``fluentd.flush`` it fails flushes before the sink is called,
        exercising the retry/abandon machinery deterministically.
    journal:
        Optional :class:`repro.durability.StreamJournal`.  When set,
        every buffer transition is logged to the WAL *before* the
        in-memory mutation (write-ahead), so recovery can rebuild the
        buffer, the delivered set, and the dead letters after a crash.
    broker:
        Optional :class:`~repro.ingest.broker.LogBroker`.  When set,
        the forwarder is a consumer-group member: it polls the broker
        into its buffer each flush tick and commits batch offsets on
        flush success (and on abandon).  See *Broker mode* above.
    consumer_group, consumer_member:
        Group and member names for broker mode.
    """

    engine: EventEngine
    sink: Callable[[Sequence[SyslogMessage]], bool]
    flush_interval_s: float = 1.0
    batch_size: int = 500
    buffer_limit: int = 50_000
    retry_base_s: float = 0.5
    retry_max_s: float = 30.0
    overflow: str = "block"
    flush_retry_limit: int | None = None
    sink_timeout_s: float | None = None
    dlq_max_entries: int | None = None
    fault_injector: object = None
    journal: object = None
    broker: object = None
    consumer_group: str = "fluentd"
    consumer_member: str = "member-0"
    #: trace/dwell clock; ``None`` means the engine's simulated now
    clock: Callable[[], float] | None = None

    stats: ForwarderStats = field(default_factory=ForwarderStats)
    #: overflow/abandon captures land here with their reason
    dead_letters: DeadLetterQueue = field(
        default_factory=DeadLetterQueue, init=False, repr=False
    )
    _buffer: list[SyslogMessage] = field(default_factory=list, init=False, repr=False)
    #: broker mode: (partition, offset) per buffered message, or None
    #: for entries that arrived via offer()/preload() (never committed)
    _offsets: list = field(default_factory=list, init=False, repr=False)
    #: per buffered message: (TraceContext, entered_s) for sampled
    #: messages, None otherwise — mirrors every _buffer mutation
    _ctxs: list = field(default_factory=list, init=False, repr=False)
    _retry_delay: float = field(default=0.0, init=False, repr=False)
    _consecutive_failures: int = field(default=0, init=False, repr=False)
    _started: bool = field(default=False, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"overflow must be one of {OVERFLOW_POLICIES}, "
                f"got {self.overflow!r}"
            )
        if self.flush_retry_limit is not None and self.flush_retry_limit < 1:
            raise ValueError(
                f"flush_retry_limit must be >= 1 or None, "
                f"got {self.flush_retry_limit}"
            )
        if self.sink_timeout_s is not None and self.sink_timeout_s <= 0:
            raise ValueError(
                f"sink_timeout_s must be positive or None, "
                f"got {self.sink_timeout_s}"
            )
        if self.dlq_max_entries is not None:
            self.dead_letters = DeadLetterQueue(
                max_entries=self.dlq_max_entries
            )
        # resolved once — offer() runs per message, so the registry
        # lookup must not sit on that path
        from repro.obs import wellknown

        self._m_buffer_depth = wellknown.fluentd_buffer_depth()
        self._m_flush_size = wellknown.fluentd_flush_size()
        self._m_flushed = wellknown.fluentd_flushed_messages()
        self._m_dropped = wellknown.fluentd_dropped()
        self._m_poll_to_flush = wellknown.poll_to_flush_seconds().labels()
        self._m_e2e = wellknown.e2e_latency_seconds().labels()
        if self.clock is None:
            self.clock = lambda: self.engine.now
        if self.broker is not None:
            self.broker.subscribe(self.consumer_group, self.consumer_member)

    def start(self) -> None:
        """Begin the periodic flush cycle."""
        if not self._started:
            self._started = True
            self.engine.schedule(self.flush_interval_s, self._flush_tick)

    def offer(
        self,
        message: SyslogMessage,
        *,
        event_idx: int | None = None,
        ctx=None,
    ) -> bool:
        """Accept a message into the buffer; False when rejected.

        A full buffer applies :attr:`overflow`: ``block`` returns False
        (caller counts the drop), ``drop_oldest`` evicts the oldest
        buffered message and accepts, ``dead_letter`` parks the
        newcomer and returns False — but counted, not lost.

        ``event_idx`` is the message's durable identity (its position
        in the deterministic trace), journaled with each transition so
        recovery can tell which messages were already offered.
        """
        if len(self._buffer) >= self.buffer_limit:
            if self.overflow == "drop_oldest":
                if self.journal is not None:
                    self.journal.evict_oldest()
                del self._buffer[0]
                if self._offsets:
                    del self._offsets[0]
                if self._ctxs:
                    del self._ctxs[0]
                self.stats.evicted += 1
                self._m_dropped.inc()
            elif self.overflow == "dead_letter":
                error = f"buffer full at {self.buffer_limit}"
                if self.journal is not None:
                    self.journal.dead_newcomer(
                        event_idx, message, OVERFLOW_SITE, error
                    )
                self.stats.dead_lettered += 1
                self.dead_letters.push(OVERFLOW_SITE, message, error)
                return False
            else:  # block
                if self.journal is not None:
                    self.journal.reject(event_idx)
                self.stats.rejected += 1
                return False
        if self.journal is not None:
            self.journal.accept(event_idx, message)
        self._buffer.append(message)
        if self.broker is not None:
            self._offsets.append(None)
        self._ctxs.append((ctx, self.clock()) if ctx is not None else None)
        self.stats.accepted += 1
        self.stats.max_buffer_seen = max(self.stats.max_buffer_seen, len(self._buffer))
        self._m_buffer_depth.set(len(self._buffer))
        return True

    def poll_broker(self, *, max_records: int | None = None) -> int:
        """Consumer-group intake: poll assigned partitions into the buffer.

        Polls at most the buffer's free room, so a slow consumer shows
        up as broker *lag*, never as buffer overflow — the offer-side
        overflow policies are idle in broker mode.  Each polled record
        is journaled as an accept under its durable identity
        (``record.ident``), exactly as an offered message would be.
        Returns the number of records taken.
        """
        if self.broker is None:
            return 0
        room = self.buffer_limit - len(self._buffer)
        if room <= 0:
            return 0
        if max_records is not None:
            room = min(room, max_records)
        records = self.broker.poll(
            self.consumer_group, self.consumer_member, max_records=room
        )
        now: float | None = None
        for rec in records:
            if self.journal is not None:
                self.journal.accept(rec.ident, rec.message)
            self._buffer.append(rec.message)
            self._offsets.append((rec.partition, rec.offset))
            if rec.ctx is not None:
                if now is None:
                    now = self.clock()
                self._ctxs.append((
                    record_hop(
                        rec.ctx, "broker.poll", now,
                        group=self.consumer_group, member=self.consumer_member,
                    ),
                    now,
                ))
            else:
                self._ctxs.append(None)
            self.stats.accepted += 1
        if records:
            self.stats.max_buffer_seen = max(
                self.stats.max_buffer_seen, len(self._buffer)
            )
            self._m_buffer_depth.set(len(self._buffer))
        return len(records)

    def _batch_offsets(self, n: int) -> dict:
        """Commit offsets for the head batch: partition → next offset."""
        out: dict = {}
        for entry in self._offsets[:n]:
            if entry is None:
                continue
            partition, offset = entry
            if offset + 1 > out.get(partition, 0):
                out[partition] = offset + 1
        return out

    def _flush_tick(self) -> None:
        if self.broker is not None:
            self.poll_broker()
        self.flush()
        delay = self._retry_delay if self._retry_delay > 0 else self.flush_interval_s
        self.engine.schedule(delay, self._flush_tick)

    def _attempt_sink(self, batch: list[SyslogMessage]) -> bool:
        """One sink call, injection-aware, exception- and hang-safe."""
        inj = self.fault_injector
        if inj is not None and inj.should_fire(SITE_FLUSH_FAIL):
            return False
        if self.sink_timeout_s is not None:
            return self._attempt_sink_with_deadline(batch)
        try:
            return bool(self.sink(batch))
        except Exception:
            return False

    def _attempt_sink_with_deadline(self, batch: list[SyslogMessage]) -> bool:
        """Run the sink under a wall-clock deadline in a daemon thread.

        A sink still running at the deadline is written off as a failed
        flush.  The thread is left to finish (or hang) in the
        background — its late result is discarded, so the batch stays
        buffered and will be retried or abandoned like any other
        failure; all-or-nothing accounting is preserved because the
        buffer is only mutated on an *observed* success.
        """
        import threading

        result: list[bool] = []

        def call() -> None:
            try:
                result.append(bool(self.sink(batch)))
            except Exception:
                result.append(False)

        worker = threading.Thread(target=call, daemon=True)
        worker.start()
        worker.join(self.sink_timeout_s)
        if worker.is_alive() or not result:
            return False
        return result[0]

    def flush(self) -> int:
        """Write up to ``batch_size`` buffered messages; returns count.

        All-or-nothing per batch: on success the whole batch leaves the
        buffer and is counted flushed; on failure (sink returned False,
        sink raised, or an injected ``fluentd.flush`` fault) nothing
        leaves, the failure is counted, and the retry backoff grows.
        With a bounded :attr:`flush_retry_limit`, a head batch that
        burns the whole budget is abandoned to :attr:`dead_letters`
        instead of wedging the buffer forever.
        """
        if not self._buffer:
            self._retry_delay = 0.0
            self._consecutive_failures = 0
            return 0
        batch = self._buffer[: self.batch_size]
        traced = [e for e in self._ctxs[: len(batch)] if e is not None]
        if traced:
            # the store picks the contexts up via carried() and records
            # its own hop against the same clock
            sink_start = self.clock()
            with carrying([c for c, _ in traced], self.clock):
                ok = self._attempt_sink(batch)
        else:
            sink_start = 0.0
            ok = self._attempt_sink(batch)
        if ok:
            offsets = (
                self._batch_offsets(len(batch)) if self.broker is not None else None
            )
            wal_ms = 0.0
            if self.journal is not None:
                wal_t0 = time.perf_counter() if traced else 0.0
                self.journal.flushed(len(batch), offsets=offsets)
                if traced:
                    wal_ms = (time.perf_counter() - wal_t0) * 1e3
            if offsets:
                # journal first, broker second: the journal is the
                # durable truth; a commit the broker loses (the
                # broker.commit_lost site) is re-seeded from the
                # journal's flush records on recovery
                for partition, next_offset in offsets.items():
                    self.broker.commit(self.consumer_group, partition, next_offset)
            del self._buffer[: len(batch)]
            if self.broker is not None:
                del self._offsets[: len(batch)]
            del self._ctxs[: len(batch)]
            self.stats.flushed_batches += 1
            self.stats.flushed_messages += len(batch)
            self._retry_delay = 0.0
            self._consecutive_failures = 0
            self._m_buffer_depth.set(len(self._buffer))
            self._m_flush_size.set(len(batch))
            self._m_flushed.inc(len(batch))
            if traced:
                now = self.clock()
                for ctx, entered_s in traced:
                    self._m_poll_to_flush.observe(now - entered_s)
                    hop = record_hop(
                        ctx, "fluentd.flush", sink_start, now, batch=len(batch)
                    )
                    if self.journal is not None:
                        record_hop(
                            hop, "wal.append", now, wall_ms=round(wal_ms, 3)
                        )
                    self._m_e2e.observe(now - ctx.origin_s)
            return len(batch)
        self.stats.failed_flushes += 1
        self._consecutive_failures += 1
        if (
            self.flush_retry_limit is not None
            and self._consecutive_failures >= self.flush_retry_limit
        ):
            self._abandon(batch)
        self._retry_delay = min(
            self.retry_base_s * 2 ** min(self._consecutive_failures, 10),
            self.retry_max_s,
        )
        return 0

    def _abandon(self, batch: list[SyslogMessage]) -> None:
        """Dead-letter a head batch that exhausted its retry budget.

        In broker mode the batch's offsets are committed too: the
        poison batch is parked in the DLQ and the group moves *past*
        it, instead of re-polling the same doomed records forever.
        """
        offsets = (
            self._batch_offsets(len(batch)) if self.broker is not None else None
        )
        if self.journal is not None:
            self.journal.abandoned(
                len(batch), ABANDON_SITE,
                f"flush failed {self._consecutive_failures} times",
                offsets=offsets,
            )
        if offsets:
            for partition, next_offset in offsets.items():
                self.broker.commit(self.consumer_group, partition, next_offset)
        del self._buffer[: len(batch)]
        if self.broker is not None:
            del self._offsets[: len(batch)]
        del self._ctxs[: len(batch)]
        self.stats.abandoned_flushes += 1
        self.stats.abandoned_messages += len(batch)
        for pos, message in enumerate(batch):
            self.dead_letters.push(
                ABANDON_SITE, message,
                f"flush failed {self._consecutive_failures} times",
                batch_position=pos,
            )
        self._consecutive_failures = 0
        self._m_buffer_depth.set(len(self._buffer))

    def drain(
        self, max_rounds: int = 1_000_000, max_consecutive_failures: int = 50
    ) -> int:
        """Flush repeatedly until the buffer empties; returns flushed.

        Transient sink failures are retried; the drain only gives up
        after ``max_consecutive_failures`` rounds in a row with no
        progress (neither a flush nor an abandonment shrank the
        buffer).

        Raises
        ------
        RuntimeError
            If the sink keeps failing and the buffer cannot drain.
        """
        total = 0
        consecutive = 0
        for _ in range(max_rounds):
            if not self._buffer:
                return total
            before = len(self._buffer)
            n = self.flush()
            if len(self._buffer) < before:
                consecutive = 0
                total += n
            else:
                consecutive += 1
                if consecutive >= max_consecutive_failures:
                    raise RuntimeError(
                        f"drain stalled with {len(self._buffer)} messages "
                        f"buffered after {consecutive} consecutive failures"
                    )
        raise RuntimeError("drain exceeded max_rounds")

    def preload(self, messages) -> int:
        """Silently restore buffered messages (checkpoint restore).

        No journal records, no ``accepted`` counts: these messages were
        already journaled when first offered; this only puts them back
        in flight so the flush cycle can deliver them.
        """
        n = 0
        for m in messages:
            self._buffer.append(m)
            if self.broker is not None:
                self._offsets.append(None)
            self._ctxs.append(None)
            n += 1
        self.stats.max_buffer_seen = max(
            self.stats.max_buffer_seen, len(self._buffer)
        )
        self._m_buffer_depth.set(len(self._buffer))
        return n

    @property
    def buffered(self) -> int:
        return len(self._buffer)
