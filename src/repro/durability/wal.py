"""Segmented append-only write-ahead log.

The stream layer's in-memory resilience (retries, DLQ, degraded mode)
resets to zero on every process death; the WAL is what survives.  Each
record is one JSONL line carrying a monotonic sequence number and a
CRC32 over its canonical body, so recovery can tell a committed record
from a torn tail byte-for-byte.  Segments rotate by size; the fsync
policy trades durability-against-power-loss for throughput:

``always``
    flush + fsync after every append — nothing is ever lost, slowest.
``batch`` (default)
    flush to the OS after every append (a SIGKILL therefore loses
    nothing), fsync every ``sync_every`` appends and on rotation,
    close, and explicit :meth:`WriteAheadLog.sync` — so at most one
    batch of records is exposed to a *power* failure.
``off``
    flush to the OS only; fsync never (benchmark baseline).

Recovery is total: scanning stops at the first record that fails to
parse, fails its CRC, or breaks the sequence chain, and everything from
that byte on is truncated (torn writes are expected; corruption never
propagates).  A valid prefix is always recovered, never an exception.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "FSYNC_POLICIES",
    "WalRecord",
    "WalScanInfo",
    "WriteAheadLog",
    "replay_wal",
]

#: valid values for :class:`WriteAheadLog`'s ``fsync`` parameter
FSYNC_POLICIES = ("always", "batch", "off")

_SEGMENT_GLOB = "wal-*.jsonl"
_RECORD_KEYS = {"seq", "kind", "data", "crc"}


@dataclass(frozen=True)
class WalRecord:
    """One committed log record."""

    seq: int
    kind: str
    data: dict


@dataclass
class WalScanInfo:
    """Outcome of one recovery scan over a WAL directory."""

    #: committed records found
    records: int = 0
    #: sequence number of the last committed record (0 when empty)
    last_seq: int = 0
    #: segment files scanned
    segments: int = 0
    #: torn/corrupt bytes past the last committed record
    truncated_bytes: int = 0
    #: whole segments unreachable behind a torn record
    dropped_segments: int = 0


def _encode_record(seq: int, kind: str, data: dict) -> bytes:
    # the canonical body is built by hand (keys in sorted order, compact
    # separators) so one json.dumps covers both the CRC input and the
    # emitted line — encoding is on the per-message hot path
    canon = '{"data":%s,"kind":%s,"seq":%d}' % (
        json.dumps(data, sort_keys=True, separators=(",", ":")),
        json.dumps(kind),
        seq,
    )
    crc = zlib.crc32(canon.encode("utf-8"))
    return ('%s,"crc":%d}\n' % (canon[:-1], crc)).encode("utf-8")


def _decode_line(line: bytes) -> WalRecord | None:
    """Parse + verify one record line; None on any defect."""
    try:
        obj = json.loads(line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(obj, dict) or set(obj) != _RECORD_KEYS:
        return None
    crc = obj.pop("crc")
    try:
        canon = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    if crc != zlib.crc32(canon.encode("utf-8")):
        return None
    if not isinstance(obj["seq"], int) or not isinstance(obj["data"], dict):
        return None
    return WalRecord(seq=obj["seq"], kind=str(obj["kind"]), data=obj["data"])


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"wal-{first_seq:010d}.jsonl"


def _scan(
    directory: Path, *, repair: bool
) -> tuple[list[WalRecord], WalScanInfo]:
    """Read every committed record; optionally truncate the torn tail.

    The first record that fails validation (or breaks the ``seq``
    chain) marks the end of history: with ``repair`` the segment is
    truncated there and any later segments are deleted, without it the
    damage is only measured.  Never raises on torn/corrupt content.
    """
    info = WalScanInfo()
    records: list[WalRecord] = []
    expected = 1
    broken = False
    for seg in sorted(directory.glob(_SEGMENT_GLOB)):
        if broken:
            info.dropped_segments += 1
            info.truncated_bytes += seg.stat().st_size
            if repair:
                seg.unlink()
            continue
        info.segments += 1
        raw = seg.read_bytes()
        pos = 0
        valid_end = 0
        while pos < len(raw):
            nl = raw.find(b"\n", pos)
            if nl == -1:
                broken = True  # torn tail: no newline
                break
            rec = _decode_line(raw[pos:nl])
            if rec is None or rec.seq != expected:
                broken = True
                break
            records.append(rec)
            expected += 1
            pos = nl + 1
            valid_end = pos
        if broken:
            info.truncated_bytes += len(raw) - valid_end
            if repair:
                if valid_end == 0:
                    seg.unlink()
                else:
                    with seg.open("r+b") as fh:
                        fh.truncate(valid_end)
    info.records = len(records)
    info.last_seq = records[-1].seq if records else 0
    return records, info


def replay_wal(directory: str | Path) -> tuple[list[WalRecord], WalScanInfo]:
    """Read-only recovery scan: every committed record, in order.

    Torn tails and unreachable segments are reported in the
    :class:`WalScanInfo`, never raised, and the files are left
    untouched (opening a :class:`WriteAheadLog` is what repairs).
    """
    return _scan(Path(directory), repair=False)


class WriteAheadLog:
    """Append-only durable record log over a directory of segments.

    Opening scans (and repairs) existing segments, so appends always
    continue the committed sequence — a torn tail from a previous crash
    is truncated, not extended.

    Parameters
    ----------
    directory:
        Segment home; created if missing.
    fsync:
        One of :data:`FSYNC_POLICIES` (see module docstring).
    segment_bytes:
        Rotation threshold: a record that would push the current
        segment past this size starts a new one.
    sync_every:
        Appends between fsyncs under the ``batch`` policy.
    registry:
        Metrics registry for the ``repro_wal_*`` families (default:
        the process registry).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: str = "batch",
        segment_bytes: int = 4_000_000,
        sync_every: int = 256,
        registry=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        if sync_every < 1:
            raise ValueError(f"sync_every must be >= 1, got {sync_every}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.segment_bytes = segment_bytes
        self.sync_every = sync_every
        from repro.obs import wellknown

        self._m_appends = wellknown.wal_appends(registry)
        self._m_fsyncs = wellknown.wal_fsyncs(registry)
        self._m_rotations = wellknown.wal_rotations(registry)
        self._m_truncated = wellknown.wal_truncated_bytes(registry)
        # append() runs per message: bind the label-resolved children
        # once instead of resolving them on every record
        self._m_append_kind: dict = {}
        self._m_bytes = wellknown.wal_bytes(registry).labels()
        self._m_last_seq = wellknown.wal_last_seq(registry).labels()
        self._m_fsync_seconds = wellknown.wal_fsync_seconds(registry).labels()

        _records, self.recovery = _scan(self.directory, repair=True)
        if self.recovery.truncated_bytes:
            self._m_truncated.inc(self.recovery.truncated_bytes)
        self._last_seq = self.recovery.last_seq
        self._appends_since_sync = 0
        self._fh = None
        self._segment_size = 0
        segments = sorted(self.directory.glob(_SEGMENT_GLOB))
        if segments and segments[-1].stat().st_size < self.segment_bytes:
            self._fh = segments[-1].open("ab")
            self._segment_size = segments[-1].stat().st_size

    @property
    def last_seq(self) -> int:
        """Sequence number of the last committed record."""
        return self._last_seq

    def append(self, kind: str, data: dict) -> int:
        """Append one record; returns its sequence number.

        The line is flushed to the OS before returning under every
        policy, so a SIGKILL after :meth:`append` cannot lose the
        record — only a power failure can, bounded by the fsync policy.
        """
        seq = self._last_seq + 1
        encoded = _encode_record(seq, kind, data)
        if (
            self._fh is None
            or self._segment_size + len(encoded) > self.segment_bytes
        ):
            self._rotate(seq)
        self._fh.write(encoded)
        self._fh.flush()
        self._segment_size += len(encoded)
        self._last_seq = seq
        child = self._m_append_kind.get(kind)
        if child is None:
            child = self._m_append_kind[kind] = self._m_appends.labels(kind=kind)
        child.inc()
        self._m_bytes.inc(len(encoded))
        self._m_last_seq.set(seq)
        if self.fsync == "always":
            self._fsync()
        elif self.fsync == "batch":
            self._appends_since_sync += 1
            if self._appends_since_sync >= self.sync_every:
                self.sync()
        return seq

    def sync(self) -> None:
        """Flush and fsync the current segment (no-op when ``off``)."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync != "off":
            self._fsync()

    def close(self) -> None:
        """Sync and release the current segment file handle."""
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def records(self) -> list[WalRecord]:
        """Every committed record, re-read from disk."""
        if self._fh is not None:
            self._fh.flush()
        records, _info = _scan(self.directory, repair=False)
        return records

    # -- internals ---------------------------------------------------------

    def _fsync(self) -> None:
        t0 = time.perf_counter()
        os.fsync(self._fh.fileno())
        self._m_fsync_seconds.observe(time.perf_counter() - t0)
        self._appends_since_sync = 0
        self._m_fsyncs.inc()

    def _rotate(self, first_seq: int) -> None:
        if self._fh is not None:
            self.close()
            self._m_rotations.inc()
        self._fh = _segment_path(self.directory, first_seq).open("ab")
        self._segment_size = 0

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WriteAheadLog(dir={str(self.directory)!r}, "
            f"last_seq={self._last_seq}, fsync={self.fsync!r})"
        )
