"""Crash-recovery harness: real SIGKILLs against a real subprocess.

In-process crash tests can cheat — module state survives, buffers
survive, the GC runs.  This harness cannot: the child runs a durable
simulation in its own interpreter, a fault plan armed at
``durability.crash`` SIGKILLs it mid-journal-write at an exact record
ordinal, and the next child starts from nothing but the WAL directory.
The scenario driver alternates kills and resumes, finishes with a
clean run, and returns the child's conservation report — the
assertion that no message was lost or duplicated across any number of
deaths.

Runnable directly (the child entry point)::

    python -m repro.durability.harness WAL_DIR [--crash-plan PLAN.json]

Exit code 0 means the run completed *and* conservation held.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
from dataclasses import asdict
from pathlib import Path

from repro.durability.recovery import SimConfig, reconcile, resume_simulation

__all__ = ["child_main", "run_child", "crash_recovery_scenario"]

REPORT_FILENAME = "report.json"


def child_main(argv: list[str] | None = None) -> int:
    """Resume the durable simulation in ``wal_dir`` and run it out.

    With ``--crash-plan`` the injector may SIGKILL this process at any
    journal write; without one the run must complete, at which point
    the conservation report is written to ``report.json`` and the exit
    code says whether the invariant held.
    """
    parser = argparse.ArgumentParser(prog="repro.durability.harness")
    parser.add_argument("wal_dir", type=Path)
    parser.add_argument("--crash-plan", type=Path, default=None)
    args = parser.parse_args(argv)

    injector = None
    if args.crash_plan is not None:
        from repro.faults import FaultInjector, FaultPlan

        injector = FaultInjector(FaultPlan.from_file(args.crash_plan))
    cluster, config, journal = resume_simulation(args.wal_dir, injector=injector)
    # captured before the run: the restored control state this child
    # woke up with — the crash harness asserts it equals what the dead
    # generation journaled (setpoint equality, no duplicate actuations)
    control_at_resume = (
        cluster.controller.export_state()
        if cluster.controller is not None else None
    )
    horizon = max(config.duration_s + 30.0, cluster.engine.now)
    report = cluster.run(horizon)
    conservation = reconcile(journal.state, report.produced)
    journal.wal.close()
    payload = {
        "produced": report.produced,
        "indexed": report.indexed,
        "classified": report.classified,
        "drained": report.drained,
        "relay_received": report.relay_received,
        "relay_dropped": report.relay_dropped,
        "conservation": asdict(conservation),
    }
    if cluster.controller is not None:
        payload["control_at_resume"] = control_at_resume
        payload["control"] = cluster.controller.stats()
    if config.trace_sample > 0:
        payload["traces"] = _trace_report(config)
    (args.wal_dir / REPORT_FILENAME).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(conservation.render())
    return 0 if conservation.ok else 1


def _trace_report(config: SimConfig) -> dict:
    """Summarize cross-hop trace continuity for the child's report.

    ``complete`` counts traces covering every spine hop; a trace whose
    tail spans were recorded after the last checkpoint of a killed
    generation loses those hops, so callers assert ``complete >= 1``,
    not completeness for all.  ``multiprocess`` counts traces whose
    hops were recorded by more than one pid — the direct evidence that
    stitching crossed a process boundary.
    """
    from repro.obs import default_registry, default_tracer, trace_is_complete

    traces = default_tracer().traces()
    complete = 0
    multiprocess = 0
    for spans in traces.values():
        if trace_is_complete({s.name for s in spans}, journal=True):
            complete += 1
        if len({s.attributes.get("pid") for s in spans}) > 1:
            multiprocess += 1
    snap = default_registry().snapshot()
    e2e_count = sum(
        int(sample["count"])
        for fam in snap["metrics"]
        if fam["name"] == "repro_e2e_latency_seconds"
        for sample in fam["samples"]
    )
    return {
        "total": len(traces),
        "complete": complete,
        "multiprocess": multiprocess,
        "e2e_observations": e2e_count,
    }


def run_child(
    wal_dir: Path,
    *,
    crash_at: int | None = None,
    crash_seed: int = 0,
    timeout: float = 300.0,
) -> subprocess.CompletedProcess:
    """One child run; optionally armed to SIGKILL itself.

    ``crash_at`` is the 1-based ``durability.crash`` arming-check
    ordinal — i.e. the Nth journal record committed *in this child* —
    at which the process kills itself.  ``None`` runs clean.
    """
    import repro

    wal_dir = Path(wal_dir)
    cmd = [sys.executable, "-m", "repro.durability.harness", str(wal_dir)]
    if crash_at is not None:
        from repro.faults.plan import SITE_CRASH

        plan_path = wal_dir / "crash-plan.json"
        plan_path.write_text(json.dumps({
            "seed": crash_seed,
            "sites": {SITE_CRASH: {"at_calls": [crash_at]}},
        }))
        cmd += ["--crash-plan", str(plan_path)]
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        cmd, env=env, timeout=timeout, capture_output=True, text=True,
    )


def crash_recovery_scenario(
    wal_dir: Path,
    config: SimConfig,
    kill_points: list[int],
    *,
    timeout: float = 300.0,
) -> dict:
    """Kill the simulation at each point in turn, then finish it clean.

    Each kill point restarts the child from disk and SIGKILLs it at
    that journal ordinal (relative to the restart).  A child that
    completes before its kill point fires simply ends the kill phase
    early.  The final clean run must exit 0 — run complete *and*
    conservation held — and its ``report.json`` is returned.
    """
    wal_dir = Path(wal_dir)
    config.save(wal_dir)
    for point in kill_points:
        proc = run_child(wal_dir, crash_at=point, timeout=timeout)
        if proc.returncode == -signal.SIGKILL:
            continue
        if proc.returncode == 0:
            break  # finished before the kill point — nothing left to kill
        raise RuntimeError(
            f"child at kill point {point} exited {proc.returncode} "
            f"(expected SIGKILL):\n{proc.stdout}\n{proc.stderr}"
        )
    final = run_child(wal_dir, timeout=timeout)
    if final.returncode != 0:
        raise RuntimeError(
            f"final clean run failed ({final.returncode}):\n"
            f"{final.stdout}\n{final.stderr}"
        )
    return json.loads((wal_dir / REPORT_FILENAME).read_text())


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(child_main())
