"""Durable ingest: WAL, checkpoint/restore, and crash recovery.

The stream layer's resilience (retries, overflow policies, dead
letters) lives in memory and dies with the process.  This package
makes the Tivan simulation survive process death with an
effectively-exactly-once guarantee:

- :mod:`repro.durability.wal` — segmented append-only write-ahead log
  (JSONL + CRC32 + monotonic sequence numbers, torn-tail-truncating
  recovery, ``always|batch|off`` fsync policies),
- :mod:`repro.durability.checkpoint` — atomic temp-then-rename
  snapshots that bound WAL replay,
- :mod:`repro.durability.recovery` — the :class:`StreamJournal` that
  logs every forwarder buffer transition write-ahead, checkpoint
  payloads, :func:`resume_simulation`, and the :func:`reconcile`
  conservation check,
- :mod:`repro.durability.harness` — subprocess SIGKILL scenarios
  proving no message is ever lost or duplicated across crashes.
"""

from repro.durability.checkpoint import (
    checkpoint_paths,
    load_checkpoint,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.durability.harness import (
    child_main,
    crash_recovery_scenario,
    run_child,
)
from repro.durability.recovery import (
    ConservationReport,
    JournalState,
    SimConfig,
    StreamJournal,
    build_checkpoint_payload,
    checkpoint_cluster,
    reconcile,
    recover_state,
    resume_simulation,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    WalRecord,
    WalScanInfo,
    WriteAheadLog,
    replay_wal,
)

__all__ = [
    "FSYNC_POLICIES",
    "WalRecord",
    "WalScanInfo",
    "WriteAheadLog",
    "replay_wal",
    "checkpoint_paths",
    "load_checkpoint",
    "load_latest_checkpoint",
    "write_checkpoint",
    "ConservationReport",
    "JournalState",
    "SimConfig",
    "StreamJournal",
    "build_checkpoint_payload",
    "checkpoint_cluster",
    "reconcile",
    "recover_state",
    "resume_simulation",
    "child_main",
    "crash_recovery_scenario",
    "run_child",
]
