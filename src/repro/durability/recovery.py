"""Durable ingest: journal, checkpoint payloads, resume, conservation.

The simulation trace is deterministic — ``generate_stream(seed)``
produces the same events every run — so each message's position in the
trace is a durable identity that survives process death.  The
:class:`StreamJournal` writes one WAL record *before* every buffer
transition in the forwarder (accept, reject, evict, flush, abandon,
overflow dead-letter), keyed by that identity.  Recovery then has an
effectively-exactly-once story without distributed-systems machinery:

1. load the newest valid checkpoint (bounded replay),
2. replay WAL records past its ``last_wal_seq`` — apply is idempotent,
   deduplicated by sequence number,
3. regenerate the trace and re-offer only events whose identity the
   journal has never seen.

Because the trace is regenerable, WAL records for trace events carry
only the index — message bodies are rematerialized from the trace on
resume, which keeps the per-message journal cost to a few bytes.  Only
synthetic identities (messages offered outside the trace, negative
indices) embed the full body.

Accepts are also *group-committed*: they accumulate in memory and are
written as one batch record at the next write barrier — any other
record kind (flush, evict, reject, dead-letter, abandon) and every
checkpoint — so the WAL stays ordered (an event's accept always
precedes any record that moves it) while the per-message hot path
costs a list append instead of an encode+write.  A crash can lose the
pending window, but those events were still buffered, so recovery
simply re-offers them from the regenerated trace: conservation holds;
the window is only visible as reprocessing, never as loss.

Conservation is the correctness contract, enforced by
:func:`reconcile`: at the end of a run — through any number of
SIGKILLs — every generated message has exactly one disposition
(indexed, rejected, evicted, dead-lettered, or still buffered), never
zero (lost) and never two (duplicated).
"""

from __future__ import annotations

import os
import signal
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.durability.checkpoint import load_latest_checkpoint, write_checkpoint
from repro.durability.wal import WalRecord, WriteAheadLog
from repro.faults.plan import SITE_CRASH

__all__ = [
    "ConservationReport",
    "JournalState",
    "RECORD_KINDS",
    "SimConfig",
    "StreamJournal",
    "build_checkpoint_payload",
    "checkpoint_cluster",
    "reconcile",
    "recover_state",
    "resume_simulation",
]

#: WAL record kinds the journal writes (one per buffer transition;
#: ``requeue`` is broker-mode recovery returning polled-but-uncommitted
#: events to the broker; ``control`` is the controller's post-tick
#: decision state — setpoints, ladder rung, hysteresis — newest wins)
RECORD_KINDS = (
    "accept", "reject", "evict", "flush", "abandon", "dead_new", "requeue",
    "control",
)

META_FILENAME = "meta.json"


# ---------------------------------------------------------------------------
# journal state: the durable truth about every message's disposition


@dataclass
class JournalState:
    """Replayable projection of the WAL: where every message is now.

    Events are identified by their position in the deterministic trace
    (negative indices are synthetic, for messages offered outside the
    trace).  Each identity lives in exactly one place — ``buffer``,
    ``indexed``, ``dead``, ``rejected``, or ``evicted`` — and
    :meth:`apply` moves it between them.  Applies are idempotent:
    records at or below :attr:`applied_seq` are skipped, so replaying a
    prefix that a checkpoint already covers is harmless.
    """

    #: last WAL sequence applied (dedup line for replay)
    applied_seq: int = 0
    #: in-flight: accepted, not yet flushed/evicted/abandoned.  The
    #: second element is the embedded msg dict for synthetic events and
    #: None for trace events (rematerialized from the trace on resume).
    buffer: list = field(default_factory=list)  # [(event, msg|None), ...]
    #: delivered to the store, in doc-id order
    indexed: list = field(default_factory=list)  # [(event, msg|None), ...]
    #: dead-lettered: {"event", "msg", "site", "error"}
    dead: list = field(default_factory=list)
    #: rejected at offer time (block overflow policy)
    rejected: list = field(default_factory=list)  # [event, ...]
    #: evicted by the drop_oldest overflow policy
    evicted: list = field(default_factory=list)  # [event, ...]
    #: every trace identity ever offered (resume skips these)
    seen: set = field(default_factory=set)
    #: broker mode: committed consumer offsets (partition → next offset),
    #: carried by flush/abandon records — the durable commit log that
    #: outlives the broker's in-memory committed offsets
    offsets: dict = field(default_factory=dict)
    #: latest journaled controller decision state (``control`` records;
    #: None when the run has no controller) — resume rebinds the policy
    #: and restores this verbatim, so crashed control runs keep their
    #: setpoints, ladder rung, and hysteresis instead of cold defaults
    control: dict | None = None

    def apply(self, record: WalRecord) -> None:
        """Apply one WAL record; no-op when already applied."""
        if record.seq <= self.applied_seq:
            return
        self.applied_seq = record.seq
        kind, data = record.kind, record.data
        if kind == "accept":
            # group-committed batch: {"events": [...], "msgs": {str(e):
            # dict}} with bodies only for synthetic (negative) events
            msgs = data.get("msgs") or {}
            for event in data["events"]:
                self.buffer.append((event, msgs.get(str(event))))
                self.seen.add(event)
        elif kind == "reject":
            self.rejected.append(data["event"])
            self.seen.add(data["event"])
        elif kind == "dead_new":
            self.dead.append({
                "event": data["event"], "msg": data.get("msg"),
                "site": data["site"], "error": data["error"],
            })
            self.seen.add(data["event"])
        elif kind == "evict":
            entry = self._take(data["event"])
            if entry is not None:
                self.evicted.append(entry[0])
        elif kind == "flush":
            for event in data["events"]:
                entry = self._take(event)
                if entry is not None:
                    self.indexed.append(entry)
            self._merge_offsets(data)
        elif kind == "abandon":
            for event in data["events"]:
                entry = self._take(event)
                if entry is not None:
                    self.dead.append({
                        "event": entry[0], "msg": entry[1],
                        "site": data["site"], "error": data["error"],
                    })
            self._merge_offsets(data)
        elif kind == "requeue":
            # broker-mode recovery: the events leave the buffer AND the
            # seen set, so the regenerated trace republishes them at
            # their stable offsets and the consumer re-polls them past
            # the committed offsets (at-least-once re-delivery)
            for event in data["events"]:
                entry = self._take(event)
                if entry is not None:
                    self.seen.discard(event)
        elif kind == "control":
            # full post-tick snapshot, so newest-wins is the whole story
            self.control = data["state"]
        else:
            raise ValueError(f"unknown WAL record kind {kind!r}")

    def _merge_offsets(self, data: dict) -> None:
        """Max-wins merge of a record's committed-offset payload."""
        for partition, next_offset in (data.get("offsets") or {}).items():
            if next_offset > self.offsets.get(partition, 0):
                self.offsets[partition] = int(next_offset)

    def _take(self, event: int):
        """Remove and return the buffered entry for ``event``."""
        for i, entry in enumerate(self.buffer):
            if entry[0] == event:
                return self.buffer.pop(i)
        return None

    def to_payload(self) -> dict:
        """JSON-ready form for embedding in a checkpoint."""
        return {
            "applied_seq": self.applied_seq,
            "buffer": [[e, m] for e, m in self.buffer],
            "indexed": [[e, m] for e, m in self.indexed],
            "dead": [dict(d) for d in self.dead],
            "rejected": list(self.rejected),
            "evicted": list(self.evicted),
            "offsets": dict(self.offsets),
            "control": self.control,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalState":
        state = cls(
            applied_seq=int(payload["applied_seq"]),
            buffer=[(int(e), m) for e, m in payload["buffer"]],
            indexed=[(int(e), m) for e, m in payload["indexed"]],
            dead=[dict(d) for d in payload["dead"]],
            rejected=[int(e) for e in payload["rejected"]],
            evicted=[int(e) for e in payload["evicted"]],
            # absent in pre-broker checkpoints
            offsets={
                str(p): int(o)
                for p, o in (payload.get("offsets") or {}).items()
            },
            # absent in pre-control checkpoints
            control=payload.get("control"),
        )
        state.seen = (
            {e for e, _m in state.buffer}
            | {e for e, _m in state.indexed}
            | {d["event"] for d in state.dead}
            | set(state.rejected)
            | set(state.evicted)
        )
        return state


class StreamJournal:
    """Write-ahead journal of forwarder buffer transitions.

    Accepts are group-committed: :meth:`accept` updates the in-memory
    :class:`JournalState` and queues the event; the pending batch is
    written as one WAL record at the next *write barrier* — any other
    record kind, or an explicit :meth:`flush_pending` (which every
    checkpoint takes first).  Barriers keep the WAL causally ordered:
    an event's accept record always precedes any record that moves it.
    Between barriers the in-memory state runs ahead of the log; a crash
    there loses only pending accepts, which recovery re-offers from the
    regenerated trace (reprocessing, never loss).

    When a fault injector is armed at ``durability.crash``, each accept
    and each committed record is one arming check; a fire SIGKILLs the
    process on the spot, which is how the crash-recovery harness
    schedules kills at exact journal ordinals.
    """

    def __init__(
        self,
        wal: WriteAheadLog,
        *,
        injector=None,
        state: JournalState | None = None,
    ) -> None:
        self.wal = wal
        self.injector = injector
        self.state = state if state is not None else JournalState()
        # synthetic identities for messages offered outside the trace
        self._auto = min((e for e in self.state.seen if e < 0), default=0)
        self._pending: list = []  # accepts awaiting group commit

    @property
    def seen(self) -> set:
        """Trace identities already offered (resume skips these)."""
        return self.state.seen

    def accept(self, event: int | None, message) -> None:
        """The forwarder is about to buffer ``message``.

        Trace events (``event >= 0``) journal only the index; the body
        is regenerable from the trace.  Synthetic events embed it.
        """
        event = self._resolve(event)
        msg = message.to_dict() if event < 0 else None
        self._pending.append((event, msg))
        self.state.buffer.append((event, msg))
        self.state.seen.add(event)
        self._crash_check()

    def reject(self, event: int | None) -> None:
        """The forwarder is about to reject a newcomer (block policy)."""
        self._barrier_commit("reject", {"event": self._resolve(event)})

    def dead_newcomer(self, event: int | None, message, site: str, error: str) -> None:
        """The forwarder is about to dead-letter a newcomer (overflow)."""
        event = self._resolve(event)
        data = {"event": event, "site": site, "error": error}
        if event < 0:
            data["msg"] = message.to_dict()
        self._barrier_commit("dead_new", data)

    def evict_oldest(self) -> None:
        """The forwarder is about to evict its oldest buffered message."""
        self._barrier_commit("evict", {"event": self.state.buffer[0][0]})

    def flushed(self, n: int, *, offsets: dict | None = None) -> None:
        """The sink accepted the head batch of ``n`` messages.

        ``offsets`` (broker mode) records the batch's committed
        consumer offsets — the flush record *is* the durable offset
        commit; the broker's in-memory commit happens after and may be
        lost without harm.
        """
        data: dict = {"events": [e for e, _m in self.state.buffer[:n]]}
        if offsets:
            data["offsets"] = dict(offsets)
        self._barrier_commit("flush", data)

    def abandoned(
        self, n: int, site: str, error: str, *, offsets: dict | None = None
    ) -> None:
        """The head batch of ``n`` is about to be dead-lettered."""
        data: dict = {
            "events": [e for e, _m in self.state.buffer[:n]],
            "site": site, "error": error,
        }
        if offsets:
            data["offsets"] = dict(offsets)
        self._barrier_commit("abandon", data)

    def requeue_buffer(self) -> int:
        """Broker-mode recovery: in-flight events go back to the broker.

        The buffer holds events that were polled but not committed when
        the process died.  Rather than preloading them (push-mode
        recovery), a ``requeue`` record removes them from the buffer
        *and* the seen set: the regenerated trace republishes them at
        their stable offsets and the consumer re-polls them from the
        journal's committed offsets — Kafka's contract, an in-flight
        batch returns to the log on consumer death.  Returns the number
        of events requeued.
        """
        events = [e for e, _m in self.state.buffer]
        if not events:
            return 0
        self._barrier_commit("requeue", {"events": events})
        return len(events)

    def control_state(self, state: dict) -> None:
        """Journal the controller's post-tick decision state.

        One ``control`` record per tick, carrying the complete
        :meth:`~repro.control.controller.Controller.export_state`
        snapshot — setpoint moves, ladder transitions, and cooldown/
        hold state are all inside it, and newest-wins replay makes the
        record trivially idempotent.  A write barrier like any other
        non-accept record, so the control decision is totally ordered
        against the message dispositions it reacted to.
        """
        self._barrier_commit("control", {"state": state})

    def flush_pending(self) -> None:
        """Write barrier: group-commit any pending accepts to the WAL.

        Checkpoints call this before syncing so their ``last_wal_seq``
        covers every event in the snapshotted state.
        """
        if not self._pending:
            return
        data = {"events": [e for e, _m in self._pending]}
        msgs = {str(e): m for e, m in self._pending if m is not None}
        if msgs:
            data["msgs"] = msgs
        self._pending = []
        # the events are already applied to the in-memory state; only
        # the dedup line moves (replay applies this record instead)
        self.state.applied_seq = self.wal.append("accept", data)
        self._crash_check()

    def _resolve(self, event: int | None) -> int:
        if event is not None:
            return event
        self._auto -= 1
        return self._auto

    def _barrier_commit(self, kind: str, data: dict) -> None:
        self.flush_pending()
        seq = self.wal.append(kind, data)
        self.state.apply(WalRecord(seq=seq, kind=kind, data=data))
        self._crash_check()

    def _crash_check(self) -> None:
        if self.injector is not None and self.injector.should_fire(SITE_CRASH):
            os.kill(os.getpid(), signal.SIGKILL)


# ---------------------------------------------------------------------------
# the durable run configuration (meta.json beside the WAL)


@dataclass
class SimConfig:
    """Everything needed to rebuild a simulation from its WAL directory.

    The trace is regenerated from ``(duration_s, rate, seed,
    incident)`` — determinism is what makes trace positions durable
    identities — and the cluster/stage knobs are rebuilt from the rest.
    ``model_dir=None`` runs the classifier stage without real
    predictions at ``service_time_s`` per message (the pure queueing
    study), which is also what the subprocess harness uses to stay
    fast.
    """

    duration_s: float
    rate: float
    seed: int = 0
    incident: bool = False
    fsync: str = "batch"
    checkpoint_every_s: float = 60.0
    segment_bytes: int = 4_000_000
    overflow: str = "block"
    flush_retry_limit: int | None = None
    degrade_backlog: int | None = None
    model_dir: str | None = None
    service_time_s: float = 0.01
    batch_size: int = 64
    #: forwarder knobs (defaults match TivanCluster's)
    flush_interval_s: float = 1.0
    forward_batch: int = 1000
    buffer_limit: int = 100_000
    #: replicated store (None keeps the single in-process LogStore)
    store_nodes: int | None = None
    store_replicas: int = 1
    write_quorum: int | None = None
    read_quorum: int | None = None
    #: broker-spine ingest (relay → LogBroker → consumer-group forwarder);
    #: durable broker runs require the host partitioner and one consumer
    via_broker: bool = False
    n_consumers: int = 1
    #: cross-hop trace sampling (0.0 disables); the seed keys the
    #: deterministic per-event decision, so a resumed process re-traces
    #: the same messages with the same trace IDs
    trace_sample: float = 0.0
    trace_seed: int = 0
    #: template-dedup cache capacity for the classifier stage's
    #: pipeline (None = no cache); exact memoization, so a resumed run
    #: classifies identically with or without it
    template_cache: int | None = None
    #: offered-load shape ("standard", "surge", "diurnal", "constant");
    #: all profiles are pure functions of (duration, rate, swing, seed),
    #: so any of them is a regenerable durable trace
    load_profile: str = "standard"
    load_swing: float = 10.0
    #: serialized ControlPolicy (``ControlPolicy.to_dict``); resume
    #: rebinds it and restores the journaled controller state, which is
    #: what makes ``--control`` + ``--wal-dir`` legal
    control: dict | None = None

    def events(self):
        """Regenerate the deterministic trace this config describes."""
        from repro.datagen.workload import (
            offered_load_events,
            standard_simulation_events,
        )

        if self.load_profile != "standard":
            return offered_load_events(
                profile=self.load_profile, duration_s=self.duration_s,
                base_rate=self.rate, swing=self.load_swing, seed=self.seed,
            )
        return standard_simulation_events(
            duration_s=self.duration_s, background_rate=self.rate,
            seed=self.seed, incident=self.incident,
        )

    def save(self, directory: str | Path) -> Path:
        """Write ``meta.json`` into ``directory`` (created if missing)."""
        import json

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / META_FILENAME
        path.write_text(json.dumps(asdict(self), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, directory: str | Path) -> "SimConfig":
        import json

        path = Path(directory) / META_FILENAME
        if not path.exists():
            raise FileNotFoundError(
                f"{path}: no simulation metadata — not a durable run "
                f"directory (start one with simulate --wal-dir)"
            )
        data = json.loads(path.read_text())
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


# ---------------------------------------------------------------------------
# checkpoint payloads


def build_checkpoint_payload(cluster) -> dict:
    """Snapshot a running durable cluster as a JSON-ready payload."""
    from repro.faults.dlq import entry_to_dict
    from repro.obs import default_registry, default_tracer
    from repro.obs.wellknown import declare_all

    journal = cluster.journal
    stage = cluster._stage
    categories = {}
    for doc in cluster.store.iter_documents():
        if doc.category is not None:
            categories[str(doc.doc_id)] = doc.category.value
    declare_all()
    return {
        "sim_time": cluster.engine.now,
        "last_wal_seq": journal.wal.last_seq,
        "journal": journal.state.to_payload(),
        "cluster": {
            "stats": asdict(cluster.forwarder.stats),
            "relay": {
                "received": cluster.relay.n_received,
                "forwarded": cluster.relay.n_forwarded,
                "dropped": cluster.relay.n_dropped,
            },
            "stage": {
                "n_done": stage.n_done if stage else 0,
                "n_degraded": stage.n_degraded if stage else 0,
            },
            "degraded": cluster.degraded,
            "transitions": cluster.n_degrade_transitions,
            "backlog_samples": [[t, b] for t, b in cluster._backlog_samples],
            "categories": categories,
            "dlq": [entry_to_dict(e) for e in cluster.forwarder.dead_letters],
        },
        "metrics": default_registry().snapshot(),
        # hop spans accumulate across generations: each resumed child
        # re-adopts them, so one trace survives any number of SIGKILLs
        "spans": default_tracer().export(clear=False),
    }


def checkpoint_cluster(cluster, *, crash_hook=None) -> Path:
    """Write one atomic checkpoint for a running durable cluster.

    Pending accepts are group-committed and the WAL fsynced first, so
    the checkpoint never claims a ``last_wal_seq`` the log might lose
    and never snapshots state the log has not yet seen.
    """
    journal = cluster.journal
    journal.flush_pending()
    journal.wal.sync()
    return write_checkpoint(
        journal.wal.directory,
        build_checkpoint_payload(cluster),
        seq=journal.wal.last_seq,
        crash_hook=crash_hook,
    )


# ---------------------------------------------------------------------------
# recovery


@dataclass
class RecoveredState:
    """What recovery reconstructed before the cluster is rebuilt."""

    state: JournalState
    checkpoint: dict | None
    checkpoint_path: Path | None
    replayed: int


def recover_state(wal_dir: str | Path, *, wal: WriteAheadLog | None = None) -> RecoveredState:
    """Newest valid checkpoint + idempotent WAL replay past it.

    Opening the :class:`WriteAheadLog` repairs any torn tail first;
    replay then applies only records with ``seq`` greater than the
    checkpoint's ``applied_seq`` (records the checkpoint already
    covers are skipped by :meth:`JournalState.apply`).
    """
    from repro.obs import wellknown

    wal_dir = Path(wal_dir)
    payload, path = load_latest_checkpoint(wal_dir)
    if payload is not None:
        state = JournalState.from_payload(payload["journal"])
    else:
        state = JournalState()
    records = wal.records() if wal is not None else None
    if records is None:
        from repro.durability.wal import replay_wal

        records, _info = replay_wal(wal_dir)
    replayed = 0
    for record in records:
        if record.seq > state.applied_seq:
            state.apply(record)
            replayed += 1
    if replayed:
        wellknown.wal_replayed_records().inc(replayed)
    return RecoveredState(
        state=state, checkpoint=payload, checkpoint_path=path, replayed=replayed,
    )


def _build_stage(config: SimConfig, injector):
    """Rebuild the classifier stage a durable run's config describes."""
    from repro.core.taxonomy import Category
    from repro.stream.tivan import ClassifierStage

    def cheap_batch(texts):
        # degraded path: no model inference — everything fails closed
        # to UNIMPORTANT so the queue keeps draining
        return [Category.UNIMPORTANT for _ in texts]

    if config.model_dir is not None:
        from repro.core.serialize import load_pipeline

        pipe = load_pipeline(config.model_dir)
        if config.template_cache is not None:
            from repro.core.template_cache import TemplateCache

            pipe.template_cache = TemplateCache(
                max_entries=config.template_cache
            )
        if injector is not None:
            pipe.fault_injector = injector
        return ClassifierStage(
            service_time_s=max(pipe.mean_service_time, 1e-4),
            classify_batch=lambda texts: [
                r.category for r in pipe.classify_batch(texts)
            ],
            batch_size=config.batch_size,
            cheap_classify_batch=cheap_batch,
        )
    return ClassifierStage(
        service_time_s=config.service_time_s,
        batch_size=config.batch_size,
        cheap_classify_batch=cheap_batch,
    )


def resume_simulation(wal_dir: str | Path, *, injector=None):
    """Build a durable :class:`~repro.stream.tivan.TivanCluster` from disk.

    This is the *only* way durable runs start: a fresh run is a resume
    from a directory holding nothing but ``meta.json``.  Returns
    ``(cluster, config, journal)`` ready for ``cluster.run(...)``.

    Restore order matters: the WAL opens first (repairing any torn
    tail), the journal state is rebuilt (checkpoint + replay), the
    store/forwarder/stats are reconstructed *from the journal* — the
    journal is the single source of truth for message dispositions;
    checkpoint counters only seed the cosmetic fields replay cannot
    see (batch counts, peak buffer) — and finally the trace is
    regenerated and re-offered minus the identities already seen.
    """
    from repro.core.message import SyslogMessage
    from repro.core.taxonomy import Category
    from repro.faults.dlq import DeadLetter, entry_from_dict
    from repro.obs import default_tracer, restore_snapshot
    from repro.stream.fluentd import ABANDON_SITE, OVERFLOW_SITE
    from repro.stream.tivan import TivanCluster

    wal_dir = Path(wal_dir)
    config = SimConfig.load(wal_dir)
    events = config.events()
    wal = WriteAheadLog(
        wal_dir, fsync=config.fsync, segment_bytes=config.segment_bytes,
    )
    recovered = recover_state(wal_dir, wal=wal)
    state = recovered.state
    checkpoint = recovered.checkpoint

    def materialize(event: int, msg) -> SyslogMessage:
        # trace events journal only their index; the body comes from
        # the regenerated trace (same config, same seed, same message)
        if msg is not None:
            return SyslogMessage.from_dict(msg)
        return events[event].message

    journal = StreamJournal(wal, injector=injector, state=state)
    cluster = TivanCluster(
        flush_interval_s=config.flush_interval_s,
        batch_size=config.forward_batch,
        buffer_limit=config.buffer_limit,
        overflow=config.overflow,
        flush_retry_limit=config.flush_retry_limit,
        degrade_backlog=config.degrade_backlog,
        fault_injector=injector,
        journal=journal,
        checkpoint_every_s=config.checkpoint_every_s,
        store_nodes=config.store_nodes,
        store_replicas=config.store_replicas,
        write_quorum=config.write_quorum,
        read_quorum=config.read_quorum,
        via_broker=config.via_broker,
        n_consumers=config.n_consumers,
        trace_sample=config.trace_sample,
        trace_seed=config.trace_seed,
    )
    stage = _build_stage(config, injector)
    cluster.attach_classifier(stage)

    # -- restore from the checkpoint (cosmetics + clock + metrics) --------
    n_prior_dead = 0
    if checkpoint is not None:
        cluster.engine.now = float(checkpoint["sim_time"])
        restore_snapshot(checkpoint["metrics"])
        # re-adopt the previous generations' hop spans so this
        # process's tracer holds the full cross-crash traces
        default_tracer().adopt(checkpoint.get("spans") or [])
        cl = checkpoint["cluster"]
        stats = cluster.forwarder.stats
        for name, value in cl["stats"].items():
            setattr(stats, name, int(value))
        st = cl["stage"]
        stage.n_done = int(st["n_done"])
        stage.n_degraded = int(st["n_degraded"])
        cluster.degraded = bool(cl["degraded"])
        cluster.n_degrade_transitions = int(cl["transitions"])
        cluster._backlog_samples = [
            (float(t), int(b)) for t, b in cl["backlog_samples"]
        ]
        prior = [entry_from_dict(d) for d in cl["dlq"]]
        n_prior_dead = cluster.forwarder.dead_letters.restore(prior)

    # -- rebuild dispositions from the journal (the source of truth) ------
    categories = (
        checkpoint["cluster"].get("categories", {}) if checkpoint else {}
    )
    for doc_id, (event, msg) in enumerate(state.indexed):
        cat = categories.get(str(doc_id))
        cluster.store.index(
            materialize(event, msg),
            Category(cat) if cat is not None else None,
        )
    stage.n_done = min(stage.n_done, len(cluster.store))
    if config.via_broker:
        # broker-mode recovery: events that were polled but not
        # committed go *back to the broker* — the requeue record drops
        # them from the buffer and the seen set, so the regenerated
        # trace republishes them at their stable offsets and the
        # consumer re-polls them from the journal's committed offsets.
        # This must happen before the stats recompute below so the
        # formulas see the post-requeue (empty) buffer.
        journal.requeue_buffer()
        cluster.broker.restore_offsets(
            cluster.forwarder.consumer_group, state.offsets
        )
    else:
        cluster.forwarder.preload(
            materialize(e, m) for e, m in state.buffer
        )
    replay_dead = [
        DeadLetter(seq=0, site=d["site"],
                   payload=materialize(d["event"], d["msg"]),
                   error=d["error"])
        for d in state.dead[n_prior_dead:]
    ]
    cluster.forwarder.dead_letters.restore(replay_dead)

    # conservation counters come from the journal, not the checkpoint:
    # replay may have moved messages since the snapshot was taken
    dead_overflow = sum(1 for d in state.dead if d["site"] == OVERFLOW_SITE)
    dead_abandoned = sum(1 for d in state.dead if d["site"] == ABANDON_SITE)
    stats = cluster.forwarder.stats
    stats.accepted = (
        len(state.indexed) + len(state.buffer) + len(state.evicted)
        + dead_abandoned
    )
    stats.rejected = len(state.rejected)
    stats.evicted = len(state.evicted)
    stats.dead_lettered = dead_overflow
    stats.flushed_messages = len(state.indexed)
    stats.abandoned_messages = dead_abandoned
    stats.max_buffer_seen = max(stats.max_buffer_seen, len(state.buffer))
    cluster.relay.n_received = stats.accepted + stats.rejected + dead_overflow
    cluster.relay.n_forwarded = stats.accepted
    cluster.relay.n_dropped = stats.rejected + dead_overflow

    # -- rebind + restore the controller (after the metrics restore, so
    # the journaled setpoint/ladder gauges are not clobbered) ------------
    if config.control is not None:
        from repro.control import ControlPolicy

        controller = cluster.attach_controller(
            ControlPolicy.from_dict(config.control)
        )
        if state.control is not None:
            controller.restore_state(state.control)

    cluster.load_events(events, skip=state.seen)
    return cluster, config, journal


# ---------------------------------------------------------------------------
# conservation


@dataclass
class ConservationReport:
    """Message accounting across crashes: nothing lost, nothing doubled.

    ``lost`` counts trace messages with no disposition at all;
    ``duplicated`` counts extra dispositions beyond the first.  Both
    must be zero at the end of a completed run, no matter how many
    times the process was killed along the way.
    """

    produced: int
    indexed: int
    dead_lettered: int
    rejected: int
    evicted: int
    in_buffer: int
    duplicated: int
    lost: int

    @property
    def ok(self) -> bool:
        return self.duplicated == 0 and self.lost == 0

    def render(self) -> str:
        """One-line human-readable verdict with every count."""
        verdict = "OK" if self.ok else "VIOLATED"
        return (
            f"conservation {verdict}: produced={self.produced} "
            f"indexed={self.indexed} dead_lettered={self.dead_lettered} "
            f"rejected={self.rejected} evicted={self.evicted} "
            f"in_buffer={self.in_buffer} duplicated={self.duplicated} "
            f"lost={self.lost}"
        )


def reconcile(state: JournalState, produced: int) -> ConservationReport:
    """Check the conservation invariant over a journal's final state."""
    from collections import Counter

    counts: Counter = Counter()
    for e, _m in state.indexed:
        counts[e] += 1
    for e, _m in state.buffer:
        counts[e] += 1
    for d in state.dead:
        counts[d["event"]] += 1
    for e in state.rejected:
        counts[e] += 1
    for e in state.evicted:
        counts[e] += 1
    trace = {e: n for e, n in counts.items() if 0 <= e < produced}
    return ConservationReport(
        produced=produced,
        indexed=sum(1 for e, _m in state.indexed if 0 <= e < produced),
        dead_lettered=sum(1 for d in state.dead if 0 <= d["event"] < produced),
        rejected=sum(1 for e in state.rejected if 0 <= e < produced),
        evicted=sum(1 for e in state.evicted if 0 <= e < produced),
        in_buffer=sum(1 for e, _m in state.buffer if 0 <= e < produced),
        duplicated=sum(n - 1 for n in trace.values() if n > 1),
        lost=produced - len(trace),
    )
