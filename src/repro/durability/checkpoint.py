"""Atomic checkpoint snapshots beside the WAL.

A checkpoint bounds replay: recovery loads the newest valid snapshot
and only replays WAL records past its ``last_wal_seq``.  Durability is
the WAL's job; the checkpoint is an optimisation that must never make
things worse, so writes are atomic (write temp, fsync, rename — a
crash mid-checkpoint leaves the previous one untouched) and loads are
defensive (corrupt or torn snapshots are skipped, falling back to the
next-newest, then to pure WAL replay).
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "checkpoint_paths",
    "load_checkpoint",
    "load_latest_checkpoint",
    "write_checkpoint",
]

CHECKPOINT_FORMAT_VERSION = 1

_CHECKPOINT_GLOB = "checkpoint-*.json"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checkpoint_paths(directory: str | Path) -> list[Path]:
    """Checkpoint files in ``directory``, oldest first."""
    return sorted(Path(directory).glob(_CHECKPOINT_GLOB))


def write_checkpoint(
    directory: str | Path,
    payload: dict,
    *,
    seq: int,
    keep: int = 3,
    registry=None,
    crash_hook=None,
) -> Path:
    """Atomically persist ``payload`` as ``checkpoint-{seq}.json``.

    ``seq`` is the WAL sequence the snapshot is consistent with
    (replay resumes after it).  The temp file is fsynced before the
    rename so the named checkpoint is never torn; ``crash_hook`` (test
    seam) runs between the two, the window where a crash must leave the
    previous checkpoint authoritative.  Older checkpoints beyond
    ``keep`` are pruned.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    # one json.dumps covers both the CRC input and the emitted document
    # (the payload can be large; double-encoding it is measurable)
    canon = _canonical(payload)
    encoded = (
        '{"format_version":%d,"crc":%d,"payload":%s}\n'
        % (CHECKPOINT_FORMAT_VERSION, zlib.crc32(canon.encode("utf-8")), canon)
    ).encode("utf-8")
    final = directory / f"checkpoint-{seq:010d}.json"
    tmp = directory / f".checkpoint-{seq:010d}.tmp"
    with tmp.open("wb") as fh:
        fh.write(encoded)
        fh.flush()
        os.fsync(fh.fileno())
    if crash_hook is not None:
        crash_hook()
    os.replace(tmp, final)

    from repro.obs import wellknown

    wellknown.checkpoint_writes(registry).inc()
    wellknown.checkpoint_last_bytes(registry).set(len(encoded))
    wellknown.checkpoint_last_wal_seq(registry).set(seq)

    if keep >= 1:
        for stale in checkpoint_paths(directory)[:-keep]:
            stale.unlink()
    return final


def load_checkpoint(path: str | Path) -> dict | None:
    """Payload of one checkpoint file, or None if torn/corrupt."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if not isinstance(doc, dict):
        return None
    if doc.get("format_version") != CHECKPOINT_FORMAT_VERSION:
        return None
    payload = doc.get("payload")
    if not isinstance(payload, dict):
        return None
    if doc.get("crc") != zlib.crc32(_canonical(payload).encode("utf-8")):
        return None
    return payload


def load_latest_checkpoint(
    directory: str | Path,
) -> tuple[dict | None, Path | None]:
    """Newest valid checkpoint in ``directory``: ``(payload, path)``.

    Corrupt snapshots are skipped (newest-valid-wins); ``(None, None)``
    means recovery must replay the WAL from the beginning.
    """
    for path in reversed(checkpoint_paths(directory)):
        payload = load_checkpoint(path)
        if payload is not None:
            return payload, path
    return None, None
