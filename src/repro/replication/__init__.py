"""Replicated log store: quorum reads/writes, failover, anti-entropy.

The storage-tier counterpart to the executor resilience (PR 3) and
ingest durability (PR 4) layers: :class:`ReplicatedLogStore`
coordinates N :class:`StoreNode` members with primary+replica shard
placement, quorum writes/reads with read repair, per-node circuit
breakers, hinted handoff, and seq-digest anti-entropy sync.
"""

from repro.replication.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.replication.node import NodeDownError, StoreNode, VersionedDoc
from repro.replication.placement import ShardPlacement
from repro.replication.store import QuorumError, ReplicatedLogStore

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "NodeDownError",
    "QuorumError",
    "ReplicatedLogStore",
    "ShardPlacement",
    "StoreNode",
    "VersionedDoc",
]
