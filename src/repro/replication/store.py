"""The replicated log store: quorum writes/reads over N store nodes.

The paper's Tivan backend is an OpenSearch service "deployed across 6
of the Dell servers" (§4.2) — a replicated store, not a single
process.  :class:`ReplicatedLogStore` is the coordinator in front of N
:class:`~repro.replication.node.StoreNode` members:

- **placement** — static ring preference lists (primary + replicas per
  shard, :class:`~repro.replication.placement.ShardPlacement`),
- **quorum writes** — a batch is acknowledged only when every document
  in it landed on at least W owner nodes; fewer reachable owners fail
  the whole batch with :class:`QuorumError` *before any node mutates*,
  so the Fluentd retry/DLQ machinery sees a clean failed flush, never
  a half-acknowledged batch,
- **quorum reads** — :meth:`get` consults R owner copies, returns the
  highest version, and *read-repairs* any stale or missing copy it saw,
- **health** — one deterministic-clock
  :class:`~repro.replication.health.CircuitBreaker` per node; open
  circuits are skipped on the spot, half-open circuits admit a probe
  whose success triggers the rejoin path,
- **hinted handoff** — writes an unreachable owner missed are queued
  (bounded, drop-oldest) and replayed when the node rejoins,
- **anti-entropy** — per-shard ``(count, checksum)`` seq digests
  compared between owners; mismatched shards are merged
  highest-version-wins, which is what reconverges a node that rejoined
  empty after a SIGKILL-style wipe.

Every decision is surfaced through the ``repro_store_*`` metric
families, and the seedable fault sites ``store.node_down``,
``store.node_slow``, and ``store.partition`` let the chaos suite
exercise failover deterministically.
"""

from __future__ import annotations

import time
from collections import Counter as _Counter
from collections.abc import Sequence
from functools import partial

from repro.core.message import Severity, SyslogMessage
from repro.core.taxonomy import Category
from repro.faults.plan import SITE_NODE_DOWN, SITE_NODE_SLOW, SITE_PARTITION
from repro.obs.propagation import carried, record_hop
from repro.replication.health import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.replication.node import StoreNode
from repro.replication.placement import ShardPlacement
from repro.stream.opensearch import DateHistogramBucket, LogDocument, QueryResult

__all__ = ["QuorumError", "ReplicatedLogStore"]


class QuorumError(RuntimeError):
    """Too few reachable owner nodes to satisfy a quorum.

    Raised *before* any node mutates (writes) or any repair is applied
    (reads), so a failed operation leaves the cluster exactly as it
    found it.
    """

    def __init__(self, op: str, shard: int, needed: int, available: int) -> None:
        super().__init__(
            f"{op} quorum unavailable for shard {shard}: need {needed} "
            f"owner nodes, only {available} reachable"
        )
        self.op = op
        self.shard = shard
        self.needed = needed
        self.available = available


class ReplicatedLogStore:
    """Coordinator over N replicated :class:`StoreNode` members.

    Implements the :class:`~repro.stream.opensearch.LogStore` surface
    the stream layer relies on (``bulk_index``, ``get``,
    ``set_category``, ``__len__``, aggregations), so it drops in as the
    Fluentd sink and the Tivan cluster's store.

    Parameters
    ----------
    n_nodes:
        Store nodes (the paper's deployment: 6 data nodes).
    n_shards:
        Document shards spread over the nodes.
    n_replicas:
        Copies per shard beyond the primary (replication factor is
        ``n_replicas + 1``).
    write_quorum, read_quorum:
        W and R.  Defaults are majority of the replication factor;
        ``W + R > n_replicas + 1`` gives read-your-writes.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`; checked once per
        ``bulk_index`` call at the three ``store.*`` sites.
    clock:
        Deterministic time source for the circuit breakers (a
        simulation passes its event-engine clock); defaults to an
        internal operation counter.
    breaker_failures, breaker_reset:
        Circuit-breaker tuning (consecutive failures to open; clock
        units before a half-open probe).
    hint_limit:
        Max hinted-handoff entries buffered per node; the oldest hint
        is dropped (and counted) beyond it — anti-entropy still
        repairs dropped hints at rejoin.
    registry:
        Metrics registry (default: the process registry).
    """

    def __init__(
        self,
        *,
        n_nodes: int = 3,
        n_shards: int = 6,
        n_replicas: int = 1,
        write_quorum: int | None = None,
        read_quorum: int | None = None,
        fault_injector=None,
        clock=None,
        breaker_failures: int = 3,
        breaker_reset: float = 30.0,
        hint_limit: int = 10_000,
        registry=None,
    ) -> None:
        self.placement = ShardPlacement(
            n_nodes=n_nodes, n_shards=n_shards, n_replicas=n_replicas
        )
        copies = self.placement.copies
        majority = copies // 2 + 1
        self.write_quorum = majority if write_quorum is None else write_quorum
        self.read_quorum = majority if read_quorum is None else read_quorum
        if not 1 <= self.write_quorum <= copies:
            raise ValueError(
                f"write_quorum must be in [1, {copies}], got {self.write_quorum}"
            )
        if not 1 <= self.read_quorum <= copies:
            raise ValueError(
                f"read_quorum must be in [1, {copies}], got {self.read_quorum}"
            )
        if hint_limit < 1:
            raise ValueError(f"hint_limit must be >= 1, got {hint_limit}")
        self.n_shards = n_shards
        self.fault_injector = fault_injector
        self.hint_limit = hint_limit
        self.nodes = [StoreNode(i, n_shards) for i in range(n_nodes)]
        self._ops = 0
        self._clock = clock if clock is not None else (lambda: float(self._ops))
        self.breakers = [
            CircuitBreaker(
                failure_threshold=breaker_failures,
                reset_timeout=breaker_reset,
                clock=self._clock,
                on_transition=partial(self._on_breaker_transition, i),
            )
            for i in range(n_nodes)
        ]
        #: nodes administratively drained by the control plane
        self.quiesced: set[int] = set()
        self._versions: list[int] = []  # per global doc id
        self._hints: list[dict[int, None]] = [dict() for _ in range(n_nodes)]
        self._partitioned: set[int] = set()
        self._injected_down: set[int] = set()
        self._injection_partition = False
        self._rotation = 0  # deterministic victim choice for fault sites
        self._primary: dict[int, int | None] = {}
        self._last_live: frozenset[int] = frozenset()
        # analyzer lives on the coordinator: one analysis per document,
        # shared by every owner copy (the acting primary indexes with
        # the precomputed tokens, replicas store the document only)
        from repro.textproc.normalize import MaskingNormalizer
        from repro.textproc.tokenize import Tokenizer

        self._tokenizer = Tokenizer()
        self._normalizer = MaskingNormalizer()

        from repro.obs import wellknown

        self._m_node_up = wellknown.store_node_up(registry)
        self._m_write_seconds = wellknown.store_quorum_write_seconds(registry)
        self._m_read_seconds = wellknown.store_quorum_read_seconds(registry)
        self._m_quorum_failures = wellknown.store_quorum_failures(registry)
        self._m_hints_queued = wellknown.store_hints_queued(registry)
        self._m_hints_replayed = wellknown.store_hints_replayed(registry)
        self._m_hints_dropped = wellknown.store_hints_dropped(registry)
        self._m_read_repairs = wellknown.store_read_repairs(registry)
        self._m_repair_docs = wellknown.store_repair_docs(registry)
        self._m_breaker_transitions = wellknown.store_breaker_transitions(registry)
        self._m_breaker_state = wellknown.store_breaker_state(registry)
        self._m_timeouts = wellknown.store_node_timeouts(registry)
        for i in range(n_nodes):
            self._m_node_up.set(1, node=str(i))
            self._m_breaker_state.set(0, node=str(i))
        self._rebalance()

    # -- liveness ----------------------------------------------------------

    #: breaker-state gauge encoding: closed < half-open < open severity
    _BREAKER_STATE_CODE = {
        BREAKER_CLOSED: 0,
        BREAKER_HALF_OPEN: 1,
        BREAKER_OPEN: 2,
    }

    def _on_breaker_transition(self, node_id: int, old: str, new: str) -> None:
        self._m_breaker_transitions.inc(state=new)
        self._m_breaker_state.set(
            self._BREAKER_STATE_CODE.get(new, 0), node=str(node_id)
        )

    def _reachable(self, node_id: int) -> bool:
        """Can the coordinator talk to the node right now?"""
        return (
            not self.nodes[node_id].down and node_id not in self._partitioned
        )

    def _available_nodes(self, *, slow: set[int] = frozenset()) -> set[int]:
        """Breaker-gated reachability probe of every node.

        One probe per node per call: an open breaker skips the node
        without touching it (fail-fast); a closed or half-open breaker
        attempts the probe and records the outcome.  A probe success on
        a non-closed breaker is a *rejoin* — the node was written off
        and is back — which replays its hints and anti-entropy-syncs it
        before it serves again.
        """
        live: set[int] = set()
        rejoined: list[int] = []
        for nid in range(len(self.nodes)):
            breaker = self.breakers[nid]
            if not breaker.allow():
                continue
            was = breaker.state
            if nid in slow:
                self._m_timeouts.inc(node=str(nid))
                breaker.record_failure()
            elif self._reachable(nid):
                breaker.record_success()
                if was != BREAKER_CLOSED:
                    rejoined.append(nid)
                live.add(nid)
            else:
                breaker.record_failure()
        for nid in rejoined:
            self._rejoin(nid)
        if live != self._last_live:
            self._last_live = frozenset(live)
            self._rebalance()
        return live

    def quiesce_node(self, node_id: int) -> None:
        """Administratively drain a node (the control plane's demote).

        A quiesced node stays up and keeps serving reads/replica
        writes, but stops being *preferred* as an acting primary: its
        primaries are demoted and re-promoted onto non-quiesced owners
        where one is reachable.  Refuses to quiesce below the quorum
        floor — the control plane must never demote the store into
        unavailability.
        """
        if not 0 <= node_id < len(self.nodes):
            raise ValueError(f"no such node: {node_id}")
        if node_id in self.quiesced:
            return
        floor = max(self.write_quorum, self.read_quorum)
        active = len(self.nodes) - len(self.quiesced)
        if active - 1 < floor:
            raise ValueError(
                f"cannot quiesce node {node_id}: would leave "
                f"{active - 1} active nodes under the quorum floor {floor}"
            )
        self.quiesced.add(node_id)
        self._rebalance()

    def activate_node(self, node_id: int) -> None:
        """Undo :meth:`quiesce_node`; the node is preferred again."""
        if not 0 <= node_id < len(self.nodes):
            raise ValueError(f"no such node: {node_id}")
        if node_id not in self.quiesced:
            return
        self.quiesced.discard(node_id)
        self._rebalance()

    def _rebalance(self) -> None:
        """Reassign acting primaries: first reachable owner per shard.

        Non-quiesced owners are preferred; a shard whose reachable
        owners are all quiesced still gets one of them as acting
        primary — quiescing trades preference, never availability.
        """
        for shard in range(self.n_shards):
            owners = self.placement.owners(shard)
            acting = next(
                (
                    o for o in owners
                    if self._reachable(o) and o not in self.quiesced
                ),
                None,
            )
            if acting is None:
                acting = next((o for o in owners if self._reachable(o)), None)
            previous = self._primary.get(shard)
            if acting == previous:
                continue
            if previous is not None and self._reachable(previous):
                self.nodes[previous].demote(shard)
            if acting is not None:
                self.nodes[acting].promote(shard)
            self._primary[shard] = acting

    # -- fault sites -------------------------------------------------------

    def _check_fault_sites(self) -> set[int]:
        """One arming check per ``store.*`` site; returns slow nodes.

        ``store.node_down`` toggles: it takes a rotating victim down
        (SIGKILL-style, state wiped) when all injection victims are up,
        and restarts the downed one otherwise — so a probabilistic plan
        produces kill/rejoin churn.  ``store.partition`` toggles a
        minority partition on and off.  ``store.node_slow`` makes one
        rotating node time out for the current batch.
        """
        inj = self.fault_injector
        if inj is None:
            return set()
        slow: set[int] = set()
        if inj.should_fire(SITE_NODE_DOWN):
            if self._injected_down:
                nid = min(self._injected_down)
                self._injected_down.discard(nid)
                self.restart_node(nid)
            else:
                nid = self._rotation % len(self.nodes)
                self._rotation += 1
                self._injected_down.add(nid)
                self.kill_node(nid)
        if inj.should_fire(SITE_PARTITION):
            if self._injection_partition:
                self.heal_partition()
                self._injection_partition = False
            else:
                minority = set(range(len(self.nodes)))
                majority_n = len(self.nodes) // 2 + 1
                reachable = set(sorted(minority)[:majority_n])
                self.set_partition(reachable)
                self._injection_partition = True
        if inj.should_fire(SITE_NODE_SLOW):
            slow.add(self._rotation % len(self.nodes))
            self._rotation += 1
        return slow

    # -- writes ------------------------------------------------------------

    def _analyze(self, text: str) -> list[str]:
        return self._tokenizer.tokenize(self._normalizer.normalize(text))

    def bulk_index(self, messages: Sequence[SyslogMessage]) -> bool:
        """Quorum-write a batch (the Fluentd sink contract).

        All-or-nothing: reachability is settled for the whole batch up
        front, so either every document lands on at least W owners (with
        hints queued for the unreachable ones) and the call returns
        True, or :class:`QuorumError` propagates with no node mutated.
        """
        t0 = time.perf_counter()
        self._ops += 1
        slow = self._check_fault_sites()
        live = self._available_nodes(slow=slow)
        # settle write availability per shard before touching any node
        batch_shards = {
            (len(self._versions) + i) % self.n_shards
            for i in range(len(messages))
        }
        for shard in sorted(batch_shards):
            owners = self.placement.owners(shard)
            n_live = sum(1 for o in owners if o in live)
            if n_live < self.write_quorum:
                self._m_quorum_failures.inc(op="write")
                raise QuorumError("write", shard, self.write_quorum, n_live)
        analyzed = [self._analyze(m.text) for m in messages]
        for message, tokens in zip(messages, analyzed):
            doc_id = len(self._versions)
            self._versions.append(1)
            shard = doc_id % self.n_shards
            for owner in self.placement.owners(shard):
                if owner in live:
                    self.nodes[owner].put(
                        doc_id, message, None, 1, tokens=tokens
                    )
                else:
                    self._hint(owner, doc_id)
        wall = time.perf_counter() - t0
        self._m_write_seconds.observe(wall)
        ctxs, clock = carried()
        if ctxs:
            now = clock()
            for ctx in ctxs:
                record_hop(
                    ctx, "store.quorum_write", now,
                    docs=len(messages), quorum=self.write_quorum,
                    wall_ms=round(wall * 1e3, 3),
                )
        return True

    def index(self, message: SyslogMessage, category: Category | None = None) -> int:
        """Quorum-write one document; returns its global doc id."""
        doc_id = len(self._versions)
        self.bulk_index([message])
        if category is not None:
            self.set_category(doc_id, category)
        return doc_id

    def set_category(self, doc_id: int, category: Category) -> None:
        """Attach a classifier verdict, version-bumped, to all owners.

        Unreachable owners are hinted; a rejoined owner converges via
        hint replay (which re-reads the latest copy) or anti-entropy.
        """
        version = self._versions[doc_id] + 1
        self._versions[doc_id] = version
        shard = doc_id % self.n_shards
        for owner in self.placement.owners(shard):
            node = self.nodes[owner]
            if not self._reachable(owner):
                self._hint(owner, doc_id)
                continue
            if not node.apply_category(doc_id, category, version):
                if node.copy_of(doc_id) is None:
                    # the owner missed the original write too
                    self._hint(owner, doc_id)

    def _hint(self, node_id: int, doc_id: int) -> None:
        hints = self._hints[node_id]
        if doc_id in hints:
            return
        if len(hints) >= self.hint_limit:
            oldest = next(iter(hints))
            del hints[oldest]
            self._m_hints_dropped.inc()
        hints[doc_id] = None
        self._m_hints_queued.inc()

    # -- reads -------------------------------------------------------------

    def get(self, doc_id: int) -> LogDocument:
        """Quorum-read one document, repairing divergent copies.

        R owner copies are consulted; the highest-version copy wins and
        is pushed back to any reader that returned a stale or missing
        copy (read repair).

        Raises
        ------
        IndexError
            Unknown doc id (matching ``LogStore.get``).
        QuorumError
            Fewer than R owners reachable.
        """
        if not 0 <= doc_id < len(self._versions):
            raise IndexError(f"doc id {doc_id} out of range")
        t0 = time.perf_counter()
        self._ops += 1
        shard = doc_id % self.n_shards
        owners = self.placement.owners(shard)
        readers = [o for o in owners if self._reachable(o)]
        if len(readers) < self.read_quorum:
            self._m_quorum_failures.inc(op="read")
            raise QuorumError("read", shard, self.read_quorum, len(readers))
        readers = readers[: self.read_quorum]
        copies = [(nid, self.nodes[nid].get(doc_id)) for nid in readers]
        best = None
        for _nid, copy in copies:
            if copy is not None and (best is None or copy.version > best.version):
                best = copy
        if best is None:
            # W+R > copies makes this unreachable for acknowledged
            # writes; an unacknowledged id would have raised IndexError
            raise IndexError(f"doc id {doc_id} found on no reachable replica")
        repaired = 0
        for nid, copy in copies:
            if copy is None or copy.version < best.version:
                self.nodes[nid].put(
                    doc_id, best.message, best.category, best.version
                )
                repaired += 1
        if repaired:
            self._m_read_repairs.inc(repaired)
        self._m_read_seconds.observe(time.perf_counter() - t0)
        return LogDocument(
            doc_id=doc_id, message=best.message, category=best.category
        )

    def __len__(self) -> int:
        return len(self._versions)

    def iter_documents(self):
        """Best-effort snapshot iteration in doc-id order (no quorum).

        Checkpointing and dashboards read through here; each document
        comes from the first reachable owner holding a copy.
        """
        for doc_id in range(len(self._versions)):
            shard = doc_id % self.n_shards
            for owner in self.placement.owners(shard):
                if not self._reachable(owner):
                    continue
                copy = self.nodes[owner].copy_of(doc_id)
                if copy is not None:
                    yield LogDocument(
                        doc_id=doc_id,
                        message=copy.message,
                        category=copy.category,
                    )
                    break

    # -- failover / repair -------------------------------------------------

    def kill_node(self, node_id: int, *, wipe: bool = True) -> None:
        """Take a node down (``wipe`` loses its state, SIGKILL-style)."""
        self.nodes[node_id].kill(wipe=wipe)
        self._m_node_up.set(0, node=str(node_id))
        self._rebalance()

    def restart_node(self, node_id: int) -> None:
        """Bring a node back: replay hints, anti-entropy, re-promote."""
        self.nodes[node_id].restart()
        self.breakers[node_id].reset()
        self._injected_down.discard(node_id)
        self._m_node_up.set(1, node=str(node_id))
        self._rejoin(node_id)

    def _rejoin(self, node_id: int) -> None:
        self._m_node_up.set(1, node=str(node_id))
        self._replay_hints(node_id)
        self.sync_node(node_id)
        self._rebalance()

    def _replay_hints(self, node_id: int) -> None:
        hints = self._hints[node_id]
        if not hints:
            return
        node = self.nodes[node_id]
        replayed = 0
        for doc_id in list(hints):
            best = self._best_copy(doc_id, exclude=node_id)
            if best is not None:
                node.put(doc_id, best.message, best.category, best.version)
                replayed += 1
        self._hints[node_id] = dict()
        if replayed:
            self._m_hints_replayed.inc(replayed)

    def _best_copy(self, doc_id: int, *, exclude: int | None = None):
        shard = doc_id % self.n_shards
        best = None
        for owner in self.placement.owners(shard):
            if owner == exclude or not self._reachable(owner):
                continue
            copy = self.nodes[owner].copy_of(doc_id)
            if copy is not None and (best is None or copy.version > best.version):
                best = copy
        return best

    def sync_node(self, node_id: int) -> int:
        """Anti-entropy one node against its peers; returns docs repaired."""
        return self._sync_shards(self.placement.shards_owned_by(node_id))

    def sync_all(self) -> int:
        """Full anti-entropy sweep over every shard; returns docs repaired."""
        return self._sync_shards(range(self.n_shards))

    def _sync_shards(self, shards) -> int:
        """Merge reachable owners of each shard, highest version wins.

        Digests gate the work: owners whose per-shard seq digests all
        agree are skipped without touching a single document.
        """
        repaired = 0
        for shard in shards:
            owners = [
                o for o in self.placement.owners(shard) if self._reachable(o)
            ]
            if len(owners) < 2:
                continue
            digests = {self.nodes[o].seq_digest(shard) for o in owners}
            if len(digests) == 1:
                continue
            union: set[int] = set()
            for owner in owners:
                union |= self.nodes[owner].shard_doc_ids(shard)
            for doc_id in sorted(union):
                best = None
                for owner in owners:
                    copy = self.nodes[owner].copy_of(doc_id)
                    if copy is not None and (
                        best is None or copy.version > best.version
                    ):
                        best = copy
                for owner in owners:
                    copy = self.nodes[owner].copy_of(doc_id)
                    if copy is None or copy.version < best.version:
                        self.nodes[owner].put(
                            doc_id, best.message, best.category, best.version
                        )
                        repaired += 1
        if repaired:
            self._m_repair_docs.inc(repaired)
        return repaired

    # -- partitions --------------------------------------------------------

    def set_partition(self, reachable) -> None:
        """Partition the cluster: only ``reachable`` node ids respond.

        The coordinator models the majority side; the minority side is
        simply unreachable, and writes needing more owners than the
        reachable side holds are refused (:class:`QuorumError`) — the
        split-brain refusal the partition tests assert.
        """
        reachable = set(reachable)
        unknown = reachable - set(range(len(self.nodes)))
        if unknown:
            raise ValueError(f"unknown node ids in partition: {sorted(unknown)}")
        self._partitioned = set(range(len(self.nodes))) - reachable
        for nid in range(len(self.nodes)):
            self._m_node_up.set(
                1 if self._reachable(nid) else 0, node=str(nid)
            )
        self._rebalance()

    def heal_partition(self) -> None:
        """Remove the partition; isolated nodes rejoin via sync."""
        was_partitioned = sorted(self._partitioned)
        self._partitioned = set()
        for nid in was_partitioned:
            if not self.nodes[nid].down:
                self._rejoin(nid)
        self._rebalance()

    # -- queries (acting primaries) ---------------------------------------

    def term_query(
        self,
        term: str,
        *,
        t0: float | None = None,
        t1: float | None = None,
        limit: int | None = None,
        max_severity: "Severity | None" = None,
    ) -> QueryResult:
        """Fan a term query out to the acting primary of each shard."""
        hits: list[LogDocument] = []
        for nid in {
            p for p in self._primary.values() if p is not None
        }:
            node = self.nodes[nid]
            if node.down:
                continue
            result = node.search_index.term_query(
                term, t0=t0, t1=t1, max_severity=max_severity
            )
            for doc in node.global_docs(result.docs):
                # ownership filter: only the shard's current acting
                # primary contributes it (a demoted index may retain
                # stale residents; they are skipped here)
                if self._primary.get(doc.doc_id % self.n_shards) == nid:
                    hits.append(doc)
        hits.sort(key=lambda d: d.doc_id)
        total = len(hits)
        if limit is not None:
            hits = hits[:limit]
        return QueryResult(docs=tuple(hits), total=total)

    def _iter_copies(self, t0: float | None, t1: float | None):
        """Documents in range via each shard's first reachable owner."""
        lo = t0 if t0 is not None else float("-inf")
        hi = t1 if t1 is not None else float("inf")
        for shard in range(self.n_shards):
            reader = next(
                (
                    o
                    for o in self.placement.owners(shard)
                    if self._reachable(o)
                ),
                None,
            )
            if reader is None:
                continue
            node = self.nodes[reader]
            for doc_id in node.shard_doc_ids(shard):
                copy = node.copy_of(doc_id)
                if copy is not None and lo <= copy.message.timestamp < hi:
                    yield copy

    def terms_aggregation(
        self,
        field_name: str,
        *,
        top: int = 10,
        t0: float | None = None,
        t1: float | None = None,
    ) -> list[tuple[str, int]]:
        """Top field values merged across shard owners (count-only)."""
        if field_name not in ("hostname", "app", "category"):
            raise ValueError(f"cannot aggregate on field {field_name!r}")
        counter: _Counter[str] = _Counter()
        for copy in self._iter_copies(t0, t1):
            if field_name == "category":
                if copy.category is not None:
                    counter[copy.category.value] += 1
            else:
                counter[getattr(copy.message, field_name)] += 1
        return counter.most_common(top)

    def severity_histogram(
        self, *, t0: float | None = None, t1: float | None = None
    ) -> dict[Severity, int]:
        """Document counts per severity, merged across shard owners."""
        out: dict[Severity, int] = {}
        for copy in self._iter_copies(t0, t1):
            sev = copy.message.severity
            out[sev] = out.get(sev, 0) + 1
        return out

    def date_histogram(
        self,
        *,
        interval_s: float,
        t0: float | None = None,
        t1: float | None = None,
        term: str | None = None,
    ) -> list[DateHistogramBucket]:
        """Counts per fixed interval, merged across shard owners."""
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        if term is not None:
            times = sorted(
                d.message.timestamp
                for d in self.term_query(term, t0=t0, t1=t1).docs
            )
        else:
            times = sorted(
                c.message.timestamp for c in self._iter_copies(t0, t1)
            )
        if not times:
            return []
        start = (t0 if t0 is not None else times[0]) // interval_s * interval_s
        counts: _Counter[int] = _Counter(
            int((t - start) // interval_s) for t in times
        )
        n_buckets = int((times[-1] - start) // interval_s) + 1
        return [
            DateHistogramBucket(
                start=start + b * interval_s, count=counts.get(b, 0)
            )
            for b in range(n_buckets)
        ]

    # -- ops visibility ----------------------------------------------------

    def shard_counts(self) -> list[int]:
        """Documents per shard (from each shard's first reachable owner)."""
        out = [0] * self.n_shards
        for shard in range(self.n_shards):
            for owner in self.placement.owners(shard):
                if self._reachable(owner):
                    out[shard] = len(self.nodes[owner].shard_doc_ids(shard))
                    break
        return out

    def index_stats(self) -> dict[str, int]:
        """Coarse size statistics aggregated over acting primaries."""
        unique_terms = 0
        postings = 0
        for nid in {p for p in self._primary.values() if p is not None}:
            stats = self.nodes[nid].search_index.index_stats()
            unique_terms += stats["unique_terms"]
            postings += stats["postings"]
        return {
            "docs": len(self._versions),
            "unique_terms": unique_terms,
            "postings": postings,
        }

    def seq_digests(self) -> dict[int, dict[int, tuple[int, int]]]:
        """Per-node, per-owned-shard seq digests (convergence check)."""
        return {
            node.node_id: {
                shard: node.seq_digest(shard)
                for shard in self.placement.shards_owned_by(node.node_id)
            }
            for node in self.nodes
        }

    def node_health(self) -> list[dict]:
        """One status row per node (the ops/debug view)."""
        return [
            {
                "node": nid,
                "up": self._reachable(nid),
                "breaker": self.breakers[nid].state,
                "docs": len(self.nodes[nid]),
                "hints": len(self._hints[nid]),
                "primary_shards": sorted(self.nodes[nid].primary_shards),
            }
            for nid in range(len(self.nodes))
        ]

    @property
    def hints_pending(self) -> int:
        """Hinted-handoff entries currently buffered across all nodes."""
        return sum(len(h) for h in self._hints)
