"""Per-node health tracking: a deterministic circuit breaker.

The coordinator must not pay a timeout on every write to a node that
has been dead for minutes — after a few consecutive failures it should
*stop trying* and route around, then probe occasionally so a recovered
node rejoins without an operator.  That is the classic circuit breaker:

- **closed** — requests flow; consecutive failures are counted,
- **open** — requests are refused on the spot (fail-fast) until
  ``reset_timeout`` has elapsed on the breaker's clock,
- **half-open** — one probe is allowed through; success closes the
  circuit, failure re-opens it and restarts the timeout.

The clock is injected (any ``() -> float`` callable) so simulations
drive breakers off the deterministic event-engine clock and unit tests
off a hand-cranked counter — state transitions are then a pure function
of the recorded successes/failures and clock readings, never of
wall-clock scheduling.
"""

from __future__ import annotations

from collections.abc import Callable

__all__ = ["CircuitBreaker", "BREAKER_CLOSED", "BREAKER_OPEN", "BREAKER_HALF_OPEN"]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Fail-fast gate over one unreliable dependency.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the circuit open.
    reset_timeout:
        Clock units the circuit stays open before allowing a probe.
    clock:
        Monotonic time source; defaults to an internal counter that
        advances by one on every :meth:`allow` call, so a breaker with
        no external clock still re-probes after ``reset_timeout``
        refused requests.
    on_transition:
        Optional ``(old_state, new_state) -> None`` hook (the
        coordinator mirrors transitions into metrics).
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] | None = None,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._ticks = 0  # internal clock when none injected
        self.on_transition = on_transition
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0.0

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return float(self._ticks)

    def _move(self, state: str) -> None:
        if state != self.state:
            old, self.state = self.state, state
            if self.on_transition is not None:
                self.on_transition(old, state)

    def allow(self) -> bool:
        """May a request be attempted right now?

        Open circuits refuse until ``reset_timeout`` elapses, then
        transition to half-open and admit exactly one probe (further
        calls refuse until that probe's outcome is recorded).
        """
        if self._clock is None:
            self._ticks += 1
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if self._now() - self._opened_at >= self.reset_timeout:
                self._move(BREAKER_HALF_OPEN)
                return True
            return False
        return False  # half-open: probe already in flight

    def record_success(self) -> None:
        """A request succeeded: close the circuit, reset the count."""
        self.consecutive_failures = 0
        self._move(BREAKER_CLOSED)

    def record_failure(self) -> None:
        """A request failed (or timed out): count it, maybe trip open."""
        self.consecutive_failures += 1
        if (
            self.state == BREAKER_HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        ):
            self._opened_at = self._now()
            self._move(BREAKER_OPEN)

    def reset(self) -> None:
        """Force-close (an operator explicitly restarted the node)."""
        self.consecutive_failures = 0
        self._move(BREAKER_CLOSED)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures})"
        )
