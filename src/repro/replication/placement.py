"""Primary+replica shard placement over a fixed node ring.

The paper's OpenSearch deployment spreads 6 shards with one replica
over 6 data nodes (§4.2, matching :data:`repro.stream.capacity.
PAPER_CLUSTER`'s ``replicas=1``).  This module computes the static
*preference list* for each shard: the primary node and its replica
nodes, laid out ring-style (shard ``s`` prefers nodes ``s % N``,
``(s+1) % N``, …) so every node carries an equal share of primary and
replica load.

Placement is intentionally static — nodes fail and rejoin, but the
preference list never changes; the coordinator routes around dead
entries (promoting the next live owner to acting primary) and hinted
handoff + anti-entropy bring a rejoined owner back up to date.  Static
placement is what makes the replicated store deterministic enough for
the chaos suite to assert exact outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShardPlacement"]


@dataclass(frozen=True)
class ShardPlacement:
    """The static shard → nodes map.

    Parameters
    ----------
    n_nodes:
        Store nodes in the ring.
    n_shards:
        Document shards (documents route by ``doc_id % n_shards``).
    n_replicas:
        Extra copies per shard beyond the primary; each shard lives on
        ``n_replicas + 1`` distinct nodes, so ``n_replicas < n_nodes``.
    """

    n_nodes: int
    n_shards: int = 6
    n_replicas: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if not 0 <= self.n_replicas < self.n_nodes:
            raise ValueError(
                f"n_replicas must be in [0, n_nodes), got "
                f"{self.n_replicas} with n_nodes={self.n_nodes}"
            )

    @property
    def copies(self) -> int:
        """Total copies of each document (primary + replicas)."""
        return self.n_replicas + 1

    def shard_of(self, doc_id: int) -> int:
        """The shard a document routes to."""
        return doc_id % self.n_shards

    def owners(self, shard: int) -> tuple[int, ...]:
        """The shard's preference list: primary first, then replicas."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
        return tuple((shard + i) % self.n_nodes for i in range(self.copies))

    def shards_owned_by(self, node_id: int) -> tuple[int, ...]:
        """Every shard whose preference list contains ``node_id``."""
        return tuple(
            s for s in range(self.n_shards) if node_id in self.owners(s)
        )

    def primary_of(self, shard: int) -> int:
        """The shard's first-preference (home) primary node."""
        return self.owners(shard)[0]
