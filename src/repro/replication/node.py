"""One storage node: a versioned document copy plus a search index.

A node holds two structures with different jobs:

- the **replica map** — ``doc_id → (message, category, version)`` for
  every shard the node owns.  This is the durability structure: cheap
  to write (a dict put), compared byte-for-byte by anti-entropy
  digests, and the thing quorum reads consult.
- the **search index** — a full :class:`~repro.stream.opensearch.
  LogStore` holding only the shards the node is *acting primary* for.
  Inverted-index maintenance is the expensive part of a write, so
  replicas don't pay it; when a replica is promoted after a primary
  failure it builds the index for the new shard from its replica map
  (the catch-up cost of failover, not of every write).  This mirrors
  how real engines replicate the document log and treat index
  structures as node-local derived state.

All node operations raise :class:`NodeDownError` while the node is
down, so the coordinator's health tracking sees failures exactly where
a remote store would produce timeouts.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core.taxonomy import Category
from repro.core.message import SyslogMessage
from repro.stream.opensearch import LogDocument, LogStore

__all__ = ["NodeDownError", "StoreNode", "VersionedDoc"]


class NodeDownError(RuntimeError):
    """An operation reached a node that is down (simulated timeout)."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"store node {node_id} is down")
        self.node_id = node_id


@dataclass(slots=True)
class VersionedDoc:
    """One node's copy of a document.

    ``version`` starts at 1 when the document is first indexed and is
    bumped by every category update, so divergent copies (a node missed
    a write while down) are ordered: highest version wins, and equal
    versions are byte-identical by construction (the coordinator is the
    single writer).
    """

    message: SyslogMessage
    category: Category | None
    version: int


class StoreNode:
    """One member of a :class:`~repro.replication.ReplicatedLogStore`."""

    def __init__(self, node_id: int, n_shards: int) -> None:
        self.node_id = node_id
        self.n_shards = n_shards
        self.down = False
        self._docs: dict[int, VersionedDoc] = {}
        self._shard_ids: dict[int, set[int]] = {}
        # acting-primary search index over primary shards only
        self.search_index = LogStore(n_shards=1)
        self._local_gids: list[int] = []  # local doc id -> global doc id
        self._local_of: dict[int, int] = {}  # global doc id -> local
        self.primary_shards: set[int] = set()

    # -- liveness ----------------------------------------------------------

    def ping(self) -> None:
        """Raise :class:`NodeDownError` when the node is unreachable."""
        if self.down:
            raise NodeDownError(self.node_id)

    def kill(self, *, wipe: bool = True) -> None:
        """Take the node down; ``wipe`` loses its state (SIGKILL-style,
        disk and all) so recovery must come from its peers."""
        self.down = True
        if wipe:
            self._docs.clear()
            self._shard_ids.clear()
            self.search_index = LogStore(n_shards=1)
            self._local_gids.clear()
            self._local_of.clear()
            self.primary_shards.clear()

    def restart(self) -> None:
        """Bring the node back up (possibly empty; peers re-seed it)."""
        self.down = False

    # -- writes ------------------------------------------------------------

    def put(
        self,
        doc_id: int,
        message: SyslogMessage,
        category: Category | None,
        version: int,
        *,
        tokens: list[str] | None = None,
    ) -> bool:
        """Store (or refresh) one document copy; False when stale.

        Idempotent and monotone: a copy at ``version`` or newer is left
        untouched, so hint replay and anti-entropy can push the same
        document any number of times.
        """
        self.ping()
        shard = doc_id % self.n_shards
        existing = self._docs.get(doc_id)
        if existing is not None and existing.version >= version:
            return False
        if existing is None:
            self._shard_ids.setdefault(shard, set()).add(doc_id)
        self._docs[doc_id] = VersionedDoc(
            message=message, category=category, version=version
        )
        if shard in self.primary_shards:
            self._index_doc(doc_id, message, category, tokens)
        return True

    def apply_category(self, doc_id: int, category: Category, version: int) -> bool:
        """Attach a later-version category; False when unknown/stale."""
        self.ping()
        doc = self._docs.get(doc_id)
        if doc is None or doc.version >= version:
            return False
        doc.category = category
        doc.version = version
        local = self._local_of.get(doc_id)
        if local is not None:
            self.search_index.set_category(local, category)
        return True

    def _index_doc(self, doc_id, message, category, tokens) -> None:
        local = self._local_of.get(doc_id)
        if local is not None:
            if category is not None:
                self.search_index.set_category(local, category)
            return
        local = self.search_index.index(message, category, _tokens=tokens)
        self._local_gids.append(doc_id)
        self._local_of[doc_id] = local

    # -- reads -------------------------------------------------------------

    def get(self, doc_id: int) -> VersionedDoc | None:
        """This node's copy of the document, or None when absent."""
        self.ping()
        return self._docs.get(doc_id)

    def global_docs(self, result_docs) -> list[LogDocument]:
        """Map search-index hits back to globally-numbered documents."""
        return [
            LogDocument(
                doc_id=self._local_gids[d.doc_id],
                message=d.message,
                category=d.category,
            )
            for d in result_docs
        ]

    def shard_doc_ids(self, shard: int) -> set[int]:
        """Document ids this node holds for ``shard`` (live or not —
        anti-entropy planning reads peers while a node is being
        compared, not written)."""
        return self._shard_ids.get(shard, set())

    def copy_of(self, doc_id: int) -> VersionedDoc | None:
        """Liveness-unchecked read for anti-entropy source traversal."""
        return self._docs.get(doc_id)

    # -- roles -------------------------------------------------------------

    def promote(self, shard: int) -> int:
        """Become acting primary for ``shard``; returns docs indexed.

        Builds the missing slice of the search index from the replica
        map (in doc-id order, so local ordering matches global).
        """
        self.ping()
        self.primary_shards.add(shard)
        n = 0
        for doc_id in sorted(self._shard_ids.get(shard, ())):
            if doc_id not in self._local_of:
                doc = self._docs[doc_id]
                self._index_doc(doc_id, doc.message, doc.category, None)
                n += 1
        return n

    def demote(self, shard: int) -> None:
        """Stop acting as primary for ``shard``.

        Already-indexed documents stay in the search index (rebuilding
        without them would cost more than they do); the coordinator
        only routes a shard's queries to its current acting primary,
        so stale residents are never double-read.
        """
        self.primary_shards.discard(shard)

    # -- anti-entropy ------------------------------------------------------

    def seq_digest(self, shard: int) -> tuple[int, int]:
        """Order-independent ``(count, checksum)`` digest of a shard.

        Two nodes hold identical shard contents iff their digests match
        (up to CRC collisions): the checksum XORs a CRC32 of every
        ``doc_id:version`` pair, so any missing document or stale
        version shows up without shipping the documents themselves.
        """
        ids = self._shard_ids.get(shard, ())
        checksum = 0
        for doc_id in ids:
            doc = self._docs[doc_id]
            checksum ^= zlib.crc32(f"{doc_id}:{doc.version}".encode())
        return (len(ids), checksum)

    # -- stats -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._docs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "down" if self.down else "up"
        return (
            f"StoreNode(id={self.node_id}, {state}, docs={len(self._docs)}, "
            f"primary_shards={sorted(self.primary_shards)})"
        )
