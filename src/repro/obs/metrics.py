"""Metrics primitives: counters, gauges, histograms, and the registry.

The paper's Tivan stack terminates in Grafana panels fed by OpenSearch —
monitoring *is* the deliverable (§4.2) — so the reproduction needs live
operational telemetry, not just after-the-fact reports.  This module is
the metrics half of :mod:`repro.obs`: a process-wide registry of
:class:`Counter` / :class:`Gauge` / :class:`Histogram` families with
labels, thread-safe updates, and two exposition formats (Prometheus
text and a JSON snapshot) so the counters a run accumulates can feed a
real scrape endpoint or a file handed to ``repro-syslog metrics``.

Design notes
------------
- A *family* is one named metric (``repro_pipeline_stage_seconds``)
  with a fixed label-name tuple; a *child* is one label-value
  combination.  Unlabeled families materialize their single child at
  construction, so declared metrics expose a zero sample before the
  first event — standard Prometheus client behaviour.
- Updates take the family lock.  The hot path observes once per
  *batch*, not per message, so lock cost is irrelevant there.
- Everything pickles: locks are dropped on ``__getstate__`` and
  recreated on ``__setstate__`` (pipelines holding metric references
  cross process boundaries under the sharded executor).
"""

from __future__ import annotations

import bisect
import json
import re
import threading
import time
from collections.abc import Sequence
from pathlib import Path

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "default_latency_buckets",
    "default_registry",
    "set_default_registry",
    "use_registry",
    "histogram_quantile",
    "parse_prometheus",
    "write_snapshot",
    "load_snapshot",
    "restore_snapshot",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def default_latency_buckets() -> tuple[float, ...]:
    """Fixed log-scale latency buckets: 1µs to 50s, 1-2.5-5 per decade.

    Wide enough to hold both a single vectorize stage on a small batch
    (tens of µs) and a full sharded dispatch (seconds) in one scheme,
    so every latency histogram in the repo shares bucket edges and
    panels are directly comparable.
    """
    return tuple(m * 10.0 ** e for e in range(-6, 2) for m in (1.0, 2.5, 5.0))


def _validate_labels(label_names: Sequence[str]) -> tuple[str, ...]:
    names = tuple(label_names)
    for n in names:
        if not _LABEL_RE.match(n):
            raise ValueError(f"invalid label name {n!r}")
    return names


class _Child:
    """One label-value combination of a family; holds the value(s)."""

    __slots__ = ("_family",)

    #: real metrics record what they are given; instrumented code may
    #: check this before *computing* an expensive value (a gauge that
    #: scans a data structure, say) so a :class:`NullRegistry` skips
    #: the computation too, not just the write
    live = True

    def __init__(self, family: "_Family") -> None:
        self._family = family


class _CounterChild(_Child):
    __slots__ = ("value",)

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._family._lock:
            self.value += amount


class _GaugeChild(_Child):
    __slots__ = ("value",)

    def __init__(self, family: "_Family") -> None:
        super().__init__(family)
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._family._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._family._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _HistogramChild(_Child):
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, family: "Histogram") -> None:
        super().__init__(family)
        # one slot per finite upper edge, plus the +Inf overflow slot
        self.bucket_counts = [0] * (len(family.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        fam = self._family
        with fam._lock:
            # Prometheus buckets are "le": a value on an edge counts in
            # that edge's bucket, so the first edge >= value wins
            self.bucket_counts[bisect.bisect_left(fam.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper-edge, cumulative-count) pairs; the last edge is +Inf."""
        out, running = [], 0
        edges = (*self._family.buckets, float("inf"))
        for edge, n in zip(edges, self.bucket_counts):
            running += n
            out.append((edge, running))
        return out


class _Family:
    """Base of one named metric with a fixed label-name tuple."""

    kind = "untyped"
    _child_cls: type = _Child
    #: see :attr:`_Child.live`
    live = True

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names = _validate_labels(labels)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], _Child] = {}
        if not self.label_names:
            self._child(())

    def _child(self, key: tuple[str, ...]):
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._child_cls(self)
            return child

    def labels(self, **labels: str):
        """The child for one label-value combination (created on demand)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return self._child(tuple(str(labels[n]) for n in self.label_names))

    def samples(self) -> list[tuple[dict[str, str], _Child]]:
        """(label-dict, child) pairs in insertion order."""
        with self._lock:
            items = list(self._children.items())
        return [(dict(zip(self.label_names, key)), c) for key, c in items]

    # locks do not pickle; recreate them on load
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(_Family):
    """Monotonically increasing count (messages, drops, batches)."""

    kind = "counter"
    _child_cls = _CounterChild

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (>= 0) to the child for ``labels``."""
        (self.labels(**labels) if labels else self._child(())).inc(amount)

    def value(self, **labels: str) -> float:
        """Current value of the child for ``labels``."""
        return (self.labels(**labels) if labels else self._child(())).value


class Gauge(_Family):
    """Point-in-time level (buffer depth, backlog)."""

    kind = "gauge"
    _child_cls = _GaugeChild

    def set(self, value: float, **labels: str) -> None:
        """Set the child for ``labels`` to ``value``."""
        (self.labels(**labels) if labels else self._child(())).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the child for ``labels``."""
        (self.labels(**labels) if labels else self._child(())).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the child for ``labels``."""
        (self.labels(**labels) if labels else self._child(())).dec(amount)

    def value(self, **labels: str) -> float:
        """Current value of the child for ``labels``."""
        return (self.labels(**labels) if labels else self._child(())).value


class Histogram(_Family):
    """Distribution over fixed buckets (log-scale latency by default)."""

    kind = "histogram"
    _child_cls = _HistogramChild

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        edges = tuple(buckets) if buckets is not None else default_latency_buckets()
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        if list(edges) != sorted(edges):
            raise ValueError(f"bucket edges must be sorted, got {edges}")
        self.buckets = edges
        super().__init__(name, help, labels)

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation into the child for ``labels``."""
        (self.labels(**labels) if labels else self._child(())).observe(value)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-wide home of metric families.

    Factory methods are get-or-create: instrumented modules can resolve
    the same family independently without coordinating, and asking for
    an existing name with a different type or label set is an error
    (silent divergence would corrupt the exposition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self.created_at = time.time()

    # -- factories -----------------------------------------------------

    def _get_or_create(self, cls, name, help, labels, **kwargs) -> _Family:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = cls(name, help, labels, **kwargs)
                return fam
        if not isinstance(fam, cls):
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, "
                f"requested {cls.kind}"
            )
        if fam.label_names != _validate_labels(labels):
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{fam.label_names}, requested {tuple(labels)}"
            )
        return fam

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        """Get or create the :class:`Counter` family ``name``."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        """Get or create the :class:`Gauge` family ``name``."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        """Get or create the :class:`Histogram` family ``name``."""
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- access --------------------------------------------------------

    def collect(self) -> list[_Family]:
        """All families in registration order."""
        with self._lock:
            return list(self._families.values())

    def get(self, name: str) -> _Family | None:
        """The family registered as ``name``, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def reset(self) -> None:
        """Drop every family (tests and benchmark isolation)."""
        with self._lock:
            self._families.clear()
        self.created_at = time.time()

    # registries ride along when a pipeline crosses a process boundary
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- exposition ----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of every family.

        Histogram buckets are cumulative ``[upper_edge, count]`` pairs
        with the overflow edge spelled ``"+Inf"`` (JSON has no
        Infinity literal).
        """
        metrics = []
        for fam in self.collect():
            entry: dict = {
                "name": fam.name,
                "type": fam.kind,
                "help": fam.help,
                "label_names": list(fam.label_names),
                "samples": [],
            }
            for labels, child in fam.samples():
                if fam.kind == "histogram":
                    entry["samples"].append({
                        "labels": labels,
                        "buckets": [
                            ["+Inf" if edge == float("inf") else edge, n]
                            for edge, n in child.cumulative()
                        ],
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    entry["samples"].append({"labels": labels, "value": child.value})
            metrics.append(entry)
        return {
            "uptime_seconds": time.time() - self.created_at,
            "metrics": metrics,
        }

    def to_json(self) -> str:
        """The snapshot as an indented JSON string."""
        return json.dumps(self.snapshot(), indent=2)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        return render_prometheus(self.snapshot())


class _NullMetric:
    """A metric that forgets everything; answers every family API."""

    #: lets callers skip computing values that would be thrown away
    live = False

    def labels(self, **labels: str) -> "_NullMetric":
        return self

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """A registry whose metrics are shared no-ops.

    Install with :func:`set_default_registry` (or :func:`use_registry`)
    to measure the hot path with instrumentation compiled down to
    nothing — ``benchmarks/bench_obs_overhead.py`` uses exactly this to
    bound the cost of the default registry.
    """

    def counter(self, name, help="", labels=()):  # type: ignore[override]
        """The shared no-op metric."""
        return _NULL_METRIC

    def gauge(self, name, help="", labels=()):  # type: ignore[override]
        """The shared no-op metric."""
        return _NULL_METRIC

    def histogram(self, name, help="", labels=(), buckets=None):  # type: ignore[override]
        """The shared no-op metric."""
        return _NULL_METRIC

    def collect(self):  # type: ignore[override]
        """Always empty: nothing is ever recorded."""
        return []


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code writes to."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous


class use_registry:
    """Context manager: install ``registry`` as the process default.

    ::

        with use_registry(MetricsRegistry()) as reg:
            pipe.classify_batch(batch)
        print(reg.to_prometheus())
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._previous: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_default_registry(self.registry)
        return self.registry

    def __exit__(self, *exc) -> None:
        assert self._previous is not None
        set_default_registry(self._previous)


# -- quantiles ---------------------------------------------------------


def histogram_quantile(buckets: Sequence[tuple[float, int]], q: float) -> float:
    """Estimate the q-quantile from cumulative (edge, count) buckets.

    Linear interpolation inside the winning bucket, the same estimator
    Prometheus' ``histogram_quantile`` uses; values beyond the last
    finite edge clamp to it.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not buckets:
        return 0.0
    total = buckets[-1][1]
    if total == 0:
        return 0.0
    rank = q * total
    prev_edge, prev_cum = 0.0, 0
    for edge, cum in buckets:
        if cum >= rank:
            if edge == float("inf"):
                return prev_edge
            if cum == prev_cum:
                return edge
            frac = (rank - prev_cum) / (cum - prev_cum)
            return prev_edge + frac * (edge - prev_edge)
        prev_edge, prev_cum = (0.0 if edge == float("inf") else edge), cum
    return prev_edge


# -- Prometheus text rendering / parsing -------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _fmt_labels(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    pairs = [(k, v) for k, v in labels.items()]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _fmt_edge(edge) -> str:
    return "+Inf" if edge in ("+Inf", float("inf")) else _fmt_value(float(edge))


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot as Prometheus text format."""
    lines: list[str] = []
    for metric in snapshot["metrics"]:
        name, kind = metric["name"], metric["type"]
        if metric.get("help"):
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in metric["samples"]:
            labels = sample.get("labels", {})
            if kind == "histogram":
                for edge, count in sample["buckets"]:
                    lines.append(
                        f"{name}_bucket"
                        f"{_fmt_labels(labels, ('le', _fmt_edge(edge)))} {count}"
                    )
                lines.append(f"{name}_sum{_fmt_labels(labels)} "
                             f"{_fmt_value(sample['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(labels)} "
                             f"{sample['count']}")
            else:
                lines.append(f"{name}{_fmt_labels(labels)} "
                             f"{_fmt_value(sample['value'])}")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return value.replace(r"\n", "\n").replace(r"\"", '"').replace(r"\\", "\\")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus text format back into a snapshot dict.

    The inverse of :func:`render_prometheus` (modulo ``uptime_seconds``,
    which a text file does not carry): ``repro-syslog metrics file.prom``
    uses this to re-render a scraped/dumped exposition as panels.
    """
    metrics: dict[str, dict] = {}
    types: dict[str, str] = {}
    helps: dict[str, str] = {}

    def base_name(name: str) -> str:
        for suffix in ("_bucket", "_sum", "_count"):
            stripped = name.removesuffix(suffix)
            if stripped != name and types.get(stripped) == "histogram":
                return stripped
        return name

    def entry(name: str) -> dict:
        if name not in metrics:
            metrics[name] = {
                "name": name,
                "type": types.get(name, "untyped"),
                "help": helps.get(name, ""),
                "label_names": [],
                "samples": [],
            }
        return metrics[name]

    def sample_for(metric: dict, labels: dict) -> dict:
        for s in metric["samples"]:
            if s["labels"] == labels:
                return s
        s = {"labels": labels}
        if metric["type"] == "histogram":
            s.update(buckets=[], sum=0.0, count=0)
        metric["samples"].append(s)
        metric["label_names"] = sorted({k for smp in metric["samples"]
                                        for k in smp["labels"]})
        return s

    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ValueError(f"line {lineno}: cannot parse sample: {raw!r}")
        full_name = m.group("name")
        labels = {
            k: _unescape_label(v)
            for k, v in _LABEL_PAIR_RE.findall(m.group("labels") or "")
        }
        value = _parse_value(m.group("value"))
        name = base_name(full_name)
        metric = entry(name)
        if metric["type"] == "histogram":
            le = labels.pop("le", None)
            sample = sample_for(metric, labels)
            if full_name.endswith("_bucket") and le is not None:
                edge = "+Inf" if le == "+Inf" else float(le)
                sample["buckets"].append([edge, int(value)])
            elif full_name.endswith("_sum"):
                sample["sum"] = value
            elif full_name.endswith("_count"):
                sample["count"] = int(value)
        else:
            sample_for(metric, labels)["value"] = value
    return {"uptime_seconds": None, "metrics": list(metrics.values())}


# -- snapshot files ----------------------------------------------------


def write_snapshot(path: str | Path, registry: MetricsRegistry | None = None) -> Path:
    """Write the registry to ``path``; format picked by extension.

    ``.prom`` (and ``.txt``) get Prometheus text format, anything else
    the JSON snapshot.
    """
    registry = registry if registry is not None else default_registry()
    path = Path(path)
    if path.suffix in (".prom", ".txt"):
        path.write_text(registry.to_prometheus())
    else:
        path.write_text(registry.to_json())
    return path


def load_snapshot(path: str | Path) -> dict:
    """Read a snapshot file written by :func:`write_snapshot`.

    JSON is detected by content (leading ``{``), so both formats load
    regardless of extension.
    """
    text = Path(path).read_text()
    if text.lstrip().startswith("{"):
        return json.loads(text)
    return parse_prometheus(text)


def restore_snapshot(
    snapshot: dict, registry: MetricsRegistry | None = None
) -> MetricsRegistry:
    """Load a snapshot's values back into a live registry.

    The inverse of :meth:`MetricsRegistry.snapshot`: families are
    get-or-created with the snapshot's kind and label set, and each
    sample's value (or histogram bucket counts, reconstructed from the
    cumulative form) is written over the child's current state.  This
    is how checkpoint recovery resumes counting where the crashed
    process left off instead of resetting every panel to zero.

    Raises
    ------
    ValueError
        A family already exists in ``registry`` with a conflicting
        kind or label set.
    """
    registry = registry if registry is not None else default_registry()
    for metric in snapshot.get("metrics", ()):
        name, kind = metric["name"], metric["type"]
        labels = tuple(metric.get("label_names", ()))
        help_text = metric.get("help", "")
        if kind == "counter":
            fam: _Family = registry.counter(name, help_text, labels)
        elif kind == "gauge":
            fam = registry.gauge(name, help_text, labels)
        elif kind == "histogram":
            edges = [
                float(edge)
                for edge, _n in metric["samples"][0]["buckets"]
                if edge not in ("+Inf", float("inf"))
            ] if metric.get("samples") else None
            fam = registry.histogram(name, help_text, labels,
                                     buckets=edges or None)
        else:  # untyped (e.g. parsed from foreign text): nothing to restore
            continue
        for sample in metric["samples"]:
            key = tuple(str(sample["labels"][n]) for n in labels)
            child = fam._child(key)
            if kind == "histogram":
                counts, prev = [], 0
                for _edge, cum in sample["buckets"]:
                    counts.append(int(cum) - prev)
                    prev = int(cum)
                child.bucket_counts = counts
                child.sum = float(sample["sum"])
                child.count = int(sample["count"])
            else:
                child.value = float(sample["value"])
    return registry
