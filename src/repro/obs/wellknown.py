"""The repo's well-known metric families, defined once.

Instrumented modules (pipeline, executor, stream layer) resolve their
families through these helpers so names, help strings, and label sets
cannot drift between the writer and the exposition.  Every helper is
get-or-create against the given registry (default: the process-wide
one), and :func:`declare_all` registers the full schema at once so a
snapshot carries zero-valued samples for subsystems that have not run
yet — a scrape of a freshly started process already shows every panel.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)

__all__ = [
    "stage_seconds",
    "stage_items",
    "pipeline_batches",
    "pipeline_messages",
    "pipeline_filtered",
    "pipeline_batch_seconds",
    "shard_dispatch_seconds",
    "shard_queue_wait_seconds",
    "shard_messages",
    "shard_chunks",
    "template_cache_hits",
    "template_cache_misses",
    "template_cache_evictions",
    "template_cache_invalidations",
    "template_cache_size",
    "fluentd_buffer_depth",
    "fluentd_flush_size",
    "fluentd_flushed_messages",
    "relay_received",
    "relay_dropped",
    "classifier_backlog",
    "fluentd_dropped",
    "degraded_mode",
    "degraded_transitions",
    "degraded_messages",
    "faults_injected",
    "faults_dead_letters",
    "faults_dlq_evicted",
    "faults_quarantined",
    "faults_worker_respawns",
    "faults_chunk_retries",
    "faults_serial_fallbacks",
    "wal_appends",
    "wal_bytes",
    "wal_fsyncs",
    "wal_rotations",
    "wal_last_seq",
    "wal_truncated_bytes",
    "wal_replayed_records",
    "checkpoint_writes",
    "checkpoint_last_bytes",
    "checkpoint_last_wal_seq",
    "store_node_up",
    "store_quorum_write_seconds",
    "store_quorum_read_seconds",
    "store_quorum_failures",
    "store_hints_queued",
    "store_hints_replayed",
    "store_hints_dropped",
    "store_read_repairs",
    "store_repair_docs",
    "store_breaker_transitions",
    "store_node_timeouts",
    "ingest_received",
    "ingest_accepted",
    "ingest_shed",
    "ingest_accept_dropped",
    "ingest_parse_errors",
    "ingest_oversize",
    "ingest_publish_refused",
    "ingest_tenant_received",
    "ingest_tenant_accepted",
    "ingest_tenant_shed",
    "ingest_tenants_active",
    "broker_published",
    "broker_publish_refused",
    "broker_polled",
    "broker_commits",
    "broker_commits_lost",
    "broker_lag",
    "broker_partitions",
    "broker_partition_stalls",
    "trace_sampled",
    "e2e_latency_seconds",
    "broker_queue_age_seconds",
    "broker_lag_age_seconds",
    "poll_to_flush_seconds",
    "wal_fsync_seconds",
    "slo_value",
    "slo_target",
    "slo_compliant",
    "slo_budget_remaining",
    "control_ticks",
    "control_actuations",
    "control_setpoint",
    "control_flips",
    "control_brownout_level",
    "control_shed",
    "control_feedforward_rate",
    "control_feedforward_moves",
    "executor_workers",
    "executor_resizes",
    "executor_respawns",
    "executor_serial_fallbacks",
    "store_breaker_state",
    "declare_all",
]


def _reg(registry: MetricsRegistry | None) -> MetricsRegistry:
    return registry if registry is not None else default_registry()


# -- classification pipeline ------------------------------------------


def stage_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: wall-clock seconds per pipeline stage per batch."""
    return _reg(registry).histogram(
        "repro_pipeline_stage_seconds",
        "Wall-clock seconds per pipeline stage per batch",
        labels=("stage",),
    )


def stage_items(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages processed per pipeline stage."""
    return _reg(registry).counter(
        "repro_pipeline_stage_items_total",
        "Messages processed per pipeline stage",
        labels=("stage",),
    )


def pipeline_batches(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: batches classified."""
    return _reg(registry).counter(
        "repro_pipeline_batches_total", "Batches classified"
    )


def pipeline_messages(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages classified."""
    return _reg(registry).counter(
        "repro_pipeline_messages_total", "Messages classified"
    )


def pipeline_filtered(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages short-circuited by the blacklist pre-filter."""
    return _reg(registry).counter(
        "repro_pipeline_filtered_total",
        "Messages short-circuited by the blacklist pre-filter",
    )


def pipeline_batch_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: end-to-end classify_batch wall-clock seconds."""
    return _reg(registry).histogram(
        "repro_pipeline_batch_seconds",
        "End-to-end classify_batch wall-clock seconds",
    )


# -- sharded executor --------------------------------------------------


def shard_dispatch_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: submit-to-result round-trip per scattered chunk."""
    return _reg(registry).histogram(
        "repro_shard_dispatch_seconds",
        "Submit-to-result round-trip seconds per scattered chunk",
    )


def shard_queue_wait_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: chunk round-trip minus worker busy time."""
    return _reg(registry).histogram(
        "repro_shard_queue_wait_seconds",
        "Round-trip minus worker busy time per chunk (queueing + pickling)",
    )


def shard_messages(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages classified, labelled by worker process."""
    return _reg(registry).counter(
        "repro_shard_messages_total",
        "Messages classified per worker process",
        labels=("worker",),
    )


def shard_chunks(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: chunks scattered, labelled by worker process."""
    return _reg(registry).counter(
        "repro_shard_chunks_total",
        "Chunks scattered per worker process",
        labels=("worker",),
    )


# -- template-dedup cache ----------------------------------------------


def template_cache_hits(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: classify lookups served from the template cache."""
    return _reg(registry).counter(
        "repro_template_cache_hits_total",
        "Classify lookups served from the template-dedup cache per "
        "worker process",
        labels=("worker",),
    )


def template_cache_misses(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: template-cache lookups that ran the model stage."""
    return _reg(registry).counter(
        "repro_template_cache_misses_total",
        "Template-cache lookups that fell through to the model stage "
        "per worker process",
        labels=("worker",),
    )


def template_cache_evictions(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: LRU entries evicted from the template cache."""
    return _reg(registry).counter(
        "repro_template_cache_evictions_total",
        "LRU entries evicted from the template-dedup cache per worker "
        "process",
        labels=("worker",),
    )


def template_cache_invalidations(
    registry: MetricsRegistry | None = None,
) -> Counter:
    """Counter: generation-change clears of the template cache."""
    return _reg(registry).counter(
        "repro_template_cache_invalidations_total",
        "Template-cache clears caused by a pipeline refit bumping the "
        "generation stamp, per worker process",
        labels=("worker",),
    )


def template_cache_size(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: entries currently held by the template cache."""
    return _reg(registry).gauge(
        "repro_template_cache_size",
        "Entries currently held by the template-dedup cache per worker "
        "process",
        labels=("worker",),
    )


# -- stream layer (Tivan) ---------------------------------------------


def fluentd_buffer_depth(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: messages buffered in the Fluentd forwarder."""
    return _reg(registry).gauge(
        "repro_stream_fluentd_buffer_depth",
        "Messages buffered in the Fluentd forwarder",
    )


def fluentd_flush_size(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: messages written by the most recent flush."""
    return _reg(registry).gauge(
        "repro_stream_fluentd_flush_size",
        "Messages written by the most recent flush",
    )


def fluentd_flushed_messages(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages flushed to the store."""
    return _reg(registry).counter(
        "repro_stream_fluentd_flushed_total",
        "Messages flushed to the store by the forwarder",
    )


def relay_received(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages received by the primary syslog relay."""
    return _reg(registry).counter(
        "repro_stream_relay_received_total",
        "Messages received by the primary syslog relay",
    )


def relay_dropped(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: relay drops under downstream backpressure."""
    return _reg(registry).counter(
        "repro_stream_relay_dropped_total",
        "Messages dropped by the relay under downstream backpressure",
    )


def classifier_backlog(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: indexed documents awaiting classification."""
    return _reg(registry).gauge(
        "repro_stream_classifier_backlog",
        "Indexed documents awaiting classification (engine-clock sampled)",
    )


def fluentd_dropped(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: buffered messages evicted under the drop-oldest policy."""
    return _reg(registry).counter(
        "repro_stream_fluentd_dropped_total",
        "Buffered messages evicted by the drop-oldest overflow policy",
    )


def degraded_mode(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: 1 while the cluster is shedding load, else 0."""
    return _reg(registry).gauge(
        "repro_stream_degraded_mode",
        "1 while the classifier stage is degraded to the cheap path",
    )


def degraded_transitions(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: degraded-mode transitions, labelled enter/exit."""
    return _reg(registry).counter(
        "repro_stream_degraded_transitions_total",
        "Degraded-mode transitions (direction=enter|exit)",
        labels=("direction",),
    )


def degraded_messages(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages classified by the cheap degraded path."""
    return _reg(registry).counter(
        "repro_stream_degraded_messages_total",
        "Messages classified by the cheap blacklist/bucketing path "
        "while degraded",
    )


# -- fault injection & resilience --------------------------------------


def faults_injected(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: injector fires, labelled by fault site."""
    return _reg(registry).counter(
        "repro_faults_injected_total",
        "Faults fired by the injector per site",
        labels=("site",),
    )


def faults_dead_letters(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages captured into a dead-letter queue, per site."""
    return _reg(registry).counter(
        "repro_faults_dead_letters_total",
        "Messages captured into a dead-letter queue per site",
        labels=("site",),
    )


def faults_dlq_evicted(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: oldest dead letters evicted by a bounded DLQ's cap."""
    return _reg(registry).counter(
        "repro_faults_dlq_evicted_total",
        "Oldest dead letters evicted by a bounded dead-letter queue",
    )


def faults_quarantined(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages quarantined by per-message classify salvage."""
    return _reg(registry).counter(
        "repro_faults_quarantined_total",
        "Messages quarantined by classify_batch instead of aborting "
        "the batch",
    )


def faults_worker_respawns(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: shard worker pools respawned after a worker death."""
    return _reg(registry).counter(
        "repro_faults_worker_respawns_total",
        "Shard worker pools respawned after a dead worker was detected",
    )


def faults_chunk_retries(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: chunks re-dispatched after a crash/timeout/error."""
    return _reg(registry).counter(
        "repro_faults_chunk_retries_total",
        "Chunks re-dispatched to the pool after a failed attempt",
    )


def faults_serial_fallbacks(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: chunks routed through the serial path post-retry-budget."""
    return _reg(registry).counter(
        "repro_faults_serial_fallbacks_total",
        "Chunks classified serially after the retry budget was exhausted",
    )


# -- durability (WAL + checkpoints) ------------------------------------


def wal_appends(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: records appended to the write-ahead log, per kind."""
    return _reg(registry).counter(
        "repro_wal_appends_total",
        "Records appended to the write-ahead log per record kind",
        labels=("kind",),
    )


def wal_bytes(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: bytes appended to the write-ahead log."""
    return _reg(registry).counter(
        "repro_wal_bytes_total", "Bytes appended to the write-ahead log"
    )


def wal_fsyncs(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: fsync calls issued by the write-ahead log."""
    return _reg(registry).counter(
        "repro_wal_fsyncs_total", "fsync calls issued by the write-ahead log"
    )


def wal_rotations(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: WAL segment rotations (size limit reached)."""
    return _reg(registry).counter(
        "repro_wal_rotations_total",
        "WAL segments rotated after reaching the size limit",
    )


def wal_last_seq(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: highest sequence number appended to the WAL."""
    return _reg(registry).gauge(
        "repro_wal_last_seq", "Highest sequence number appended to the WAL"
    )


def wal_truncated_bytes(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: torn-tail bytes discarded during WAL recovery."""
    return _reg(registry).counter(
        "repro_wal_truncated_bytes_total",
        "Torn-tail bytes discarded during WAL recovery",
    )


def wal_replayed_records(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: WAL records replayed past the checkpoint on recovery."""
    return _reg(registry).counter(
        "repro_wal_replayed_records_total",
        "WAL records replayed past the newest checkpoint on recovery",
    )


def checkpoint_writes(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: checkpoints written (atomic temp-then-rename)."""
    return _reg(registry).counter(
        "repro_checkpoint_writes_total",
        "Checkpoints written (atomic temp-then-rename)",
    )


def checkpoint_last_bytes(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: size of the most recent checkpoint file."""
    return _reg(registry).gauge(
        "repro_checkpoint_last_bytes",
        "Size in bytes of the most recently written checkpoint",
    )


def checkpoint_last_wal_seq(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: WAL sequence the most recent checkpoint covers."""
    return _reg(registry).gauge(
        "repro_checkpoint_last_wal_seq",
        "Last WAL sequence number applied by the most recent checkpoint",
    )


# -- replicated store ---------------------------------------------------


def store_node_up(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: 1 while the coordinator can reach the node, else 0."""
    return _reg(registry).gauge(
        "repro_store_node_up",
        "1 while the replicated-store coordinator can reach the node",
        labels=("node",),
    )


def store_quorum_write_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: coordinator wall-clock seconds per quorum bulk write."""
    return _reg(registry).histogram(
        "repro_store_quorum_write_seconds",
        "Coordinator wall-clock seconds per quorum bulk write",
    )


def store_quorum_read_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: coordinator wall-clock seconds per quorum read."""
    return _reg(registry).histogram(
        "repro_store_quorum_read_seconds",
        "Coordinator wall-clock seconds per quorum read",
    )


def store_quorum_failures(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: operations refused for lack of quorum, per op kind."""
    return _reg(registry).counter(
        "repro_store_quorum_failures_total",
        "Operations refused because too few owner nodes were reachable",
        labels=("op",),
    )


def store_hints_queued(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: hinted-handoff entries queued for unreachable owners."""
    return _reg(registry).counter(
        "repro_store_hints_queued_total",
        "Hinted-handoff entries queued for unreachable owner nodes",
    )


def store_hints_replayed(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: hinted-handoff entries replayed to rejoined nodes."""
    return _reg(registry).counter(
        "repro_store_hints_replayed_total",
        "Hinted-handoff entries replayed to rejoined owner nodes",
    )


def store_hints_dropped(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: oldest hints evicted by the per-node hint buffer cap."""
    return _reg(registry).counter(
        "repro_store_hints_dropped_total",
        "Oldest hints evicted by the bounded per-node hint buffer",
    )


def store_read_repairs(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: stale/missing copies repaired by quorum reads."""
    return _reg(registry).counter(
        "repro_store_read_repairs_total",
        "Stale or missing replica copies repaired during quorum reads",
    )


def store_repair_docs(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: document copies pushed by anti-entropy sync."""
    return _reg(registry).counter(
        "repro_store_repair_docs_total",
        "Document copies pushed between nodes by anti-entropy sync",
    )


def store_breaker_transitions(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: node circuit-breaker transitions, by entered state."""
    return _reg(registry).counter(
        "repro_store_breaker_transitions_total",
        "Per-node circuit breaker transitions by entered state",
        labels=("state",),
    )


def store_node_timeouts(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: simulated node timeouts (store.node_slow), per node."""
    return _reg(registry).counter(
        "repro_store_node_timeouts_total",
        "Simulated store-node timeouts per node",
        labels=("node",),
    )


# -- ingest listener & log broker ---------------------------------------


def ingest_received(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: wire lines received by the listener, per transport."""
    return _reg(registry).counter(
        "repro_ingest_received_total",
        "Wire lines received by the syslog listener per transport",
        labels=("proto",),
    )


def ingest_accepted(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: lines parsed and accepted by the listener."""
    return _reg(registry).counter(
        "repro_ingest_accepted_total",
        "Wire lines parsed into messages and accepted by the listener",
    )


def ingest_shed(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: lines shed by accept-time rate limiting."""
    return _reg(registry).counter(
        "repro_ingest_shed_total",
        "Wire lines shed by the listener's accept-time rate limiter",
    )


def ingest_accept_dropped(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: lines dropped by the ingest.accept_drop fault site."""
    return _reg(registry).counter(
        "repro_ingest_accept_dropped_total",
        "Wire lines dropped at accept time by the ingest.accept_drop "
        "fault site (simulated NIC queue overflow)",
    )


def ingest_parse_errors(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: lines neither RFC matched, quarantined to the DLQ."""
    return _reg(registry).counter(
        "repro_ingest_parse_errors_total",
        "Wire lines that matched neither RFC 3164 nor RFC 5424 and were "
        "quarantined to the dead-letter queue",
    )


def ingest_oversize(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: lines over the size cap, quarantined to the DLQ."""
    return _reg(registry).counter(
        "repro_ingest_oversize_total",
        "Wire lines over the listener's size cap, quarantined to the "
        "dead-letter queue",
    )


def ingest_publish_refused(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: accepted messages the broker refused (stalled partition)."""
    return _reg(registry).counter(
        "repro_ingest_publish_refused_total",
        "Accepted messages refused by the broker (stalled partition), "
        "quarantined to the dead-letter queue",
    )


def ingest_tenant_received(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: parsed lines per tenant (host/app admission key)."""
    return _reg(registry).counter(
        "repro_ingest_tenant_received_total",
        "Parsed wire lines per tenant (host/app admission key)",
        labels=("tenant",),
    )


def ingest_tenant_accepted(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: lines admitted through the per-tenant fair-share quota."""
    return _reg(registry).counter(
        "repro_ingest_tenant_accepted_total",
        "Wire lines admitted through the per-tenant fair-share quota",
        labels=("tenant",),
    )


def ingest_tenant_shed(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: per-tenant quota drops, labelled by reason."""
    return _reg(registry).counter(
        "repro_ingest_tenant_shed_total",
        "Wire lines shed by the per-tenant admission quota",
        labels=("tenant", "reason"),
    )


def ingest_tenants_active(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: tenants currently tracked by the admission quota."""
    return _reg(registry).gauge(
        "repro_ingest_tenants_active",
        "Tenants currently tracked by the deficit-round-robin quota",
    )


def broker_published(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: records appended to broker partitions."""
    return _reg(registry).counter(
        "repro_broker_published_total",
        "Records appended to log-broker partitions",
    )


def broker_publish_refused(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: publishes refused by a stalled partition."""
    return _reg(registry).counter(
        "repro_broker_publish_refused_total",
        "Publishes refused because the target partition was stalled",
    )


def broker_polled(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: records delivered to consumers, per group."""
    return _reg(registry).counter(
        "repro_broker_polled_total",
        "Records delivered to consumer-group members by poll",
        labels=("group",),
    )


def broker_commits(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: offset commits applied, per group."""
    return _reg(registry).counter(
        "repro_broker_commits_total",
        "Consumer-group offset commits applied by the broker",
        labels=("group",),
    )


def broker_commits_lost(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: offset commits dropped by the broker.commit_lost site."""
    return _reg(registry).counter(
        "repro_broker_commits_lost_total",
        "Consumer-group offset commits dropped in flight by the "
        "broker.commit_lost fault site",
    )


def broker_lag(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: uncommitted records across partitions, per group."""
    return _reg(registry).gauge(
        "repro_broker_lag",
        "Records published but not yet committed by the consumer group",
        labels=("group",),
    )


def broker_partitions(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: partitions the broker currently holds."""
    return _reg(registry).gauge(
        "repro_broker_partitions", "Partitions the log broker currently holds"
    )


def broker_partition_stalls(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: partition stall events (broker.partition_stall fires)."""
    return _reg(registry).counter(
        "repro_broker_partition_stalls_total",
        "Partition stall events fired by the broker.partition_stall site",
    )


# -- end-to-end telemetry (tracing, latency, SLOs) ----------------------


def trace_sampled(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages head-sampled into a cross-hop trace."""
    return _reg(registry).counter(
        "repro_trace_sampled_total",
        "Messages head-sampled into a cross-hop trace at accept time",
    )


def e2e_latency_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: accept-to-indexed seconds for sampled messages."""
    return _reg(registry).histogram(
        "repro_e2e_latency_seconds",
        "Listener-accept to store-indexed seconds for sampled messages",
    )


def broker_queue_age_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: publish-to-poll dwell of sampled records in the broker."""
    return _reg(registry).histogram(
        "repro_broker_queue_age_seconds",
        "Publish-to-poll dwell seconds of sampled records in broker "
        "partitions",
    )


def broker_lag_age_seconds(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: age of the oldest uncommitted record, per consumer group."""
    return _reg(registry).gauge(
        "repro_broker_lag_age_seconds",
        "Age in seconds of the oldest record published but not yet "
        "committed by the consumer group",
        labels=("group",),
    )


def poll_to_flush_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: forwarder-buffer dwell (poll/offer to flushed)."""
    return _reg(registry).histogram(
        "repro_stream_poll_to_flush_seconds",
        "Seconds a sampled message dwelt in the forwarder buffer between "
        "poll/offer and a successful flush",
    )


def wal_fsync_seconds(registry: MetricsRegistry | None = None) -> Histogram:
    """Histogram: wall-clock seconds per WAL fsync call."""
    return _reg(registry).histogram(
        "repro_wal_fsync_seconds",
        "Wall-clock seconds per write-ahead-log fsync call",
    )


def slo_value(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: current observed value of each declared SLO."""
    return _reg(registry).gauge(
        "repro_slo_value",
        "Current observed value of the declared SLO",
        labels=("slo",),
    )


def slo_target(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: declared target (threshold) of each SLO."""
    return _reg(registry).gauge(
        "repro_slo_target",
        "Declared threshold the SLO's observed value must stay under",
        labels=("slo",),
    )


def slo_compliant(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: 1 while the SLO meets its target, else 0."""
    return _reg(registry).gauge(
        "repro_slo_compliant",
        "1 while the SLO's observed value meets its target, else 0",
        labels=("slo",),
    )


def slo_budget_remaining(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: fraction of the SLO's error budget still unburned."""
    return _reg(registry).gauge(
        "repro_slo_error_budget_remaining",
        "Fraction of the SLO's error budget still unburned "
        "(1 - value/target, clamped to [-1, 1])",
        labels=("slo",),
    )


# -- control plane (closed-loop autoscaling / brownout) -----------------


def control_ticks(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: control-loop ticks executed."""
    return _reg(registry).counter(
        "repro_control_ticks_total", "Control-loop ticks executed"
    )


def control_actuations(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: lever moves, labelled by lever and direction."""
    return _reg(registry).counter(
        "repro_control_actuations_total",
        "Lever moves applied by the controller",
        labels=("lever", "direction"),
    )


def control_setpoint(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: current controller setpoint per lever."""
    return _reg(registry).gauge(
        "repro_control_setpoint",
        "Current value the controller holds each lever at",
        labels=("lever",),
    )


def control_flips(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: direction reversals per lever (the oscillation metric)."""
    return _reg(registry).counter(
        "repro_control_flips_total",
        "Actuations whose direction reversed the lever's previous move",
        labels=("lever",),
    )


def control_brownout_level(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: current brownout ladder level (0 = normal … 3 = shedding)."""
    return _reg(registry).gauge(
        "repro_control_brownout_level",
        "Current brownout ladder level "
        "(0 normal, 1 shrink batches, 2 cheap classify, 3 shed at accept)",
    )


def control_shed(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: messages shed by brownout L3, labelled by reason."""
    return _reg(registry).counter(
        "repro_control_shed_total",
        "Messages dropped at accept by the brownout ladder",
        labels=("reason",),
    )


def control_feedforward_rate(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: feedforward-predicted offered load at the horizon."""
    return _reg(registry).gauge(
        "repro_control_feedforward_rate",
        "Offered-load rate the feedforward term predicts at its horizon "
        "(msgs/s; tracks the current rate while the window warms up)",
    )


def control_feedforward_moves(
    registry: MetricsRegistry | None = None,
) -> Counter:
    """Counter: up-moves taken on the feedforward prediction alone."""
    return _reg(registry).counter(
        "repro_control_feedforward_moves_total",
        "Capacity up-moves taken on the feedforward surge prediction "
        "before the reactive signal crossed its high watermark",
        labels=("lever",),
    )


# -- executor lifecycle -------------------------------------------------


def executor_workers(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: configured worker-process count of the sharded executor."""
    return _reg(registry).gauge(
        "repro_executor_workers",
        "Configured worker-process count of the sharded executor",
    )


def executor_resizes(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: executor pool resizes, labelled by direction."""
    return _reg(registry).counter(
        "repro_executor_resizes_total",
        "Sharded-executor pool resizes",
        labels=("direction",),
    )


def executor_respawns(registry: MetricsRegistry | None = None) -> Counter:
    """Counter: executor pool respawns after worker loss."""
    return _reg(registry).counter(
        "repro_executor_respawns_total",
        "Sharded-executor pool respawns after a broken worker pool",
    )


def executor_serial_fallbacks(
    registry: MetricsRegistry | None = None,
) -> Counter:
    """Counter: chunks degraded to in-process serial execution."""
    return _reg(registry).counter(
        "repro_executor_serial_fallbacks_total",
        "Chunks executed serially in-process after pool retries failed",
    )


def store_breaker_state(registry: MetricsRegistry | None = None) -> Gauge:
    """Gauge: per-node circuit-breaker state (0 closed, 1 half-open, 2 open)."""
    return _reg(registry).gauge(
        "repro_store_breaker_state",
        "Circuit-breaker state per store node "
        "(0 closed, 1 half-open, 2 open)",
        labels=("node",),
    )


def declare_all(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Register every well-known family; returns the registry.

    Called before writing a snapshot so the exposition always carries
    the full schema — unlabeled gauges/counters show a zero sample even
    when their subsystem never ran in this process.
    """
    registry = _reg(registry)
    for factory in (
        stage_seconds, stage_items, pipeline_batches, pipeline_messages,
        pipeline_filtered, pipeline_batch_seconds, shard_dispatch_seconds,
        shard_queue_wait_seconds, shard_messages, shard_chunks,
        template_cache_hits, template_cache_misses, template_cache_evictions,
        template_cache_invalidations, template_cache_size,
        fluentd_buffer_depth, fluentd_flush_size, fluentd_flushed_messages,
        relay_received, relay_dropped, classifier_backlog,
        fluentd_dropped, degraded_mode, degraded_transitions,
        degraded_messages, faults_injected, faults_dead_letters,
        faults_quarantined, faults_worker_respawns, faults_chunk_retries,
        faults_serial_fallbacks, faults_dlq_evicted, wal_appends, wal_bytes,
        wal_fsyncs, wal_rotations, wal_last_seq, wal_truncated_bytes,
        wal_replayed_records, checkpoint_writes, checkpoint_last_bytes,
        checkpoint_last_wal_seq, store_node_up, store_quorum_write_seconds,
        store_quorum_read_seconds, store_quorum_failures, store_hints_queued,
        store_hints_replayed, store_hints_dropped, store_read_repairs,
        store_repair_docs, store_breaker_transitions, store_node_timeouts,
        ingest_received, ingest_accepted, ingest_shed, ingest_accept_dropped,
        ingest_parse_errors, ingest_oversize, ingest_publish_refused,
        ingest_tenant_received, ingest_tenant_accepted, ingest_tenant_shed,
        ingest_tenants_active,
        broker_published, broker_publish_refused, broker_polled,
        broker_commits, broker_commits_lost, broker_lag, broker_partitions,
        broker_partition_stalls, trace_sampled, e2e_latency_seconds,
        broker_queue_age_seconds, broker_lag_age_seconds,
        poll_to_flush_seconds, wal_fsync_seconds, slo_value, slo_target,
        slo_compliant, slo_budget_remaining, control_ticks,
        control_actuations, control_setpoint, control_flips,
        control_brownout_level, control_shed, control_feedforward_rate,
        control_feedforward_moves, executor_workers,
        executor_resizes, executor_respawns, executor_serial_fallbacks,
        store_breaker_state,
    ):
        factory(registry)
    return registry
