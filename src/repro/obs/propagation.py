"""Cross-hop trace propagation: one trace from accept to fsync.

The PR 2 tracer (:mod:`repro.obs.trace`) explains a single *batch*
inside one process — it ends at the ShardedExecutor boundary.  The
ingest spine is longer: listener accept → broker publish → consumer
poll → forwarder flush → quorum write → WAL append, possibly with a
SIGKILL and a resume in the middle.  This module carries a compact
:class:`TraceContext` along that whole path:

- :class:`TraceSampler` decides *deterministically* (splitmix64 over a
  seed and a stable per-message key) whether a message is traced, and
  derives its 32-hex trace ID from the same bits.  A resumed process
  with the same seed re-derives the same decisions and the same IDs,
  so a trace whose head was recorded before a SIGKILL is continued —
  not forked — by the replacement process.
- :func:`record_hop` appends one point-in-time span for a hop and
  returns the chained context (the new span becomes the parent of the
  next hop), stitching through the existing ``Tracer.adopt`` machinery.
  Every hop span carries a ``pid`` attribute, so a stitched trace shows
  its process boundaries explicitly.
- :func:`carrying`/:func:`carried` pass sampled contexts through call
  layers that have no parameter for them (the forwarder's sink is just
  a callable), via a :mod:`contextvars` variable.
- :func:`render_waterfall` draws the per-hop timeline the
  ``repro-syslog trace`` subcommand prints.

Contexts are plain frozen dataclasses and spans are plain dicts, so
both cross checkpoint files and process boundaries untouched.
"""

from __future__ import annotations

import contextlib
import contextvars
import itertools
import os
import time
import zlib
from dataclasses import dataclass

import numpy as np

from repro.obs import wellknown
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, default_tracer

__all__ = [
    "TraceContext",
    "TraceSampler",
    "derive_trace_id",
    "record_hop",
    "carrying",
    "carried",
    "render_waterfall",
    "EXPECTED_HOPS",
    "trace_is_complete",
]

#: The hop names a fully stitched broker-spine trace contains, in path
#: order.  The store hop is ``store.quorum_write`` (replicated) or
#: ``store.index`` (single-node); :func:`trace_is_complete` treats
#: them as one slot.
EXPECTED_HOPS: tuple[str, ...] = (
    "ingest.accept",
    "broker.publish",
    "broker.poll",
    "fluentd.flush",
    "store.quorum_write",
    "wal.append",
)


def trace_is_complete(span_names, *, journal: bool = True) -> bool:
    """Did this trace cover every hop of the broker spine?

    ``span_names`` is any iterable of hop names from one trace.  The
    WAL hop only exists on journalled runs, so pass ``journal=False``
    for volatile pipelines.
    """
    names = set(span_names)
    required = {"ingest.accept", "broker.publish", "broker.poll", "fluentd.flush"}
    if journal:
        required.add("wal.append")
    return required <= names and bool(
        {"store.quorum_write", "store.index"} & names
    )

_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 output step: uniform 64-bit mixing, pure function."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _key_bits(key: int | str) -> int:
    if isinstance(key, str):
        return zlib.crc32(key.encode("utf-8", "replace"))
    return int(key) & _MASK64


#: per-process ordinal feeding span-id generation in :func:`record_hop`
_span_seq = itertools.count(1)

#: ordinal sampling decisions are computed in vectorized blocks of this
#: many keys (a power of two, so the block base is a bit mask away)
_BLOCK = 4096


def _sample_block(seed_bits: int, base: int, threshold: int) -> np.ndarray:
    """Splitmix64 decisions for ordinals ``[base, base + _BLOCK)``.

    Bit-for-bit the same mixing as :meth:`TraceSampler.sample`, just
    over a uint64 lane per key — the per-message cost of deciding
    whether to trace drops from a Python hash to an array index.
    """
    if threshold > _MASK64:  # rate == 1.0: strictly-less-than can't see it
        return np.ones(_BLOCK, dtype=bool)
    keys = np.arange(base, base + _BLOCK, dtype=np.uint64)
    x = (np.uint64(seed_bits) ^ keys) + np.uint64(0x9E3779B97F4A7C15)
    z = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z < np.uint64(threshold)


def _base_bits(seed: int, key: int | str) -> int:
    return _splitmix64(_splitmix64(seed & _MASK64) ^ _key_bits(key))


def derive_trace_id(seed: int, key: int | str) -> str:
    """Deterministic 32-hex trace ID for ``key`` under ``seed``.

    Two chained splitmix64 outputs — the same function a resumed
    process applies, so the trace started before a crash and the one
    continued after it share an ID and stitch into a single trace.
    """
    base = _base_bits(seed, key)
    hi = _splitmix64(base ^ 0x1)
    lo = _splitmix64(base ^ 0x2)
    return f"{hi:016x}{lo:016x}"


@dataclass(frozen=True, slots=True)
class TraceContext:
    """What travels with a sampled message.

    ``trace_id`` names the trace, ``span_id`` is the most recent hop
    (the parent of the next one), ``origin_s`` is the accept timestamp
    the e2e latency histogram measures from.  Frozen and tiny: brokers
    store it on records, checkpoints serialize it implicitly through
    the exported spans.
    """

    trace_id: str
    span_id: str | None
    origin_s: float


def record_hop(
    ctx: TraceContext,
    name: str,
    start_s: float,
    end_s: float | None = None,
    *,
    tracer: Tracer | None = None,
    **attributes,
) -> TraceContext:
    """Append one hop span to ``ctx``'s trace; return the chained context.

    The span parents on ``ctx.span_id`` and the returned context points
    at the new span, so successive hops form a chain.  ``pid`` is
    stamped automatically — it is the evidence that a stitched trace
    really crossed a process boundary.
    """
    pid = os.getpid()
    # unique enough without an os.urandom syscall: a process-local
    # ordinal mixed with the pid (hops are recorded per sampled
    # message, so this runs hot)
    span_id = "%016x" % _splitmix64((pid << 20) ^ next(_span_seq))
    attributes["pid"] = pid  # the **kwargs dict is fresh: mutate, don't copy
    span = Span(
        name=name,
        trace_id=ctx.trace_id,
        span_id=span_id,
        parent_id=ctx.span_id,
        start_s=start_s,
        end_s=end_s if end_s is not None else start_s,
        attributes=attributes,
    )
    (tracer if tracer is not None else default_tracer())._finish(span)
    return TraceContext(ctx.trace_id, span_id, ctx.origin_s)


class TraceSampler:
    """Seedable head sampler: decides at accept, once, deterministically.

    ``rate`` is the sampled fraction in ``[0, 1]``.  The decision for a
    given ``key`` (the durable per-message ordinal, or any stable int /
    string) depends only on ``(seed, key)`` — never on wall clock or
    call order — which is what lets a SIGKILLed-and-resumed pipeline
    keep tracing the same messages.
    """

    def __init__(
        self,
        rate: float,
        *,
        seed: int = 0,
        tracer: Tracer | None = None,
        clock=time.time,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self.tracer = tracer
        self.clock = clock
        # < threshold over the full 64-bit range == probability `rate`
        self._threshold = int(rate * float(1 << 64))
        # the seed half of the mix never changes: fold it once so the
        # per-message decision is a single splitmix round (this runs
        # for every accepted message, sampled or not)
        self._seed_bits = _splitmix64(seed & _MASK64)
        self._block_base = -1
        self._block: np.ndarray | None = None
        self._m_sampled = wellknown.trace_sampled(registry).labels()

    def sample(self, key: int | str) -> bool:
        """Would ``key`` be traced?  Pure; safe to re-ask after resume.

        The splitmix round is inlined: this runs for every accepted
        message, sampled or not, and must stay in the telemetry budget.
        """
        bits = key & _MASK64 if type(key) is int else _key_bits(key)
        x = ((self._seed_bits ^ bits) + 0x9E3779B97F4A7C15) & _MASK64
        z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) < self._threshold

    def sample_ordinal(self, n: int) -> bool:
        """:meth:`sample` for dense non-negative ordinal keys.

        Decisions (identical to ``sample(n)``) come from a vectorized
        block cached across consecutive ordinals, so the steady-state
        per-message cost is an array index.
        """
        base = n & ~(_BLOCK - 1)
        if base != self._block_base:
            self._block = _sample_block(self._seed_bits, base, self._threshold)
            self._block_base = base
        return bool(self._block[n - base])

    def next_sampled_after(self, n: int) -> int | float:
        """The smallest ordinal ``> n`` that samples true (``inf`` at rate 0).

        The listener's accept path compares the incoming ordinal against
        this instead of asking :meth:`sample` per message — the untraced
        majority then costs one integer comparison.
        """
        if self._threshold <= 0:
            return float("inf")
        start = n + 1
        while True:
            base = start & ~(_BLOCK - 1)
            if base != self._block_base:
                self._block = _sample_block(
                    self._seed_bits, base, self._threshold
                )
                self._block_base = base
            hits = np.nonzero(self._block[start - base:])[0]
            if hits.size:
                return start + int(hits[0])
            start = base + _BLOCK

    def trace_id(self, key: int | str) -> str:
        """The trace ID ``key`` gets under this sampler's seed."""
        return derive_trace_id(self.seed, key)

    def begin(
        self, key: int | str, name: str = "ingest.accept", **attributes
    ) -> TraceContext | None:
        """Start a trace for ``key`` if sampled; else ``None``.

        Records the root hop span and returns the chained context to
        attach to the message.
        """
        if not self.sample(key):
            return None
        now = self.clock()
        self._m_sampled.inc()
        ctx = TraceContext(
            trace_id=derive_trace_id(self.seed, key), span_id=None, origin_s=now
        )
        return record_hop(ctx, name, now, tracer=self.tracer, **attributes)


# -- carrying contexts through parameterless call layers ----------------

_carried: contextvars.ContextVar[tuple[tuple[TraceContext, ...], object] | None] = (
    contextvars.ContextVar("repro_obs_carried_ctxs", default=None)
)


@contextlib.contextmanager
def carrying(ctxs, clock=time.time):
    """Expose ``ctxs`` to callees that take no trace parameter.

    The forwarder wraps its sink call in this so the store — whose
    ``bulk_index(messages)`` signature predates tracing — can pick the
    contexts up with :func:`carried` and record its own hop against the
    caller's clock.
    """
    token = _carried.set((tuple(ctxs), clock))
    try:
        yield
    finally:
        _carried.reset(token)


def carried() -> tuple[tuple[TraceContext, ...], object]:
    """The contexts (and clock) the current call stack carries, if any."""
    state = _carried.get()
    if state is None:
        return (), time.time
    return state


# -- waterfall rendering ------------------------------------------------

_BAR_WIDTH = 28


def render_waterfall(spans) -> str:
    """Horizontal per-hop timeline for one trace.

    Accepts :class:`Span` objects or exported span dicts.  Hops are
    sorted by start time; each row shows the hop's position in the
    trace's total span, its offset from the first hop, its own duration,
    and its attributes (including which pid recorded it).
    """
    spans = [Span.from_dict(s) if isinstance(s, dict) else s for s in spans]
    if not spans:
        return "(no spans)"
    spans = sorted(spans, key=lambda s: (s.start_s, s.name))
    t0 = spans[0].start_s
    t1 = max((s.end_s if s.end_s is not None else s.start_s) for s in spans)
    total = max(t1 - t0, 1e-12)
    name_w = max(len(s.name) for s in spans)
    lines = [
        f"trace {spans[0].trace_id}  ({len(spans)} hops, {t1 - t0:.3f}s)"
    ]
    for s in spans:
        end = s.end_s if s.end_s is not None else s.start_s
        lo = int((s.start_s - t0) / total * (_BAR_WIDTH - 1))
        hi = max(lo, int((end - t0) / total * (_BAR_WIDTH - 1)))
        bar = "".join(
            "█" if lo <= i <= hi else "·" for i in range(_BAR_WIDTH)
        )
        attrs = " ".join(
            f"{k}={v}" for k, v in sorted(s.attributes.items())
        )
        attrs = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"  {s.name:<{name_w}}  |{bar}|  +{s.start_s - t0:9.3f}s  "
            f"{(end - s.start_s) * 1e3:8.2f}ms{attrs}"
        )
    return "\n".join(lines)
