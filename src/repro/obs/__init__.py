"""Observability: metrics registry and trace spans.

The paper's deliverable is a monitored pipeline — Grafana panels over
OpenSearch (§4.2) — and the ROADMAP's "as fast as the hardware allows"
claim needs live counters and latency histograms, not after-the-fact
reports.  This package is the telemetry layer the rest of the repo
writes into:

- :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families with labels in a thread-safe
  :class:`MetricsRegistry`; Prometheus text and JSON snapshot
  exposition; :class:`NullRegistry` to zero out instrumentation cost,
- :mod:`repro.obs.trace` — :class:`Span` / :class:`Tracer` with
  parent links and cross-process propagation (the sharded executor
  stitches worker spans into one trace),
- :mod:`repro.obs.wellknown` — the single home of every metric family
  the pipeline, executor, and Tivan stream layer emit,
- :mod:`repro.obs.propagation` — cross-hop trace contexts: seedable
  head sampling at listener accept, hop spans chained through broker /
  forwarder / store / WAL, surviving SIGKILL+resume,
- :mod:`repro.obs.slo` — declarative SLO targets (latency quantiles,
  loss ratios) evaluated from the registry with error-budget gauges,
- :mod:`repro.obs.httpd` — the stdlib ``/metrics`` + ``/health`` +
  ``/trace/<id>`` HTTP thread behind ``--metrics-port``.

Instrumented code resolves the process-wide default registry/tracer at
write time, so swapping them (:func:`use_registry`,
:func:`set_default_tracer`) redirects all telemetry without re-wiring.
"""

from repro.obs.httpd import OpsServer
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_latency_buckets,
    default_registry,
    histogram_quantile,
    load_snapshot,
    parse_prometheus,
    restore_snapshot,
    set_default_registry,
    use_registry,
    write_snapshot,
)
from repro.obs.propagation import (
    TraceContext,
    TraceSampler,
    carried,
    carrying,
    derive_trace_id,
    record_hop,
    render_waterfall,
    trace_is_complete,
)
from repro.obs.slo import (
    SloStatus,
    SloTarget,
    SloTracker,
    default_slos,
    load_slo_file,
    quantile_slo,
    ratio_slo,
    render_slo_panel,
)
from repro.obs.trace import (
    Span,
    Tracer,
    default_tracer,
    render_trace,
    set_default_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "default_latency_buckets",
    "default_registry",
    "set_default_registry",
    "use_registry",
    "histogram_quantile",
    "parse_prometheus",
    "write_snapshot",
    "load_snapshot",
    "restore_snapshot",
    "Span",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "render_trace",
    "TraceContext",
    "TraceSampler",
    "derive_trace_id",
    "record_hop",
    "carrying",
    "carried",
    "render_waterfall",
    "trace_is_complete",
    "SloTarget",
    "SloStatus",
    "SloTracker",
    "quantile_slo",
    "ratio_slo",
    "default_slos",
    "load_slo_file",
    "render_slo_panel",
    "OpsServer",
]
