"""Observability: metrics registry and trace spans.

The paper's deliverable is a monitored pipeline — Grafana panels over
OpenSearch (§4.2) — and the ROADMAP's "as fast as the hardware allows"
claim needs live counters and latency histograms, not after-the-fact
reports.  This package is the telemetry layer the rest of the repo
writes into:

- :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families with labels in a thread-safe
  :class:`MetricsRegistry`; Prometheus text and JSON snapshot
  exposition; :class:`NullRegistry` to zero out instrumentation cost,
- :mod:`repro.obs.trace` — :class:`Span` / :class:`Tracer` with
  parent links and cross-process propagation (the sharded executor
  stitches worker spans into one trace),
- :mod:`repro.obs.wellknown` — the single home of every metric family
  the pipeline, executor, and Tivan stream layer emit.

Instrumented code resolves the process-wide default registry/tracer at
write time, so swapping them (:func:`use_registry`,
:func:`set_default_tracer`) redirects all telemetry without re-wiring.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_latency_buckets,
    default_registry,
    histogram_quantile,
    load_snapshot,
    parse_prometheus,
    restore_snapshot,
    set_default_registry,
    use_registry,
    write_snapshot,
)
from repro.obs.trace import (
    Span,
    Tracer,
    default_tracer,
    render_trace,
    set_default_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "default_latency_buckets",
    "default_registry",
    "set_default_registry",
    "use_registry",
    "histogram_quantile",
    "parse_prometheus",
    "write_snapshot",
    "load_snapshot",
    "restore_snapshot",
    "Span",
    "Tracer",
    "default_tracer",
    "set_default_tracer",
    "render_trace",
]
