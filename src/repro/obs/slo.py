"""Declarative SLOs evaluated straight from the metrics registry.

The paper's operability argument (§4.5) needs more than raw counters:
an operator (and, per ROADMAP item 3, the future autoscaler) wants
*judgments* — is p99 accept-to-indexed latency under target, is the
loss rate inside budget — and a burn signal when it is not.

An :class:`SloTarget` names a threshold over the registry in one of two
shapes:

- ``quantile``: a quantile of one histogram family must stay under the
  threshold (``p99(repro_e2e_latency_seconds) < 5s``), and
- ``ratio``: a sum of counter families over another sum must stay under
  the threshold (loss rate = shed + dropped + errors over received).

:class:`SloTracker` evaluates its targets against a registry snapshot
and publishes four wellknown gauge families per target —
``repro_slo_value``, ``repro_slo_target``, ``repro_slo_compliant``,
``repro_slo_error_budget_remaining`` — so SLO state rides the same
``/metrics`` scrape as everything else.  Targets round-trip through
plain dicts (:func:`load_slo_file` reads a JSON list), which is the
``--slo-file`` CLI knob.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.obs import wellknown
from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    histogram_quantile,
)

__all__ = [
    "SloTarget",
    "SloStatus",
    "SloTracker",
    "quantile_slo",
    "ratio_slo",
    "default_slos",
    "load_slo_file",
    "render_slo_panel",
]


@dataclass(frozen=True)
class SloTarget:
    """One declarative objective over the metrics registry.

    ``kind`` is ``"quantile"`` (``family``/``quantile`` set) or
    ``"ratio"`` (``numerator``/``denominator`` family-name tuples set).
    ``threshold`` is the value the observation must stay strictly
    under.
    """

    name: str
    kind: str
    threshold: float
    family: str | None = None
    quantile: float | None = None
    numerator: tuple[str, ...] = ()
    denominator: tuple[str, ...] = ()

    def to_dict(self) -> dict:
        """The JSON form ``load_slo_file`` reads back."""
        out: dict = {"name": self.name, "kind": self.kind, "threshold": self.threshold}
        if self.kind == "quantile":
            out["family"] = self.family
            out["quantile"] = self.quantile
        else:
            out["numerator"] = list(self.numerator)
            out["denominator"] = list(self.denominator)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SloTarget":
        kind = data["kind"]
        if kind == "quantile":
            return quantile_slo(
                data["name"], data["family"], data["quantile"], data["threshold"]
            )
        if kind == "ratio":
            return ratio_slo(
                data["name"],
                data["numerator"],
                data["denominator"],
                data["threshold"],
            )
        raise ValueError(f"unknown SLO kind: {kind!r}")


def quantile_slo(
    name: str, family: str, quantile: float, threshold: float
) -> SloTarget:
    """``quantile(family) < threshold`` (e.g. p99 e2e latency < 5s)."""
    if not 0.0 <= quantile <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {quantile}")
    return SloTarget(
        name=name, kind="quantile", threshold=threshold,
        family=family, quantile=quantile,
    )


def ratio_slo(name: str, numerator, denominator, threshold: float) -> SloTarget:
    """``sum(numerator) / sum(denominator) < threshold`` (e.g. loss rate)."""
    return SloTarget(
        name=name, kind="ratio", threshold=threshold,
        numerator=tuple(numerator), denominator=tuple(denominator),
    )


def default_slos() -> list[SloTarget]:
    """The repo's stock objectives for the broker-spine pipeline."""
    return [
        quantile_slo("e2e_p99", "repro_e2e_latency_seconds", 0.99, 5.0),
        ratio_slo(
            "ingest_loss",
            (
                "repro_ingest_shed_total",
                "repro_ingest_accept_dropped_total",
                "repro_ingest_parse_errors_total",
                "repro_ingest_oversize_total",
                "repro_ingest_publish_refused_total",
            ),
            ("repro_ingest_received_total",),
            0.01,
        ),
        quantile_slo(
            "quorum_write_p99", "repro_store_quorum_write_seconds", 0.99, 1.0
        ),
    ]


def load_slo_file(path: str | Path) -> list[SloTarget]:
    """Read a JSON list of SLO target dicts (the ``--slo-file`` format)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError("SLO file must contain a JSON list of targets")
    return [SloTarget.from_dict(d) for d in data]


@dataclass(frozen=True)
class SloStatus:
    """One target's evaluation: observed value vs. declared threshold."""

    name: str
    kind: str
    value: float
    threshold: float
    ok: bool
    budget_remaining: float


def _family_samples(snapshot: dict, name: str) -> list[dict]:
    for fam in snapshot.get("metrics", []):
        if fam["name"] == name:
            return fam["samples"]
    return []


def _merged_buckets(samples: list[dict]) -> list[tuple[float, int]]:
    """Sum a histogram family's cumulative buckets across its children."""
    merged: dict[float, int] = {}
    for sample in samples:
        for edge, cum in sample.get("buckets", []):
            key = float("inf") if edge == "+Inf" else float(edge)
            merged[key] = merged.get(key, 0) + int(cum)
    return sorted(merged.items())


def _summed_values(snapshot: dict, names) -> float:
    return sum(
        float(sample.get("value", 0.0))
        for name in names
        for sample in _family_samples(snapshot, name)
    )


class SloTracker:
    """Evaluates declarative targets and publishes them as gauges.

    A target with no data yet (empty histogram, zero denominator)
    evaluates to 0.0 and is vacuously compliant — a freshly started
    process should not begin life in violation.
    """

    def __init__(
        self,
        targets: list[SloTarget] | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.targets = list(targets) if targets is not None else default_slos()
        self._registry = registry

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else default_registry()

    def evaluate(self) -> list[SloStatus]:
        """Evaluate every target against the registry; update the gauges."""
        registry = self.registry
        snapshot = registry.snapshot()
        g_value = wellknown.slo_value(registry)
        g_target = wellknown.slo_target(registry)
        g_ok = wellknown.slo_compliant(registry)
        g_budget = wellknown.slo_budget_remaining(registry)
        statuses = []
        for target in self.targets:
            if target.kind == "quantile":
                buckets = _merged_buckets(
                    _family_samples(snapshot, target.family)
                )
                value = histogram_quantile(buckets, target.quantile)
            else:
                denom = _summed_values(snapshot, target.denominator)
                value = (
                    _summed_values(snapshot, target.numerator) / denom
                    if denom > 0 else 0.0
                )
            ok = value < target.threshold
            if target.threshold > 0:
                budget = max(-1.0, min(1.0, 1.0 - value / target.threshold))
            else:
                budget = 1.0 if value == 0.0 else -1.0
            g_value.set(value, slo=target.name)
            g_target.set(target.threshold, slo=target.name)
            g_ok.set(1.0 if ok else 0.0, slo=target.name)
            g_budget.set(budget, slo=target.name)
            statuses.append(SloStatus(
                name=target.name, kind=target.kind, value=value,
                threshold=target.threshold, ok=ok, budget_remaining=budget,
            ))
        return statuses


def render_slo_panel(statuses: list[SloStatus]) -> str:
    """Small text table of SLO states for the dashboard / CLI."""
    if not statuses:
        return "(no slos)"
    name_w = max(len(s.name) for s in statuses)
    lines = []
    for s in statuses:
        mark = "ok " if s.ok else "VIOLATED"
        lines.append(
            f"  {s.name:<{name_w}}  {mark:<8}  value={s.value:.4g}  "
            f"target<{s.threshold:.4g}  budget={s.budget_remaining:+.2f}"
        )
    return "\n".join(lines)
