"""Stdlib-only ops surface: /metrics, /health, /trace/<id>.

A daemon :class:`~http.server.ThreadingHTTPServer` that exposes the
process's registry and tracer while the main thread keeps ingesting —
the ``--metrics-port`` flag on ``repro-syslog listen`` and
``simulate``.  Endpoints:

- ``GET /metrics`` — Prometheus text exposition (v0.0.4).  The full
  wellknown schema is declared first so a scrape of a fresh process
  already carries every family, and the SLO tracker (when configured)
  is re-evaluated so burn gauges are current as of the scrape.
- ``GET /health`` — JSON liveness: ``{"status": "ok", "uptime_seconds",
  "traces"}``.
- ``GET /control`` — JSON control-plane summary (per-lever setpoints,
  ladder rung, shed-by-reason, feedforward prediction, per-tenant
  admission table), assembled from the wellknown metric families.
- ``GET /trace`` — JSON index of finished traces (id, hop count, span).
- ``GET /trace/<id>`` — the hop waterfall for one trace, as text.

Registry/tracer/SLO tracker resolve at *request* time when not pinned,
so a server started before ``use_registry`` swaps still serves the
active registry.  Binding to port 0 picks a free port; ``.port`` holds
the real one after :meth:`OpsServer.start`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs import wellknown
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.propagation import render_waterfall
from repro.obs.slo import SloTracker
from repro.obs.trace import Tracer, default_tracer

__all__ = ["OpsServer"]


class _Handler(BaseHTTPRequestHandler):
    server: "_OpsHTTPServer"  # set by ThreadingHTTPServer plumbing

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # ops scrapes must not spam the listener's stdout

    def _send(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        ops = self.server.ops
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                self._send(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    ops.render_metrics(),
                )
            elif path == "/health":
                self._send(200, "application/json", json.dumps({
                    "status": "ok",
                    "uptime_seconds": time.time() - ops.started_at,
                    "traces": len(ops.tracer.traces()),
                }))
            elif path == "/control":
                self._send(
                    200, "application/json",
                    json.dumps(ops.control_summary(), sort_keys=True),
                )
            elif path == "/trace":
                self._send(200, "application/json", json.dumps(ops.trace_index()))
            elif path.startswith("/trace/"):
                trace_id = path[len("/trace/"):]
                body = ops.render_trace(trace_id)
                if body is None:
                    self._send(404, "text/plain", f"no trace {trace_id}\n")
                else:
                    self._send(200, "text/plain; charset=utf-8", body + "\n")
            else:
                self._send(404, "text/plain", f"no route {path}\n")
        except BrokenPipeError:
            pass


class _OpsHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    ops: "OpsServer"


class OpsServer:
    """The metrics/health/trace HTTP thread.

    ::

        ops = OpsServer(port=0, slo_tracker=SloTracker())
        ops.start()
        print(f"scrape http://127.0.0.1:{ops.port}/metrics")
        ...
        ops.stop()
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        slo_tracker: SloTracker | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self._registry = registry
        self._tracer = tracer
        self.slo_tracker = slo_tracker
        self.started_at = time.time()
        self._server: _OpsHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else default_registry()

    @property
    def tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else default_tracer()

    # -- request bodies (also used directly by tests/CLI) --------------

    def render_metrics(self) -> str:
        """The ``/metrics`` body: SLOs evaluated, full schema declared."""
        if self.slo_tracker is not None:
            self.slo_tracker.evaluate()
        registry = self.registry
        wellknown.declare_all(registry)
        return registry.to_prometheus()

    def control_summary(self) -> dict:
        """The ``/control`` body: the live control plane, from metrics.

        Everything here is read back out of the wellknown control and
        tenant families, so the endpoint works for any controlled
        process — ``simulate --control``, ``listen --control``, or a
        replayed snapshot — without a handle on the controller object:
        per-lever setpoints/actuations/flips, the brownout ladder rung,
        shed counts by reason, the feedforward prediction, and the
        per-tenant admission table.
        """
        registry = self.registry

        def rows(name: str) -> list[tuple[dict, float]]:
            fam = registry.get(name)
            if fam is None:
                return []
            return [(labels, child.value) for labels, child in fam.samples()]

        levers: dict[str, dict] = {}
        for labels, value in rows("repro_control_setpoint"):
            lever = labels.get("lever", "")
            levers.setdefault(lever, {})["setpoint"] = value
        for labels, value in rows("repro_control_actuations_total"):
            entry = levers.setdefault(labels.get("lever", ""), {})
            entry["actuations"] = entry.get("actuations", 0.0) + value
        for labels, value in rows("repro_control_flips_total"):
            levers.setdefault(labels.get("lever", ""), {})["flips"] = value
        for labels, value in rows("repro_control_feedforward_moves_total"):
            levers.setdefault(
                labels.get("lever", ""), {}
            )["feedforward_moves"] = value

        tenants: dict[str, dict] = {}
        for labels, value in rows("repro_ingest_tenant_received_total"):
            tenants.setdefault(labels.get("tenant", ""), {})["received"] = value
        for labels, value in rows("repro_ingest_tenant_accepted_total"):
            tenants.setdefault(labels.get("tenant", ""), {})["accepted"] = value
        for labels, value in rows("repro_ingest_tenant_shed_total"):
            entry = tenants.setdefault(labels.get("tenant", ""), {})
            shed = entry.setdefault("shed", {})
            reason = labels.get("reason", "")
            shed[reason] = shed.get(reason, 0.0) + value

        def scalar(name: str) -> float:
            total = 0.0
            for _labels, value in rows(name):
                total += value
            return total

        return {
            "ticks": scalar("repro_control_ticks_total"),
            "levers": levers,
            "brownout_level": scalar("repro_control_brownout_level"),
            "shed": {
                labels.get("reason", ""): value
                for labels, value in rows("repro_control_shed_total")
            },
            "feedforward_rate": scalar("repro_control_feedforward_rate"),
            "tenants": tenants,
            "tenants_active": scalar("repro_ingest_tenants_active"),
        }

    def trace_index(self) -> list[dict]:
        """The ``/trace`` body: one summary row per known trace."""
        out = []
        for trace_id, spans in sorted(self.tracer.traces().items()):
            starts = [s.start_s for s in spans]
            ends = [s.end_s if s.end_s is not None else s.start_s for s in spans]
            out.append({
                "trace_id": trace_id,
                "hops": len(spans),
                "names": sorted({s.name for s in spans}),
                "span_s": max(ends) - min(starts),
            })
        return out

    def render_trace(self, trace_id: str) -> str | None:
        """The ``/trace/<id>`` body: a hop waterfall, or None if unknown."""
        spans = self.tracer.traces().get(trace_id)
        if not spans:
            return None
        return render_waterfall(spans)

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "OpsServer":
        """Bind and serve on a daemon thread; resolves an ephemeral port."""
        server = _OpsHTTPServer((self.host, self.port), _Handler)
        server.ops = self
        self._server = server
        self.port = server.server_address[1]
        self.started_at = time.time()
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-ops-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join the serving thread."""
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"
